//! Path exploration by copy-on-write snapshot forking.
//!
//! The re-execution [`Engine`](crate::Engine) pays O(d²) model steps for a
//! decision tree of depth *d*: every scheduled prefix re-runs the user
//! closure from cycle zero. This module restores KLEE's snapshotting
//! discipline. A task is expressed as a *stepped* computation
//! ([`ForkTask`]): the engine snapshots the task's cloneable state at every
//! step boundary, and when a decision inside the step forks, the sibling
//! job carries the snapshot plus the short intra-step *replay* window —
//! resuming costs one clone instead of a full re-run.
//!
//! Canonical path identity is preserved: the full decision bitstring is
//! still recorded per path, forks are scheduled in the same order, and the
//! frontier disciplines ([`SearchStrategy`]) mirror the re-execution engine
//! bit for bit. A job whose snapshot has been dropped (memory spill,
//! cross-worker migration) degrades gracefully to whole-prefix replay, so
//! any job can always be completed from its prefix alone.
//!
//! Shared-context invariant: all paths of one engine intern terms into a
//! single append-only [`Context`]. A snapshot therefore never copies the
//! term graph — its `TermId`s stay valid because nothing is ever removed.
//! The flip side is that snapshots are only meaningful inside the engine
//! (and worker) that created them; the fork-point watermark is simply the
//! length of the recorded decision prefix.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::engine::{EngineConfig, ExploreOutcome, PathResult, PathStatus, SearchStrategy};
use crate::probe::PathProbe;
use crate::solve::SolverBackend;
use crate::term::TermId;
use crate::wf::WfIssue;
use crate::{Context, Domain, TestVector};

/// Which path-exploration engine a session should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Deterministic re-execution ([`Engine`](crate::Engine)): every path
    /// re-runs the model from cycle zero, replaying its decision prefix.
    Reexec,
    /// Copy-on-write snapshot forking ([`ForkEngine`]): decision points
    /// clone the stepped task state instead of scheduling a re-run.
    #[default]
    Fork,
}

impl EngineKind {
    /// Parses the CLI spelling (`"fork"` / `"reexec"`).
    pub fn parse(token: &str) -> Option<EngineKind> {
        match token {
            "fork" => Some(EngineKind::Fork),
            "reexec" => Some(EngineKind::Reexec),
            _ => None,
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineKind::Reexec => write!(f, "reexec"),
            EngineKind::Fork => write!(f, "fork"),
        }
    }
}

/// What one [`ForkTask::step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult<Out> {
    /// The task has more steps to run on this path.
    Continue,
    /// The path is finished and produced this value.
    Done(Out),
}

/// A deterministic computation the [`ForkEngine`] can snapshot.
///
/// The engine calls [`start`](ForkTask::start) once per root path and then
/// [`step`](ForkTask::step) repeatedly until it returns
/// [`StepResult::Done`]. The granularity of a step is the granularity of
/// snapshotting: forks inside a step replay only that step's decisions
/// from the pre-step snapshot.
///
/// Contract:
/// * the computation must be deterministic — the same decision sequence
///   performs the same domain operations in the same order and names its
///   symbolic inputs canonically;
/// * `step` must return `Done` promptly once the executor
///   [`is_dead`](crate::Domain::is_dead);
/// * `State` must capture everything the task carries across steps (terms
///   are handles into the shared context and clone freely).
pub trait ForkTask {
    /// Per-path state, cloned at snapshot points.
    type State: Clone;
    /// Per-path result value.
    type Out;

    /// Builds the initial state for a fresh path.
    fn start(&self, exec: &mut ForkExec) -> Self::State;

    /// Advances the path by one snapshot interval.
    fn step(&self, state: &mut Self::State, exec: &mut ForkExec) -> StepResult<Self::Out>;

    /// Whether the engine may attempt veritesting-style state merging on
    /// this task's paths (see [`crate::merge`]). A merge-capable task
    /// must also implement [`states_equal`](ForkTask::states_equal),
    /// [`merge_outputs`](ForkTask::merge_outputs) and
    /// [`expand_arm`](ForkTask::expand_arm) coherently. Off by default.
    fn merge_capable(&self) -> bool {
        false
    }

    /// Whether two post-step states are term-identical — every symbolic
    /// component is the same hash-consed [`TermId`] and every concrete
    /// component is equal. Only such states may merge: the continuation
    /// then performs literally identical domain operations on every arm,
    /// which is what makes the per-arm records byte-identical to their
    /// unmerged runs. The conservative default never merges.
    fn states_equal(&self, _a: &Self::State, _b: &Self::State) -> bool {
        false
    }

    /// The observable output frontier of a state: the terms whose values
    /// the task's result exposes. The merge gate
    /// ([`crate::merge::proves_mergeable`]) refuses to merge arms whose
    /// diverging fetch-slot bits any of these terms demands.
    fn merge_outputs(&self, _state: &Self::State) -> Vec<TermId> {
        Vec::new()
    }

    /// Rebuilds the per-arm result value after the engine swapped a
    /// merged arm's ledger into `exec` (constraints, origins and decision
    /// prefix are the arm's; the state is the shared final state). All
    /// extraction must be history-independent so the value matches the
    /// arm's own unmerged run byte-for-byte. Returning `None` (the
    /// default) makes the engine re-schedule the arm as a whole-prefix
    /// replay instead.
    fn expand_arm(&self, _state: &Self::State, _exec: &mut ForkExec) -> Option<Self::Out> {
        None
    }
}

/// The path ledger of one merged sibling arm (see [`crate::merge`]).
///
/// A merged physical path carries the primary arm's ledger in the
/// [`ForkExec`] fields and one `MergeArm` per absorbed sibling. The arms
/// share the task state and the symbol list with the primary — merging
/// requires both to be identical — and diverge only in their constraint
/// and decision history.
#[derive(Debug, Clone)]
struct MergeArm {
    constraints: Vec<TermId>,
    origins: Vec<crate::project::ConstraintOrigin>,
    taken: Vec<bool>,
}

/// A copy-on-write snapshot: the task state plus the engine-side path
/// bookkeeping, all captured at a step boundary. The shared [`Context`] is
/// deliberately *not* part of the snapshot (append-only, see the module
/// docs).
///
/// Snapshots are built lazily — only when a step actually forked — and
/// shared between all the step's siblings through an [`Arc`], so an
/// n-way fork costs one clone of the state, not n.
#[derive(Debug, Clone)]
struct Snapshot<S> {
    state: S,
    constraints: Vec<TermId>,
    origins: Vec<crate::project::ConstraintOrigin>,
    taken: Vec<bool>,
    path_symbols: Vec<TermId>,
    arms: Vec<MergeArm>,
}

/// What running one job produces: the path records of the physical path
/// (one, or several when merged sibling arms rode along) plus the sibling
/// jobs scheduled at fresh forks.
pub type JobOutcome<S, O> = (Vec<PathResult<O>>, Vec<ForkJob<S>>);

/// One schedulable unit of fork-engine work: a canonical decision prefix,
/// optionally accelerated by a snapshot taken at the last step boundary
/// before the fork.
#[derive(Debug, Clone)]
pub struct ForkJob<S> {
    prefix: Vec<bool>,
    snapshot: Option<Arc<Snapshot<S>>>,
    /// Decision prefixes of the merged sibling arms riding on this job
    /// (empty for ordinary jobs). They are redundant with the snapshot's
    /// arm ledgers while the snapshot is alive and become the re-split
    /// replays when it is dropped — a bare prefix cannot reconstruct a
    /// merge, so spilling a merged job must split it.
    arm_prefixes: Vec<Vec<bool>>,
}

impl<S> ForkJob<S> {
    /// The root job: empty prefix, no snapshot.
    pub fn root() -> ForkJob<S> {
        ForkJob {
            prefix: Vec::new(),
            snapshot: None,
            arm_prefixes: Vec::new(),
        }
    }

    /// Rebuilds a job from a bare decision prefix (whole-path replay).
    pub fn from_prefix(prefix: Vec<bool>) -> ForkJob<S> {
        ForkJob {
            prefix,
            snapshot: None,
            arm_prefixes: Vec::new(),
        }
    }

    /// The canonical decision prefix identifying this path.
    pub fn prefix(&self) -> &[bool] {
        &self.prefix
    }

    /// Consumes the job, returning its prefix.
    pub fn into_prefix(self) -> Vec<bool> {
        self.prefix
    }

    /// Whether a snapshot is attached.
    pub fn has_snapshot(&self) -> bool {
        self.snapshot.is_some()
    }

    /// The number of path records this job will produce when run: one,
    /// plus one per merged sibling arm.
    pub fn represented_paths(&self) -> usize {
        1 + self.arm_prefixes.len()
    }

    /// Drops the snapshot, degrading the job to whole-prefix replays.
    /// This is the memory-bound spill and the cross-worker migration
    /// path. An ordinary job spills to itself; a merged job re-splits
    /// into one replay per arm, because a prefix alone cannot
    /// reconstruct a merge.
    pub fn split_on_spill(self) -> Vec<ForkJob<S>> {
        let ForkJob {
            prefix,
            snapshot: _,
            arm_prefixes,
        } = self;
        let mut out = Vec::with_capacity(1 + arm_prefixes.len());
        out.push(ForkJob::from_prefix(prefix));
        out.extend(arm_prefixes.into_iter().map(ForkJob::from_prefix));
        out
    }
}

/// Per-path symbolic executor of the [`ForkEngine`]; implements [`Domain`]
/// over term handles exactly like [`SymExec`](crate::SymExec), plus an
/// intra-step replay window for resuming from snapshots.
///
/// Unlike `SymExec` it owns the context and solver (they persist across
/// paths inside the engine), so tasks hold `&mut ForkExec` only for the
/// duration of a call.
#[derive(Debug)]
pub struct ForkExec {
    ctx: Context,
    backend: SolverBackend,
    replay: VecDeque<bool>,
    taken: Vec<bool>,
    constraints: Vec<TermId>,
    origins: Vec<crate::project::ConstraintOrigin>,
    /// Pending forks of the current step: one entry per fork event, one
    /// sibling prefix per arm (index 0 is the primary arm; unmerged
    /// paths push single-element groups).
    forks: Vec<Vec<Vec<bool>>>,
    path_symbols: Vec<TermId>,
    status: PathStatus,
    /// Ledgers of the merged sibling arms riding on this path (empty
    /// while unmerged). Every decision, assumption and committed
    /// constraint is recorded to the primary fields *and* to each arm in
    /// lockstep, so the arms' intra-step suffixes stay identical.
    arms: Vec<MergeArm>,
    /// A merged-mode event (non-uniform feasibility across arms, or an
    /// arm hitting the decision limit) made lockstep execution
    /// impossible; the engine discards this run and re-splits every arm
    /// into a whole-prefix replay.
    abandoned: bool,
    max_decisions: usize,
    projector: crate::project::Projector,
}

/// Saved per-path bookkeeping of a [`ForkExec`], so the engine can run a
/// merge-lookahead path and then restore the interrupted one. The
/// context, solver and projector are shared append-only services and
/// deliberately not part of the checkpoint.
#[derive(Debug)]
struct PathCheckpoint {
    replay: VecDeque<bool>,
    taken: Vec<bool>,
    constraints: Vec<TermId>,
    origins: Vec<crate::project::ConstraintOrigin>,
    forks: Vec<Vec<Vec<bool>>>,
    path_symbols: Vec<TermId>,
    status: PathStatus,
    arms: Vec<MergeArm>,
    abandoned: bool,
}

impl ForkExec {
    fn new(max_decisions: usize, solver_chain: bool, audit: bool, incremental: bool) -> ForkExec {
        ForkExec {
            ctx: Context::new(),
            backend: SolverBackend::with_config(solver_chain, audit, incremental),
            replay: VecDeque::new(),
            taken: Vec::new(),
            constraints: Vec::new(),
            origins: Vec::new(),
            forks: Vec::new(),
            path_symbols: Vec::new(),
            status: PathStatus::Complete,
            arms: Vec::new(),
            abandoned: false,
            max_decisions,
            projector: crate::project::Projector::new(),
        }
    }

    fn save_path(&mut self) -> PathCheckpoint {
        PathCheckpoint {
            replay: std::mem::take(&mut self.replay),
            taken: std::mem::take(&mut self.taken),
            constraints: std::mem::take(&mut self.constraints),
            origins: std::mem::take(&mut self.origins),
            forks: std::mem::take(&mut self.forks),
            path_symbols: std::mem::take(&mut self.path_symbols),
            status: self.status,
            arms: std::mem::take(&mut self.arms),
            abandoned: self.abandoned,
        }
    }

    fn restore_path(&mut self, saved: PathCheckpoint) {
        self.replay = saved.replay;
        self.taken = saved.taken;
        self.constraints = saved.constraints;
        self.origins = saved.origins;
        self.forks = saved.forks;
        self.path_symbols = saved.path_symbols;
        self.status = saved.status;
        self.arms = saved.arms;
        self.abandoned = saved.abandoned;
    }

    /// Records a decision constraint to the primary ledger and to every
    /// merged arm in lockstep. Per-arm decision indices differ because
    /// the arms' prefixes have different lengths.
    fn record_decision(&mut self, cond: TermId, choice: bool) {
        let constraint = if choice { cond } else { self.ctx.not(cond) };
        self.constraints.push(constraint);
        self.origins
            .push(crate::project::ConstraintOrigin::Decision(
                self.taken.len() as u32
            ));
        self.taken.push(choice);
        for arm in &mut self.arms {
            arm.constraints.push(constraint);
            arm.origins.push(crate::project::ConstraintOrigin::Decision(
                arm.taken.len() as u32
            ));
            arm.taken.push(choice);
        }
    }

    /// Records an assumed constraint to the primary ledger and to every
    /// merged arm in lockstep.
    fn record_assumed(&mut self, cond: TermId) {
        self.constraints.push(cond);
        self.origins.push(crate::project::ConstraintOrigin::Assumed);
        for arm in &mut self.arms {
            arm.constraints.push(cond);
            arm.origins.push(crate::project::ConstraintOrigin::Assumed);
        }
    }

    /// The term context (symbolic values are [`TermId`]s into it).
    pub fn context(&mut self) -> &mut Context {
        &mut self.ctx
    }

    /// The constraints accumulated on this path so far.
    pub fn constraints(&self) -> &[TermId] {
        &self.constraints
    }

    /// Whether `cond` is satisfiable together with the path condition —
    /// *without* committing to it (see
    /// [`SymExec::check_sat`](crate::SymExec::check_sat)).
    pub fn check_sat(&mut self, cond: TermId) -> bool {
        if let Some(value) = self.ctx.const_value(cond) {
            return value == 1;
        }
        if self.arms.is_empty() {
            // During replay this is usually a cache hit: the parent path
            // asked the identical condition set.
            self.backend.prefix_sync(&self.constraints);
            return self.backend.check_suffix(&self.ctx, &[cond]).is_sat();
        }
        // Merged: the answer must be uniform across the arms to stay in
        // lockstep; a split vote abandons the merge and the caller's
        // result is discarded with the rest of the run.
        let mut answer = None;
        for i in 0..=self.arms.len() {
            let prefix = if i == 0 {
                &self.constraints
            } else {
                &self.arms[i - 1].constraints
            };
            self.backend.prefix_sync(prefix);
            let sat = self.backend.check_suffix(&self.ctx, &[cond]).is_sat();
            match answer {
                None => answer = Some(sat),
                Some(first) if first == sat => {}
                Some(first) => {
                    self.abandoned = true;
                    return first;
                }
            }
        }
        answer.expect("at least the primary arm")
    }

    /// Permanently adds `cond` to the path condition (of every arm, when
    /// merged — committed constraints come from the task, which runs in
    /// lockstep).
    pub fn add_constraint(&mut self, cond: TermId) {
        self.constraints.push(cond);
        self.origins
            .push(crate::project::ConstraintOrigin::Committed);
        for arm in &mut self.arms {
            arm.constraints.push(cond);
            arm.origins
                .push(crate::project::ConstraintOrigin::Committed);
        }
    }

    /// Projects this path's condition onto every symbolic fetch slot whose
    /// symbol name starts with `slot_prefix`, matching
    /// [`SymExec::project_coverage`](crate::SymExec::project_coverage).
    #[must_use]
    pub fn project_coverage(&mut self, slot_prefix: &str) -> Vec<crate::project::SlotCoverage> {
        self.projector
            .project_path(&self.ctx, slot_prefix, &self.constraints, &self.origins)
    }

    /// History-independent witness extraction (fresh solver), matching
    /// [`SymExec::stable_concrete_witness`](crate::SymExec::stable_concrete_witness).
    pub fn stable_concrete_witness(&mut self, term: TermId, extra: &[TermId]) -> Option<u64> {
        let mut conditions = self.constraints.clone();
        conditions.extend_from_slice(extra);
        crate::solve::fresh_model_value(&self.ctx, &conditions, term)
    }

    /// History-independent test-vector extraction (fresh solver), matching
    /// [`SymExec::stable_witness_vector`](crate::SymExec::stable_witness_vector).
    pub fn stable_witness_vector(&mut self, extra: &[TermId]) -> Option<TestVector> {
        let mut conditions = self.constraints.clone();
        conditions.extend_from_slice(extra);
        crate::solve::fresh_model_vector(&self.ctx, &conditions, &self.path_symbols)
    }

    /// Runs the full [well-formedness pass](crate::wf::validate_path) over
    /// this path's condition and symbolic reads.
    #[must_use]
    pub fn lint_path(&self) -> Vec<WfIssue> {
        crate::wf::validate_path(&self.ctx, &self.constraints, &self.path_symbols)
    }

    /// [`ForkExec::lint_path`] with the path's output frontier, so symbols
    /// in no constraint and no output term are reported as dead (see
    /// [`validate_path_with_outputs`](crate::wf::validate_path_with_outputs)).
    #[must_use]
    pub fn lint_path_with_outputs(&self, outputs: &[TermId]) -> Vec<WfIssue> {
        crate::wf::validate_path_with_outputs(
            &self.ctx,
            &self.constraints,
            &self.path_symbols,
            outputs,
        )
    }

    fn kill(&mut self, status: PathStatus) {
        if self.status == PathStatus::Complete {
            self.status = status;
        }
    }

    fn begin_path<S>(&mut self, prefix: Vec<bool>, snapshot: Option<&Snapshot<S>>) {
        match snapshot {
            Some(snap) => {
                debug_assert!(snap.taken.len() <= prefix.len());
                debug_assert_eq!(&prefix[..snap.taken.len()], &snap.taken[..]);
                self.replay = prefix[snap.taken.len()..].iter().copied().collect();
                self.taken = snap.taken.clone();
                self.constraints = snap.constraints.clone();
                self.origins = snap.origins.clone();
                self.path_symbols = snap.path_symbols.clone();
                self.arms = snap.arms.clone();
            }
            None => {
                self.replay = prefix.into_iter().collect();
                self.taken = Vec::new();
                self.constraints = Vec::new();
                self.origins = Vec::new();
                self.path_symbols = Vec::new();
                self.arms = Vec::new();
            }
        }
        self.forks = Vec::new();
        self.status = PathStatus::Complete;
        self.abandoned = false;
    }
}

impl Domain for ForkExec {
    type Word = TermId;
    type Bool = TermId;

    fn const_word(&mut self, value: u32) -> TermId {
        self.ctx.constant(32, value as u64)
    }

    fn const_bool(&mut self, value: bool) -> TermId {
        self.ctx.bool_const(value)
    }

    fn fresh_word(&mut self, name: &str) -> TermId {
        let sym = self.ctx.symbol(32, name);
        if !self.path_symbols.contains(&sym) {
            self.path_symbols.push(sym);
        }
        sym
    }

    fn word_value(&self, word: TermId) -> Option<u32> {
        self.ctx.const_value(word).map(|v| v as u32)
    }

    fn bool_value(&self, b: TermId) -> Option<bool> {
        self.ctx.const_value(b).map(|v| v == 1)
    }

    fn add(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.add(a, b)
    }

    fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.sub(a, b)
    }

    fn mul(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.mul(a, b)
    }

    fn and(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.and(a, b)
    }

    fn or(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.or(a, b)
    }

    fn xor(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.xor(a, b)
    }

    fn not_w(&mut self, a: TermId) -> TermId {
        self.ctx.not(a)
    }

    fn shl(&mut self, a: TermId, amount: TermId) -> TermId {
        self.ctx.shl(a, amount)
    }

    fn lshr(&mut self, a: TermId, amount: TermId) -> TermId {
        self.ctx.lshr(a, amount)
    }

    fn ashr(&mut self, a: TermId, amount: TermId) -> TermId {
        self.ctx.ashr(a, amount)
    }

    fn eq_w(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.eq(a, b)
    }

    fn ult(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.ult(a, b)
    }

    fn slt(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.slt(a, b)
    }

    fn ite(&mut self, cond: TermId, then_w: TermId, else_w: TermId) -> TermId {
        self.ctx.ite(cond, then_w, else_w)
    }

    fn not_b(&mut self, a: TermId) -> TermId {
        self.ctx.not(a)
    }

    fn and_b(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.and(a, b)
    }

    fn or_b(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.or(a, b)
    }

    fn bool_to_word(&mut self, b: TermId) -> TermId {
        self.ctx.zero_ext(b, 32)
    }

    fn decide(&mut self, cond: TermId) -> bool {
        if self.is_dead() {
            return false;
        }
        if let Some(value) = self.ctx.const_value(cond) {
            return value == 1;
        }
        if let Some(choice) = self.replay.pop_front() {
            // Replaying a forced window (snapshot resume or spilled
            // prefix): feasibility was established when the fork was
            // scheduled, no solver call needed. Merged arms replay the
            // same window in lockstep — their intra-step suffixes are
            // identical by construction.
            self.record_decision(cond, choice);
            return choice;
        }
        if self.taken.len() >= self.max_decisions
            || self
                .arms
                .iter()
                .any(|arm| arm.taken.len() >= self.max_decisions)
        {
            if self.arms.is_empty() {
                self.kill(PathStatus::DecisionLimit);
            } else {
                // Killing a merged path at the limit would stamp
                // DecisionLimit on arms whose own unmerged runs may not
                // have reached it yet; re-split instead.
                self.abandoned = true;
            }
            return false;
        }
        let negated = self.ctx.not(cond);
        if self.arms.is_empty() {
            // Both polarity probes share the whole path condition as their
            // prefix; suffix queries let the incremental solver retain the
            // prefix's propagation trail between them.
            self.backend.prefix_sync(&self.constraints);
            let true_feasible = self.backend.check_suffix(&self.ctx, &[cond]).is_sat();
            let (choice, constraint) = if true_feasible {
                if self.backend.check_suffix(&self.ctx, &[negated]).is_sat() {
                    // Both sides feasible: fork, continue on `true`.
                    let mut sibling = self.taken.clone();
                    sibling.push(false);
                    self.forks.push(vec![sibling]);
                }
                (true, cond)
            } else {
                // The path condition is feasible by induction, so `false` is.
                (false, negated)
            };
            self.constraints.push(constraint);
            self.backend.prefix_push(constraint);
            self.origins
                .push(crate::project::ConstraintOrigin::Decision(
                    self.taken.len() as u32
                ));
            self.taken.push(choice);
            return choice;
        }
        // Merged: classify each arm as fork (both polarities feasible),
        // true-only, or false-only. Lockstep survives only a uniform
        // classification; anything mixed abandons the merge.
        let mut class: Option<(bool, bool)> = None;
        for i in 0..=self.arms.len() {
            let prefix = if i == 0 {
                &self.constraints
            } else {
                &self.arms[i - 1].constraints
            };
            self.backend.prefix_sync(prefix);
            let t = self.backend.check_suffix(&self.ctx, &[cond]).is_sat();
            // Each arm's path condition is feasible by induction, so `!t`
            // implies the false side is.
            let f = !t || self.backend.check_suffix(&self.ctx, &[negated]).is_sat();
            match class {
                None => class = Some((t, f)),
                Some(c) if c == (t, f) => {}
                Some(_) => {
                    self.abandoned = true;
                    return false;
                }
            }
        }
        let (t, f) = class.expect("at least the primary arm");
        if t && f {
            // Uniform fork: one fork event carrying a sibling prefix per
            // arm, so the sibling job stays merged too.
            let mut group = Vec::with_capacity(1 + self.arms.len());
            let mut sibling = self.taken.clone();
            sibling.push(false);
            group.push(sibling);
            for arm in &self.arms {
                let mut sibling = arm.taken.clone();
                sibling.push(false);
                group.push(sibling);
            }
            self.forks.push(group);
        }
        self.record_decision(cond, t);
        t
    }

    fn assume(&mut self, cond: TermId) {
        if self.is_dead() {
            return;
        }
        match self.ctx.const_value(cond) {
            Some(1) => return,
            Some(_) => {
                self.kill(PathStatus::Infeasible);
                return;
            }
            None => {}
        }
        if !self.replay.is_empty() {
            // Inside the replayed window the identical constraint set was
            // checked satisfiable on the parent path (the parent stayed
            // alive past this point, and the flipped branch itself was
            // checked at fork time), so the re-execution engine's check
            // here is guaranteed Sat — skip it.
            self.record_assumed(cond);
            return;
        }
        if self.arms.is_empty() {
            self.backend.prefix_sync(&self.constraints);
            let feasible = self.backend.check_suffix(&self.ctx, &[cond]).is_sat();
            self.constraints.push(cond);
            self.backend.prefix_push(cond);
            self.origins.push(crate::project::ConstraintOrigin::Assumed);
            if !feasible {
                self.kill(PathStatus::Infeasible);
            }
            return;
        }
        // Merged: uniform feasibility keeps the lockstep (all feasible →
        // record; all infeasible → record and die, exactly as each
        // unmerged arm would); a mixed vote abandons the merge without
        // recording anything.
        let mut any = false;
        let mut all = true;
        for i in 0..=self.arms.len() {
            let prefix = if i == 0 {
                &self.constraints
            } else {
                &self.arms[i - 1].constraints
            };
            self.backend.prefix_sync(prefix);
            let feasible = self.backend.check_suffix(&self.ctx, &[cond]).is_sat();
            any |= feasible;
            all &= feasible;
        }
        if all {
            self.record_assumed(cond);
        } else if !any {
            self.record_assumed(cond);
            self.kill(PathStatus::Infeasible);
        } else {
            self.abandoned = true;
        }
    }

    fn is_dead(&self) -> bool {
        self.status != PathStatus::Complete || self.abandoned
    }
}

impl PathProbe for ForkExec {
    fn constraints(&self) -> &[TermId] {
        ForkExec::constraints(self)
    }

    fn check_sat(&mut self, cond: TermId) -> bool {
        ForkExec::check_sat(self, cond)
    }

    fn add_constraint(&mut self, cond: TermId) {
        ForkExec::add_constraint(self, cond)
    }

    fn stable_concrete_witness(&mut self, term: TermId, extra: &[TermId]) -> Option<u64> {
        ForkExec::stable_concrete_witness(self, term, extra)
    }

    fn stable_witness_vector(&mut self, extra: &[TermId]) -> Option<TestVector> {
        ForkExec::stable_witness_vector(self, extra)
    }

    fn lint_path(&self) -> Vec<WfIssue> {
        ForkExec::lint_path(self)
    }

    fn lint_path_with_outputs(&self, outputs: &[TermId]) -> Vec<WfIssue> {
        ForkExec::lint_path_with_outputs(self, outputs)
    }

    fn project_coverage(&mut self, slot_prefix: &str) -> Vec<crate::project::SlotCoverage> {
        ForkExec::project_coverage(self, slot_prefix)
    }
}

/// The snapshotting exploration engine — [`Engine`](crate::Engine)'s
/// copy-on-write twin.
///
/// Explores the same canonical path tree with the same frontier
/// disciplines and the same `--seed` determinism, but resumes forked paths
/// from cloned state instead of re-running them. See the
/// [module docs](self) for the architecture.
#[derive(Debug)]
pub struct ForkEngine {
    exec: ForkExec,
    config: EngineConfig,
    rng_state: u64,
    /// How many *additional* paths the driver still wants beyond the jobs
    /// it already holds (see [`ForkEngine::set_merge_headroom`]). Bounds
    /// the merge lookahead so a truncated run never pays for subtree
    /// expansion its budget will discard.
    merge_headroom: usize,
}

impl ForkEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> ForkEngine {
        let mut exec = ForkExec::new(
            config.max_decisions_per_path,
            config.solver_chain,
            config.audit,
            config.incremental,
        );
        exec.backend.set_preflight(config.preflight);
        ForkEngine {
            exec,
            config: config.clone(),
            rng_state: config.seed | 1,
            merge_headroom: usize::MAX,
        }
    }

    /// Sets the merge lookahead's path headroom for subsequent
    /// [`ForkEngine::run_job`] calls: the number of paths the driver's
    /// budget still admits beyond the jobs already queued.
    ///
    /// The lookahead fully expands each step's fork subtree before
    /// merging. On a drained run every expanded leaf is work the engine
    /// would do anyway (the post-step snapshot jobs carry it forward),
    /// but on a *truncated* run leaves beyond the budget are pure waste —
    /// on the full RV32I+Zicsr space that waste is orders of magnitude
    /// (hard data-dependent solves for siblings the budget never visits).
    /// Capping the expansion at the headroom keeps merged truncated runs
    /// within a small factor of unmerged ones while leaving drained
    /// sweeps (headroom ≫ fan-out) untouched. The headroom is an explicit
    /// input, not solver state, so `run_job` stays a pure function of
    /// (job, task, headroom). Defaults to `usize::MAX` (unbounded).
    pub fn set_merge_headroom(&mut self, headroom: usize) {
        self.merge_headroom = headroom;
    }

    /// Read access to the term context.
    pub fn ctx(&self) -> &Context {
        &self.exec.ctx
    }

    /// The solver backend, e.g. for statistics.
    pub fn backend(&self) -> &SolverBackend {
        &self.exec.backend
    }

    /// Drains the proof auditor's certified conflict cones (see
    /// [`SolverBackend::take_audit_units`]). Empty when auditing is off.
    pub fn take_audit_units(&mut self) -> Vec<symcosim_sat::CoreReplayUnit> {
        self.exec.backend.take_audit_units()
    }

    /// Exports the solver chain's caches for warming a later identical
    /// run (see [`crate::ChainSeed`]). Empty when the chain is disabled.
    pub fn export_chain_seed(&self) -> crate::ChainSeed {
        self.exec.backend.export_chain_seed()
    }

    /// Pre-warms the solver chain from a seed exported by an identical
    /// run; answers are unchanged, only cheaper.
    pub fn import_chain_seed(&mut self, seed: &crate::ChainSeed) {
        self.exec.backend.import_chain_seed(seed);
    }

    /// Runs the single physical path selected by `job` and returns its
    /// path records — one, or several when merged sibling arms rode along
    /// (see [`crate::merge`]) — plus the sibling jobs scheduled at fresh
    /// forks.
    ///
    /// The counterpart of [`Engine::run_prefix`](crate::Engine::run_prefix)
    /// — everything except the task's own value is a pure function of the
    /// job's prefix and the task, so a snapshotted job and its spilled
    /// twin produce identical results. An abandoned merge returns no
    /// records and re-splits every arm into whole-prefix replay jobs.
    pub fn run_job<T: ForkTask>(
        &mut self,
        job: ForkJob<T::State>,
        task: &T,
    ) -> JobOutcome<T::State, T::Out> {
        let ForkJob {
            prefix,
            snapshot,
            arm_prefixes,
        } = job;
        debug_assert_eq!(
            arm_prefixes.len(),
            snapshot.as_deref().map_or(0, |s| s.arms.len()),
            "a job's spill prefixes must mirror its snapshot's arms"
        );
        self.exec.begin_path(prefix, snapshot.as_deref());
        // Move out of the snapshot when this job holds the last reference;
        // clone only when siblings still share it.
        let mut state: Option<T::State> = snapshot.map(|s| match Arc::try_unwrap(s) {
            Ok(snap) => snap.state,
            Err(shared) => shared.state.clone(),
        });
        let mut jobs: Vec<ForkJob<T::State>> = Vec::new();
        let value = loop {
            let (done, snap) = match state.take() {
                None => {
                    // Forks inside `start` (decisions before the first step
                    // boundary) have no pre-state; their siblings replay the
                    // whole prefix.
                    state = Some(task.start(&mut self.exec));
                    (None, None)
                }
                Some(pre_state) => {
                    // The engine-side bookkeeping is append-only within a
                    // path, so the pre-step snapshot needs only watermark
                    // lengths now and is materialised *after* the step, and
                    // only if the step actually forked.
                    let constraints_mark = self.exec.constraints.len();
                    let taken_mark = self.exec.taken.len();
                    let symbols_mark = self.exec.path_symbols.len();
                    let arm_marks: Vec<(usize, usize)> = self
                        .exec
                        .arms
                        .iter()
                        .map(|arm| (arm.constraints.len(), arm.taken.len()))
                        .collect();
                    let mut next = pre_state.clone();
                    let done = match task.step(&mut next, &mut self.exec) {
                        StepResult::Continue => None,
                        StepResult::Done(out) => Some(out),
                    };
                    let snap = if self.exec.forks.is_empty() || self.exec.abandoned {
                        None
                    } else {
                        Some(Arc::new(Snapshot {
                            state: pre_state,
                            constraints: self.exec.constraints[..constraints_mark].to_vec(),
                            origins: self.exec.origins[..constraints_mark].to_vec(),
                            taken: self.exec.taken[..taken_mark].to_vec(),
                            path_symbols: self.exec.path_symbols[..symbols_mark].to_vec(),
                            arms: self
                                .exec
                                .arms
                                .iter()
                                .zip(&arm_marks)
                                .map(|(arm, &(cmark, tmark))| MergeArm {
                                    constraints: arm.constraints[..cmark].to_vec(),
                                    origins: arm.origins[..cmark].to_vec(),
                                    taken: arm.taken[..tmark].to_vec(),
                                })
                                .collect(),
                        }))
                    };
                    state = Some(next);
                    (done, snap)
                }
            };
            if self.exec.abandoned {
                // Lockstep broke mid-step: nothing from this run can be
                // trusted to match unmerged execution. Discard the run and
                // re-split everything still pending — the interrupted
                // decision recorded nothing, so each replay regenerates
                // its own forks live. Earlier steps' sibling jobs (already
                // in `jobs`) are unaffected.
                for group in std::mem::take(&mut self.exec.forks) {
                    for sibling in group {
                        jobs.push(ForkJob::from_prefix(sibling));
                    }
                }
                jobs.push(ForkJob::from_prefix(self.exec.taken.clone()));
                for arm in std::mem::take(&mut self.exec.arms) {
                    jobs.push(ForkJob::from_prefix(arm.taken));
                }
                return (Vec::new(), jobs);
            }
            let mut step_jobs: Vec<ForkJob<T::State>> = Vec::new();
            if !self.exec.forks.is_empty() {
                for group in std::mem::take(&mut self.exec.forks) {
                    let mut group = group.into_iter();
                    let sibling = group.next().expect("fork event has a primary arm");
                    step_jobs.push(ForkJob {
                        prefix: sibling,
                        snapshot: snap.clone(),
                        arm_prefixes: group.collect(),
                    });
                }
            }
            // Merging only when the remaining budget can absorb a
            // worst-case lookahead expansion guarantees no expanded leaf
            // is beyond-budget work: each emitted group job produces at
            // least one record, so every leaf occupies a slot the driver
            // still has. Below that line a truncated run would pay hard
            // lookahead and lockstep-vote solves for paths it discards.
            let merge_now = self.config.merge
                && self.merge_headroom >= ForkEngine::MERGE_LOOKAHEAD_CAP
                && task.merge_capable()
                && done.is_none()
                && !step_jobs.is_empty()
                && snap.is_some()
                && !self.exec.is_dead()
                && self.exec.replay.is_empty();
            if merge_now {
                let primary_state = state.as_ref().expect("stepped state present");
                self.try_merge(task, primary_state, step_jobs, &mut jobs);
            } else {
                jobs.append(&mut step_jobs);
            }
            if let Some(out) = done {
                break out;
            }
        };
        debug_assert!(
            self.exec.replay.is_empty() || self.exec.is_dead(),
            "task finished with unconsumed replay decisions"
        );
        #[cfg(debug_assertions)]
        crate::wf::debug_validate_path(&self.exec.ctx, &self.exec.constraints);
        let mut results = Vec::with_capacity(1 + self.exec.arms.len());
        let test_vector =
            if self.config.emit_test_vectors && self.exec.status != PathStatus::Infeasible {
                crate::solve::fresh_model_vector(
                    &self.exec.ctx,
                    &self.exec.constraints,
                    &self.exec.path_symbols,
                )
            } else {
                None
            };
        results.push(PathResult {
            value,
            status: self.exec.status,
            decisions: self.exec.taken.clone(),
            num_constraints: self.exec.constraints.len(),
            test_vector,
        });
        // Expand every merged arm into its own record by swapping the
        // arm's ledger into the executor and re-deriving the value with
        // history-independent extraction — byte-identical to the arm's
        // unmerged run because the final state, the symbol list and the
        // status are shared and the ledger is exactly what the unmerged
        // run would have recorded.
        let arms = std::mem::take(&mut self.exec.arms);
        if !arms.is_empty() {
            let final_state = state.as_ref().expect("finished state present");
            for arm in arms {
                let MergeArm {
                    constraints,
                    origins,
                    taken,
                } = arm;
                self.exec.constraints = constraints;
                self.exec.origins = origins;
                self.exec.taken = taken;
                match task.expand_arm(final_state, &mut self.exec) {
                    Some(arm_value) => {
                        let test_vector = if self.config.emit_test_vectors
                            && self.exec.status != PathStatus::Infeasible
                        {
                            crate::solve::fresh_model_vector(
                                &self.exec.ctx,
                                &self.exec.constraints,
                                &self.exec.path_symbols,
                            )
                        } else {
                            None
                        };
                        results.push(PathResult {
                            value: arm_value,
                            status: self.exec.status,
                            decisions: self.exec.taken.clone(),
                            num_constraints: self.exec.constraints.len(),
                            test_vector,
                        });
                    }
                    None => {
                        // The task cannot rebuild this arm's value;
                        // degrade to a whole-prefix replay.
                        jobs.push(ForkJob::from_prefix(self.exec.taken.clone()));
                    }
                }
            }
        }
        (results, jobs)
    }

    /// Upper bound on the intra-step subtree a merge lookahead fully
    /// expands. Decode fans out to a handful of siblings per step; a
    /// run-away task must not turn the lookahead into the whole search.
    const MERGE_LOOKAHEAD_CAP: usize = 64;

    /// Attempts to merge this step's sibling jobs back into the running
    /// path (and into each other). Runs each sibling one step ahead from
    /// its snapshot; siblings whose post-step state is term-identical to
    /// the primary's (or to each other's) and whose divergence passes the
    /// [`crate::merge::proves_mergeable`] gate are absorbed as
    /// [`MergeArm`] ledgers. Everything that does not merge is emitted as
    /// a post-step snapshot job (no work is lost — the lookahead step is
    /// the same step the job would have run first).
    fn try_merge<T: ForkTask>(
        &mut self,
        task: &T,
        primary_state: &T::State,
        step_jobs: Vec<ForkJob<T::State>>,
        jobs: &mut Vec<ForkJob<T::State>>,
    ) {
        struct Leaf<S> {
            state: S,
            symbols: Vec<TermId>,
            arms: Vec<MergeArm>,
        }
        // A truncated run discards jobs beyond its budget, so looking
        // ahead past the headroom is work nobody will reuse (see
        // [`ForkEngine::set_merge_headroom`]).
        let cap = ForkEngine::MERGE_LOOKAHEAD_CAP.min(self.merge_headroom);
        if cap == 0 {
            jobs.extend(step_jobs);
            return;
        }
        let checkpoint = self.exec.save_path();
        let mut queue: VecDeque<ForkJob<T::State>> = step_jobs.into();
        let mut leaves: Vec<Leaf<T::State>> = Vec::new();
        let mut expanded = 0usize;
        while let Some(job) = queue.pop_front() {
            if expanded >= cap {
                jobs.push(job);
                continue;
            }
            expanded += 1;
            let ForkJob {
                prefix,
                snapshot,
                arm_prefixes,
            } = job;
            let snap = match snapshot {
                Some(snap) => snap,
                None => {
                    // No snapshot to look ahead from; pass through.
                    jobs.push(ForkJob {
                        prefix,
                        snapshot: None,
                        arm_prefixes,
                    });
                    continue;
                }
            };
            self.exec.begin_path(prefix.clone(), Some(&*snap));
            let mut sib_state = snap.state.clone();
            let done = task.step(&mut sib_state, &mut self.exec);
            let ok = matches!(done, StepResult::Continue)
                && !self.exec.is_dead()
                && self.exec.replay.is_empty();
            if !ok {
                // The sibling finished, died or abandoned inside the
                // lookahead: revert. Its own run will redo the step (the
                // solver answers are cached) and regenerate any forks.
                self.exec.forks.clear();
                jobs.push(ForkJob {
                    prefix,
                    snapshot: Some(snap),
                    arm_prefixes,
                });
                continue;
            }
            // Nested forks join the lookahead, anchored to the same
            // pre-step snapshot — the subtree is fully expanded, which is
            // exactly the solver work the unmerged engine would do.
            for group in std::mem::take(&mut self.exec.forks) {
                let mut group = group.into_iter();
                let nested = group.next().expect("fork event has a primary arm");
                queue.push_back(ForkJob {
                    prefix: nested,
                    snapshot: Some(Arc::clone(&snap)),
                    arm_prefixes: group.collect(),
                });
            }
            let mut arms = vec![MergeArm {
                constraints: self.exec.constraints.clone(),
                origins: self.exec.origins.clone(),
                taken: self.exec.taken.clone(),
            }];
            arms.extend(self.exec.arms.iter().cloned());
            leaves.push(Leaf {
                state: sib_state,
                symbols: self.exec.path_symbols.clone(),
                arms,
            });
        }
        self.exec.restore_path(checkpoint);
        // Absorb leaves into the running primary path where the gate
        // allows; group the rest among themselves.
        let outputs = task.merge_outputs(primary_state);
        let mut groups: Vec<(Leaf<T::State>, Vec<MergeArm>)> = Vec::new();
        for leaf in leaves {
            if task.states_equal(primary_state, &leaf.state)
                && self.exec.path_symbols == leaf.symbols
                && crate::merge::proves_mergeable(
                    &self.exec.ctx,
                    &mut self.exec.projector,
                    &self.exec.constraints,
                    &leaf.arms[0].constraints,
                    &outputs,
                    crate::merge::FETCH_SLOT_PREFIX,
                )
                .is_some()
            {
                self.exec.arms.extend(leaf.arms);
                continue;
            }
            let mut placed = false;
            for (rep, extra) in &mut groups {
                let rep_outputs = task.merge_outputs(&rep.state);
                if task.states_equal(&rep.state, &leaf.state)
                    && rep.symbols == leaf.symbols
                    && crate::merge::proves_mergeable(
                        &self.exec.ctx,
                        &mut self.exec.projector,
                        &rep.arms[0].constraints,
                        &leaf.arms[0].constraints,
                        &rep_outputs,
                        crate::merge::FETCH_SLOT_PREFIX,
                    )
                    .is_some()
                {
                    extra.extend(leaf.arms.iter().cloned());
                    placed = true;
                    break;
                }
            }
            if !placed {
                groups.push((leaf, Vec::new()));
            }
        }
        // Emit each group as one post-step snapshot job: prefix equals
        // the snapshot's decision record, so the job resumes with an
        // empty replay window and zero re-execution.
        for (rep, extra) in groups {
            let Leaf {
                state,
                symbols,
                arms,
            } = rep;
            let mut arms = arms;
            arms.extend(extra);
            let primary = arms.remove(0);
            let prefix = primary.taken.clone();
            let arm_prefixes: Vec<Vec<bool>> = arms.iter().map(|arm| arm.taken.clone()).collect();
            jobs.push(ForkJob {
                prefix,
                snapshot: Some(Arc::new(Snapshot {
                    state,
                    constraints: primary.constraints,
                    origins: primary.origins,
                    taken: primary.taken,
                    path_symbols: symbols,
                    arms,
                })),
                arm_prefixes,
            });
        }
    }

    /// Explores every feasible path through `task` (the counterpart of
    /// [`Engine::explore`](crate::Engine::explore)).
    pub fn explore<T: ForkTask>(&mut self, task: &T) -> ExploreOutcome<T::Out> {
        self.explore_until(task, |_| false)
    }

    /// Like [`ForkEngine::explore`], but stops as soon as `stop` returns
    /// true for a just-completed path.
    ///
    /// The frontier bounds resident snapshots to
    /// [`EngineConfig::max_resident_snapshots`]; beyond that, new forks are
    /// spilled to prefix-only jobs.
    pub fn explore_until<T: ForkTask, P>(&mut self, task: &T, mut stop: P) -> ExploreOutcome<T::Out>
    where
        P: FnMut(&PathResult<T::Out>) -> bool,
    {
        let mut frontier: Vec<ForkJob<T::State>> = vec![ForkJob::root()];
        let mut resident = 0usize;
        let mut paths = Vec::new();
        let mut complete = 0usize;
        let mut partial = 0usize;
        let mut merged = 0usize;

        while let Some(job) = self.pop_frontier(&mut frontier) {
            if job.has_snapshot() {
                resident -= 1;
            }
            if paths.len() >= self.config.max_paths {
                return ExploreOutcome {
                    paths,
                    complete_paths: complete,
                    partial_paths: partial,
                    frontier_exhausted: true,
                    merged_paths: merged,
                    paths_dropped: frontier.len() + 1,
                };
            }
            // Paths already recorded, jobs already queued and the popped
            // job itself all consume budget slots; only what is left may
            // be spent looking ahead for merges.
            self.merge_headroom = self
                .config
                .max_paths
                .saturating_sub(paths.len() + frontier.len() + 1);
            let (results, forks) = self.run_job(job, task);
            for fork in forks {
                if fork.has_snapshot() && resident >= self.config.max_resident_snapshots {
                    // A merged job cannot survive losing its snapshot as
                    // one prefix; it re-splits into per-arm replays.
                    frontier.extend(fork.split_on_spill());
                } else {
                    if fork.has_snapshot() {
                        resident += 1;
                    }
                    frontier.push(fork);
                }
            }
            merged += results.len().saturating_sub(1);
            let mut stopped = false;
            for result in results {
                match result.status {
                    PathStatus::Complete => complete += 1,
                    _ => partial += 1,
                }
                paths.push(result);
                if stop(paths.last().expect("just pushed")) {
                    stopped = true;
                    break;
                }
            }
            if stopped {
                return ExploreOutcome {
                    frontier_exhausted: !frontier.is_empty(),
                    paths_dropped: frontier.len(),
                    paths,
                    complete_paths: complete,
                    partial_paths: partial,
                    merged_paths: merged,
                };
            }
        }

        ExploreOutcome {
            paths,
            complete_paths: complete,
            partial_paths: partial,
            frontier_exhausted: false,
            merged_paths: merged,
            paths_dropped: 0,
        }
    }

    fn pop_frontier<S>(&mut self, frontier: &mut Vec<ForkJob<S>>) -> Option<ForkJob<S>> {
        if frontier.is_empty() {
            return None;
        }
        // Mirrors Engine::pop_frontier exactly (same xorshift64* stream),
        // so both engines visit the canonical path tree in the same order.
        let index = match self.config.strategy {
            SearchStrategy::Dfs => frontier.len() - 1,
            SearchStrategy::Bfs => 0,
            SearchStrategy::RandomPath => {
                self.rng_state ^= self.rng_state << 13;
                self.rng_state ^= self.rng_state >> 7;
                self.rng_state ^= self.rng_state << 17;
                (self.rng_state as usize) % frontier.len()
            }
        };
        Some(frontier.swap_remove(index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, SymExec};

    /// Stepped twin of the re-execution tests' three-bit task: one
    /// decision per step over distinct bits of one symbol.
    struct BitTask {
        bits: u32,
    }

    #[derive(Debug, Clone)]
    struct BitState {
        value: u32,
        bit: u32,
    }

    impl ForkTask for BitTask {
        type State = BitState;
        type Out = u32;

        fn start(&self, _exec: &mut ForkExec) -> BitState {
            BitState { value: 0, bit: 0 }
        }

        fn step(&self, state: &mut BitState, exec: &mut ForkExec) -> StepResult<u32> {
            if exec.is_dead() || state.bit >= self.bits {
                return StepResult::Done(state.value);
            }
            let x = exec.fresh_word("x");
            let field = exec.field(x, state.bit, state.bit);
            let one = exec.const_word(1);
            let set = exec.eq_w(field, one);
            if exec.decide(set) {
                state.value |= 1 << state.bit;
            }
            state.bit += 1;
            StepResult::Continue
        }
    }

    fn closure_bit_task(bits: u32) -> impl FnMut(&mut SymExec<'_>) -> u32 {
        move |exec| {
            let x = exec.fresh_word("x");
            let mut value = 0u32;
            for bit in 0..bits {
                let field = exec.field(x, bit, bit);
                let one = exec.const_word(1);
                let set = exec.eq_w(field, one);
                if exec.decide(set) {
                    value |= 1 << bit;
                }
            }
            value
        }
    }

    fn fingerprint(paths: &[PathResult<u32>]) -> Vec<String> {
        paths
            .iter()
            .map(|p| {
                format!(
                    "{:?}|{:?}|{}|{}|{:?}",
                    p.value,
                    p.decisions,
                    p.num_constraints,
                    p.status == PathStatus::Complete,
                    p.test_vector.as_ref().map(|v| v.to_string())
                )
            })
            .collect()
    }

    #[test]
    fn fork_engine_matches_reexec_engine() {
        for strategy in [
            SearchStrategy::Dfs,
            SearchStrategy::Bfs,
            SearchStrategy::RandomPath,
        ] {
            let config = EngineConfig {
                strategy,
                ..EngineConfig::default()
            };
            let mut reexec = Engine::new(config.clone());
            let expected = reexec.explore(closure_bit_task(3));
            let mut fork = ForkEngine::new(config);
            let actual = fork.explore(&BitTask { bits: 3 });
            assert_eq!(
                fingerprint(&actual.paths),
                fingerprint(&expected.paths),
                "{strategy:?}: engines must visit identical canonical paths"
            );
            assert_eq!(actual.complete_paths, expected.complete_paths);
            assert_eq!(actual.partial_paths, expected.partial_paths);
            assert_eq!(actual.frontier_exhausted, expected.frontier_exhausted);
        }
    }

    #[test]
    fn spilled_jobs_match_snapshotted_jobs() {
        // Forcing every fork to spill (max_resident_snapshots = 0) must
        // not change any path outcome — only the cost of resuming.
        let snappy = EngineConfig::default();
        let spilly = EngineConfig {
            max_resident_snapshots: 0,
            ..EngineConfig::default()
        };
        let mut with_snapshots = ForkEngine::new(snappy);
        let baseline = with_snapshots.explore(&BitTask { bits: 4 });
        let mut without = ForkEngine::new(spilly);
        let spilled = without.explore(&BitTask { bits: 4 });
        assert_eq!(fingerprint(&baseline.paths), fingerprint(&spilled.paths));
    }

    #[test]
    fn run_job_is_history_independent() {
        // The same spilled prefix on a fresh engine and on a warmed-up
        // engine: identical result and forks.
        let prefix = vec![true, false];
        let task = BitTask { bits: 3 };
        let mut fresh = ForkEngine::new(EngineConfig::default());
        let (mut baselines, base_forks) =
            fresh.run_job(ForkJob::from_prefix(prefix.clone()), &task);
        let baseline = baselines.pop().expect("one record");

        let mut warmed = ForkEngine::new(EngineConfig::default());
        warmed.run_job(ForkJob::root(), &task);
        warmed.run_job(ForkJob::from_prefix(vec![false]), &task);
        let (mut repeats, repeat_forks) = warmed.run_job(ForkJob::from_prefix(prefix), &task);
        let repeat = repeats.pop().expect("one record");

        assert_eq!(repeat.value, baseline.value);
        assert_eq!(repeat.status, baseline.status);
        assert_eq!(repeat.decisions, baseline.decisions);
        let (a, b): (Vec<_>, Vec<_>) = (
            base_forks.iter().map(|j| j.prefix().to_vec()).collect(),
            repeat_forks.iter().map(|j| j.prefix().to_vec()).collect(),
        );
        assert_eq!(a, b);
        assert_eq!(
            baseline.test_vector.expect("feasible").to_string(),
            repeat.test_vector.expect("feasible").to_string(),
        );
    }

    struct AssumeTask;

    impl ForkTask for AssumeTask {
        type State = u32;
        type Out = bool;

        fn start(&self, _exec: &mut ForkExec) -> u32 {
            0
        }

        fn step(&self, state: &mut u32, exec: &mut ForkExec) -> StepResult<bool> {
            if exec.is_dead() {
                return StepResult::Done(exec.is_dead());
            }
            match *state {
                0 => {
                    let x = exec.fresh_word("x");
                    let three = exec.const_word(3);
                    let is3 = exec.eq_w(x, three);
                    exec.assume(is3);
                }
                1 => {
                    let x = exec.fresh_word("x");
                    let four = exec.const_word(4);
                    let is4 = exec.eq_w(x, four);
                    exec.assume(is4); // contradiction
                }
                _ => return StepResult::Done(exec.is_dead()),
            }
            *state += 1;
            StepResult::Continue
        }
    }

    #[test]
    fn contradictory_assumes_mark_infeasible() {
        let mut engine = ForkEngine::new(EngineConfig::default());
        let outcome = engine.explore(&AssumeTask);
        assert_eq!(outcome.paths.len(), 1);
        assert_eq!(outcome.paths[0].status, PathStatus::Infeasible);
        assert_eq!(outcome.partial_paths, 1);
        assert!(outcome.paths[0].value);
    }

    #[test]
    fn decision_limit_counts_as_partial() {
        let config = EngineConfig {
            max_decisions_per_path: 2,
            ..EngineConfig::default()
        };
        let mut engine = ForkEngine::new(config);
        let outcome = engine.explore(&BitTask { bits: 8 });
        assert!(outcome
            .paths
            .iter()
            .any(|p| p.status == PathStatus::DecisionLimit));
    }

    #[test]
    fn max_paths_truncates_search() {
        let config = EngineConfig {
            max_paths: 3,
            ..EngineConfig::default()
        };
        let mut engine = ForkEngine::new(config);
        let outcome = engine.explore(&BitTask { bits: 6 });
        assert_eq!(outcome.paths.len(), 3);
        assert!(outcome.frontier_exhausted);
    }

    const DECODE_SLOT: &str = "imem_00000000";

    /// A decode-shaped task: step 0 forks on a fetch-slot bit without
    /// touching the state (the fork-engine analogue of two BRANCH decode
    /// siblings), step 1 forks on data (or splits the arms with a
    /// one-sided assume), step 2 finishes.
    struct DecodeTask {
        split_assume: bool,
    }

    #[derive(Debug, Clone, PartialEq)]
    struct DecodeState {
        step: u32,
        slot: Option<TermId>,
        value: u32,
    }

    impl ForkTask for DecodeTask {
        type State = DecodeState;
        type Out = u32;

        fn start(&self, _exec: &mut ForkExec) -> DecodeState {
            DecodeState {
                step: 0,
                slot: None,
                value: 0,
            }
        }

        fn step(&self, state: &mut DecodeState, exec: &mut ForkExec) -> StepResult<u32> {
            if exec.is_dead() {
                return StepResult::Done(state.value);
            }
            match state.step {
                0 => {
                    // Decode-shaped fork: the decision bit is a fetch-slot
                    // bit and the state is identical on both sides.
                    let slot = exec.fresh_word(DECODE_SLOT);
                    let field = exec.field(slot, 12, 12);
                    let one = exec.const_word(1);
                    let set = exec.eq_w(field, one);
                    let _ = exec.decide(set);
                    state.slot = Some(slot);
                }
                1 => {
                    if self.split_assume {
                        // Feasible on exactly one decode arm: a merged
                        // path must abandon and re-split here.
                        let slot = state.slot.expect("minted in step 0");
                        let field = exec.field(slot, 12, 12);
                        let one = exec.const_word(1);
                        let set = exec.eq_w(field, one);
                        exec.assume(set);
                        state.value = 7;
                    } else {
                        let data = exec.fresh_word("data_0");
                        let zero = exec.const_word(0);
                        let is_zero = exec.eq_w(data, zero);
                        state.value = if exec.decide(is_zero) { 1 } else { 2 };
                    }
                }
                _ => return StepResult::Done(state.value),
            }
            state.step += 1;
            StepResult::Continue
        }

        fn merge_capable(&self) -> bool {
            true
        }

        fn states_equal(&self, a: &DecodeState, b: &DecodeState) -> bool {
            a == b
        }

        fn expand_arm(&self, state: &DecodeState, _exec: &mut ForkExec) -> Option<u32> {
            Some(state.value)
        }
    }

    /// Canonical (decision-sorted) fingerprint: merging changes the order
    /// paths complete in, never their records.
    fn sorted_fingerprint(paths: &[PathResult<u32>]) -> Vec<String> {
        let mut paths = paths.to_vec();
        paths.sort_by(|a, b| a.decisions.cmp(&b.decisions));
        fingerprint(&paths)
    }

    #[test]
    fn merging_preserves_path_records_byte_for_byte() {
        let task = DecodeTask {
            split_assume: false,
        };
        let mut off = ForkEngine::new(EngineConfig::default());
        let baseline = off.explore(&task);
        let mut on = ForkEngine::new(EngineConfig {
            merge: true,
            ..EngineConfig::default()
        });
        let merged = on.explore(&task);
        assert_eq!(baseline.merged_paths, 0);
        assert!(
            merged.merged_paths > 0,
            "decode siblings with identical states must merge"
        );
        assert_eq!(
            sorted_fingerprint(&merged.paths),
            sorted_fingerprint(&baseline.paths),
        );
        assert_eq!(merged.complete_paths, baseline.complete_paths);
        assert_eq!(merged.partial_paths, baseline.partial_paths);
    }

    #[test]
    fn non_uniform_feasibility_abandons_the_merge() {
        let task = DecodeTask { split_assume: true };
        let mut off = ForkEngine::new(EngineConfig::default());
        let baseline = off.explore(&task);
        let mut on = ForkEngine::new(EngineConfig {
            merge: true,
            ..EngineConfig::default()
        });
        let merged = on.explore(&task);
        // The one-sided assume breaks lockstep before any record is
        // produced; both arms re-run unmerged and match bit for bit.
        assert_eq!(merged.merged_paths, 0);
        assert_eq!(
            sorted_fingerprint(&merged.paths),
            sorted_fingerprint(&baseline.paths),
        );
    }

    #[test]
    fn spilled_merged_jobs_resplit_into_arm_replays() {
        let task = DecodeTask {
            split_assume: false,
        };
        let mut off = ForkEngine::new(EngineConfig::default());
        let baseline = off.explore(&task);
        // With no resident snapshots allowed, every merged sibling job is
        // immediately split back into per-arm prefix replays.
        let mut on = ForkEngine::new(EngineConfig {
            merge: true,
            max_resident_snapshots: 0,
            ..EngineConfig::default()
        });
        let merged = on.explore(&task);
        assert_eq!(
            sorted_fingerprint(&merged.paths),
            sorted_fingerprint(&baseline.paths),
        );
    }

    #[test]
    fn replay_performs_no_solver_work() {
        // The whole point of the fork engine: resuming a sibling replays
        // forced decisions without feasibility checks, so exploring a
        // 2^4-path tree issues far fewer queries than 16 re-runs would.
        let mut engine = ForkEngine::new(EngineConfig::default());
        engine.explore(&BitTask { bits: 4 });
        let cache = engine.backend().query_cache_stats();
        let queries = cache.hits + cache.misses;
        // Each of the 15 fresh decisions asks at most 2 queries; replayed
        // decisions ask none.
        assert!(queries <= 30, "replay must not issue queries ({queries})");
    }
}
