//! KLEE-style solver chain: independence slicing plus a counterexample
//! cache in front of the SAT solver.
//!
//! The chain answers feasibility queries (conjunctions of width-1 terms)
//! without running the solver whenever it can:
//!
//! 1. **Independence slicing** — the condition set is partitioned into
//!    connected components of the "shares a symbol" relation. Components
//!    constrain disjoint inputs, so the conjunction is satisfiable exactly
//!    when every component is satisfiable on its own, and each component
//!    can be answered (and cached) independently. Path exploration grows
//!    condition sets one branch at a time, so all components untouched by
//!    the new condition replay as cache hits.
//! 2. **Counterexample cache** — every component the solver refutes is
//!    stored as its minimized UNSAT assumption core (from
//!    [`Solver::unsat_core`]). Any later component containing all of a
//!    known core's conditions is unsatisfiable by monotonicity, without
//!    solving.
//! 3. **Model cache** — recent satisfying models are kept as concrete
//!    environments; if one of them evaluates every condition of a
//!    component to true, the component is satisfiable, without solving.
//!    Models are only *candidates*: they are always validated by concrete
//!    evaluation, so an irrelevant cached model costs time but never
//!    soundness.
//!
//! The chain never changes an answer — only how it is computed — so
//! exploration results are bit-identical with the chain on or off (gated
//! by the `chain_equivalence` integration tests).

use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::rc::Rc;

use symcosim_sat::{Lit, SolveResult, Solver};

use crate::absint::{AbsInt, Preflight};
use crate::audit::ProofAuditor;
use crate::blast::Blaster;
use crate::eval::{eval_memo, Env};
use crate::solve::CheckResult;
use crate::term::{Node, TermId};
use crate::Context;

/// Satisfying models kept for the model cache. Small on purpose: models
/// are tried newest-first with full concrete evaluation, so a long tail
/// of stale models would cost more than the solves it saves.
const MODEL_LIMIT: usize = 32;

/// Counters of the solver chain (see the [module docs](self)), the
/// chain-level analogue of
/// [`QueryCacheStats`](crate::QueryCacheStats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverChainStats {
    /// Condition sets routed through the chain.
    pub queries: u64,
    /// Condition sets answered statically by the abstract-interpretation
    /// preflight, before any slicing or solver work.
    pub preflight_hits: u64,
    /// Independent components (slices) those sets were split into.
    pub slices: u64,
    /// Components answered by the exact per-component cache.
    pub slice_hits: u64,
    /// Components answered Unsat by unsat-core subsumption.
    pub core_hits: u64,
    /// Components answered Sat by evaluating a cached model.
    pub model_hits: u64,
    /// Components that fell through to the SAT solver.
    pub solves: u64,
    /// Solver-level solves that reused a retained assumption prefix from
    /// the previous query (see `Solver::reused_assumption_levels`).
    pub prefix_reuse_hits: u64,
    /// Largest component examined, in conditions.
    pub max_slice: u64,
}

impl SolverChainStats {
    /// Component-wise sum (maximum for `max_slice`), for aggregating
    /// per-worker statistics.
    pub fn merge(self, other: SolverChainStats) -> SolverChainStats {
        SolverChainStats {
            queries: self.queries + other.queries,
            preflight_hits: self.preflight_hits + other.preflight_hits,
            slices: self.slices + other.slices,
            slice_hits: self.slice_hits + other.slice_hits,
            core_hits: self.core_hits + other.core_hits,
            model_hits: self.model_hits + other.model_hits,
            solves: self.solves + other.solves,
            prefix_reuse_hits: self.prefix_reuse_hits + other.prefix_reuse_hits,
            max_slice: self.max_slice.max(other.max_slice),
        }
    }
}

impl fmt::Display for SolverChainStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "queries={} preflight_hits={} slices={} slice_hits={} core_hits={} model_hits={} \
             solves={} prefix_reuse_hits={} max_slice={}",
            self.queries,
            self.preflight_hits,
            self.slices,
            self.slice_hits,
            self.core_hits,
            self.model_hits,
            self.solves,
            self.prefix_reuse_hits,
            self.max_slice
        )
    }
}

impl std::str::FromStr for SolverChainStats {
    type Err = String;

    /// Parses the `Display` form back; the round trip pins the printed
    /// field set to the struct (and, transitively, to the
    /// `--progress-json` event fields gated in `exec`).
    fn from_str(s: &str) -> Result<SolverChainStats, String> {
        let mut stats = SolverChainStats::default();
        let mut seen = 0u32;
        for pair in s.split_whitespace() {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("malformed chain stat `{pair}`"))?;
            let value: u64 = value
                .parse()
                .map_err(|_| format!("non-numeric chain stat `{pair}`"))?;
            let field = match key {
                "queries" => &mut stats.queries,
                "preflight_hits" => &mut stats.preflight_hits,
                "slices" => &mut stats.slices,
                "slice_hits" => &mut stats.slice_hits,
                "core_hits" => &mut stats.core_hits,
                "model_hits" => &mut stats.model_hits,
                "solves" => &mut stats.solves,
                "prefix_reuse_hits" => &mut stats.prefix_reuse_hits,
                "max_slice" => &mut stats.max_slice,
                other => return Err(format!("unknown chain stat `{other}`")),
            };
            *field = value;
            seen += 1;
        }
        if seen != 9 {
            return Err(format!("expected 9 chain stats, found {seen}"));
        }
        Ok(stats)
    }
}

/// A portable snapshot of a [`SolverChain`]'s caches, for warming a later
/// run's chain (e.g. the serve daemon re-running the same job slice).
///
/// Model environments are keyed by symbol *name*, so they transfer to any
/// context and are re-validated by concrete evaluation before answering —
/// importing them is always sound. The component memo and unsat cores are
/// keyed by [`TermId`], which only lines up when the importing run builds
/// the identical term graph; deterministic exploration guarantees that
/// exactly when the seed is keyed on the full job configuration (config
/// hash, slice cube, engine, seed), which is the importer's obligation.
#[derive(Debug, Clone, Default)]
pub struct ChainSeed {
    components: Vec<(Box<[TermId]>, CheckResult)>,
    cores: Vec<Box<[TermId]>>,
    models: Vec<Env>,
}

impl ChainSeed {
    /// Whether the seed carries no cached facts at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.components.is_empty() && self.cores.is_empty() && self.models.is_empty()
    }

    /// Total cached entries (components + cores + models), for reporting.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.components.len() + self.cores.len() + self.models.len()
    }
}

/// The chain's caches. Owned by
/// [`SolverBackend`](crate::SolverBackend); the solver and blaster are
/// passed in per call so the chain shares the backend's incremental
/// solver state.
#[derive(Debug)]
pub(crate) struct SolverChain {
    /// Memoised symbol support per term (sorted, deduplicated).
    support: HashMap<TermId, Rc<Vec<TermId>>>,
    /// Exact per-component memo (the slicing analogue of the backend's
    /// full-set query cache).
    components: HashMap<Box<[TermId]>, CheckResult>,
    /// Known-unsat condition sets (sorted), minimized via assumption
    /// cores. Kept mutually non-subsuming.
    cores: Vec<Box<[TermId]>>,
    /// Recent satisfying models, newest first.
    models: VecDeque<Rc<Env>>,
    /// Abstract-interpretation facts backing the preflight stage, memoised
    /// against the same arena as the symbol-support memo.
    absint: AbsInt,
    /// Whether the preflight stage runs (on by default; answers never
    /// change, only how they are computed).
    preflight: bool,
    stats: SolverChainStats,
}

impl Default for SolverChain {
    fn default() -> SolverChain {
        SolverChain {
            support: HashMap::new(),
            components: HashMap::new(),
            cores: Vec::new(),
            models: VecDeque::new(),
            absint: AbsInt::new(),
            preflight: true,
            stats: SolverChainStats::default(),
        }
    }
}

impl SolverChain {
    pub(crate) fn new() -> SolverChain {
        SolverChain::default()
    }

    pub(crate) fn stats(&self) -> SolverChainStats {
        self.stats
    }

    /// Enables or disables the abstract-interpretation preflight stage.
    pub(crate) fn set_preflight(&mut self, enabled: bool) {
        self.preflight = enabled;
    }

    pub(crate) fn preflight_enabled(&self) -> bool {
        self.preflight
    }

    /// Exports the chain's caches as an owned, `Send`-able seed.
    pub(crate) fn export_seed(&self) -> ChainSeed {
        ChainSeed {
            components: self
                .components
                .iter()
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
            cores: self.cores.clone(),
            models: self.models.iter().map(|env| (**env).clone()).collect(),
        }
    }

    /// Pre-loads the caches from a seed exported by an identical run (see
    /// [`ChainSeed`] for the keying obligation). Existing entries win on
    /// conflict; model capacity still applies.
    pub(crate) fn import_seed(&mut self, seed: &ChainSeed) {
        for (component, result) in &seed.components {
            self.components.entry(component.clone()).or_insert(*result);
        }
        for core in &seed.cores {
            if !self.subsumed_by_core(core) {
                self.cores.retain(|stored| !is_subset(core, stored));
                self.cores.push(core.clone());
            }
        }
        for env in &seed.models {
            if self.models.len() == MODEL_LIMIT {
                break;
            }
            self.models.push_back(Rc::new(env.clone()));
        }
    }

    /// Chain entry point: checks the conjunction of `conditions`
    /// (already sorted and deduplicated by the caller). With `audit`
    /// present, every cache-producing solve — the answers that seed the
    /// core and model caches — is replayed through the independent proof
    /// checker before it is stored.
    pub(crate) fn check(
        &mut self,
        ctx: &Context,
        solver: &mut Solver,
        blaster: &mut Blaster,
        conditions: &[TermId],
        mut audit: Option<&mut ProofAuditor>,
    ) -> CheckResult {
        self.stats.queries += 1;

        // Constant conditions never reach the solver: a false one decides
        // the query, true ones are no constraint at all.
        let mut pending: Vec<TermId> = Vec::with_capacity(conditions.len());
        for &c in conditions {
            match ctx.const_value(c) {
                Some(0) => return CheckResult::Unsat,
                Some(_) => {}
                None => pending.push(c),
            }
        }
        if pending.is_empty() {
            return CheckResult::Sat;
        }

        // Preflight: abstract interpretation statically answers condition
        // sets whose conjunction is forced, before any slicing or solver
        // work. Sound, so the answer is the one the solver would give.
        if self.preflight {
            match self.absint.preflight(ctx, &pending) {
                Some(Preflight::Sat) => {
                    self.stats.preflight_hits += 1;
                    return CheckResult::Sat;
                }
                Some(Preflight::Unsat) => {
                    self.stats.preflight_hits += 1;
                    return CheckResult::Unsat;
                }
                None => {}
            }
        }

        for component in self.partition(ctx, &pending) {
            self.stats.slices += 1;
            self.stats.max_slice = self.stats.max_slice.max(component.len() as u64);
            if self.check_component(ctx, solver, blaster, &component, audit.as_deref_mut())
                == CheckResult::Unsat
            {
                return CheckResult::Unsat;
            }
        }
        CheckResult::Sat
    }

    /// Splits `conditions` into connected components of the shared-symbol
    /// relation. Conditions over disjoint symbols are independent: a model
    /// for the conjunction is exactly one model per component, glued
    /// together. Symbol-free (yet non-constant) conditions share no
    /// symbol with anything, so each forms a singleton component.
    fn partition(&mut self, ctx: &Context, conditions: &[TermId]) -> Vec<Box<[TermId]>> {
        let supports: Vec<Rc<Vec<TermId>>> =
            conditions.iter().map(|&c| self.support(ctx, c)).collect();

        // Union-find over condition indices, linked through first-seen
        // symbol owners.
        let mut parent: Vec<usize> = (0..conditions.len()).collect();
        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]]; // path halving
                i = parent[i];
            }
            i
        }
        let mut owner: HashMap<TermId, usize> = HashMap::new();
        for (i, support) in supports.iter().enumerate() {
            for &sym in support.iter() {
                match owner.entry(sym) {
                    Entry::Occupied(o) => {
                        let a = find(&mut parent, i);
                        let b = find(&mut parent, *o.get());
                        parent[a.max(b)] = a.min(b);
                    }
                    Entry::Vacant(v) => {
                        v.insert(i);
                    }
                }
            }
        }

        // Group by root; BTreeMap keeps components in first-condition
        // order, so the split is deterministic.
        let mut groups: BTreeMap<usize, Vec<TermId>> = BTreeMap::new();
        for (i, &condition) in conditions.iter().enumerate() {
            let root = find(&mut parent, i);
            groups.entry(root).or_default().push(condition);
        }
        groups
            .into_values()
            .map(|mut group| {
                group.sort_unstable();
                group.into_boxed_slice()
            })
            .collect()
    }

    /// The sorted set of symbols `term` depends on, memoised per term.
    fn support(&mut self, ctx: &Context, term: TermId) -> Rc<Vec<TermId>> {
        if let Some(cached) = self.support.get(&term) {
            return Rc::clone(cached);
        }
        let children: Vec<TermId> = match ctx.node(term) {
            Node::Const { .. } => Vec::new(),
            Node::Symbol { .. } => {
                let rc = Rc::new(vec![term]);
                self.support.insert(term, Rc::clone(&rc));
                return rc;
            }
            Node::Not(a)
            | Node::Extract { term: a, .. }
            | Node::ZeroExt { term: a, .. }
            | Node::SignExt { term: a, .. } => vec![a],
            Node::And(a, b)
            | Node::Or(a, b)
            | Node::Xor(a, b)
            | Node::Add(a, b)
            | Node::Sub(a, b)
            | Node::Mul(a, b)
            | Node::Shl(a, b)
            | Node::Lshr(a, b)
            | Node::Ashr(a, b)
            | Node::Eq(a, b)
            | Node::Ult(a, b)
            | Node::Slt(a, b)
            | Node::Concat { hi: a, lo: b } => vec![a, b],
            Node::Ite(c, t, e) => vec![c, t, e],
        };
        let mut symbols: Vec<TermId> = Vec::new();
        for child in children {
            let child_support = self.support(ctx, child);
            symbols.extend(child_support.iter().copied());
        }
        symbols.sort_unstable();
        symbols.dedup();
        let rc = Rc::new(symbols);
        self.support.insert(term, Rc::clone(&rc));
        rc
    }

    /// Runs one component through the cache levels, solving only at the
    /// bottom.
    fn check_component(
        &mut self,
        ctx: &Context,
        solver: &mut Solver,
        blaster: &mut Blaster,
        component: &[TermId],
        audit: Option<&mut ProofAuditor>,
    ) -> CheckResult {
        if let Some(&cached) = self.components.get(component) {
            self.stats.slice_hits += 1;
            return cached;
        }
        if self.subsumed_by_core(component) {
            self.stats.core_hits += 1;
            self.components.insert(component.into(), CheckResult::Unsat);
            return CheckResult::Unsat;
        }
        if self.satisfied_by_cached_model(ctx, component) {
            self.stats.model_hits += 1;
            self.components.insert(component.into(), CheckResult::Sat);
            return CheckResult::Sat;
        }

        self.stats.solves += 1;
        let assumptions: Vec<Lit> = component
            .iter()
            .map(|&c| blaster.bool_lit(ctx, solver, c))
            .collect();
        let result = solver.solve(&assumptions);
        if solver.reused_assumption_levels() > 0 {
            self.stats.prefix_reuse_hits += 1;
        }
        let result = match result {
            SolveResult::Sat => {
                if let Some(auditor) = audit {
                    auditor.audit_sat(solver);
                }
                self.store_model(ctx, solver, blaster, component);
                CheckResult::Sat
            }
            SolveResult::Unsat => {
                if let Some(auditor) = audit {
                    auditor.audit_unsat(solver);
                }
                self.store_core(solver.unsat_core(), &assumptions, component);
                CheckResult::Unsat
            }
        };
        self.components.insert(component.into(), result);
        result
    }

    /// `true` if some stored core is a subset of `component` (sorted).
    fn subsumed_by_core(&self, component: &[TermId]) -> bool {
        self.cores.iter().any(|core| is_subset(core, component))
    }

    /// Maps the solver's assumption core back to condition terms and
    /// stores it, keeping the core set mutually non-subsuming. An empty
    /// solver core (formula-level unsat) degrades to the full component —
    /// still a valid unsat set.
    fn store_core(&mut self, core_lits: &[Lit], assumptions: &[Lit], component: &[TermId]) {
        let lits: HashSet<Lit> = core_lits.iter().copied().collect();
        let mut core: Vec<TermId> = component
            .iter()
            .zip(assumptions)
            .filter(|(_, lit)| lits.contains(lit))
            .map(|(&term, _)| term)
            .collect();
        if core.is_empty() {
            core = component.to_vec();
        }
        core.sort_unstable();
        core.dedup();
        if self.subsumed_by_core(&core) {
            return;
        }
        self.cores.retain(|stored| !is_subset(&core, stored));
        self.cores.push(core.into_boxed_slice());
    }

    /// Tries every cached model, newest first; a model satisfying all of
    /// `component` proves satisfiability.
    fn satisfied_by_cached_model(&self, ctx: &Context, component: &[TermId]) -> bool {
        self.models.iter().any(|env| {
            let mut memo = HashMap::new();
            component
                .iter()
                .all(|&c| eval_memo(ctx, c, env, &mut memo) & 1 == 1)
        })
    }

    /// Captures the solver's current model over the component's symbols
    /// as a concrete environment. Bits the model is silent about read as
    /// zero — harmless, since cached models are re-validated by
    /// evaluation before ever answering a query.
    fn store_model(
        &mut self,
        ctx: &Context,
        solver: &mut Solver,
        blaster: &mut Blaster,
        component: &[TermId],
    ) {
        let mut symbols: Vec<TermId> = Vec::new();
        for &c in component {
            symbols.extend(self.support(ctx, c).iter().copied());
        }
        symbols.sort_unstable();
        symbols.dedup();

        let mut env = Env::new();
        for sym in symbols {
            let bits = blaster.bits(ctx, solver, sym);
            let mut value = 0u64;
            for (i, lit) in bits.iter().enumerate() {
                if solver.model_lit_value(*lit) == Some(true) {
                    value |= 1 << i;
                }
            }
            let name = ctx.symbol_name(sym).expect("support holds symbols");
            env.insert(name.to_string(), value);
        }
        if self.models.len() == MODEL_LIMIT {
            self.models.pop_back();
        }
        self.models.push_front(Rc::new(env));
    }
}

/// Subset test over sorted slices (merge walk).
fn is_subset(small: &[TermId], big: &[TermId]) -> bool {
    let mut iter = big.iter();
    'outer: for needle in small {
        for candidate in iter.by_ref() {
            if candidate == needle {
                continue 'outer;
            }
            if candidate > needle {
                return false;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_parts() -> (SolverChain, Solver, Blaster) {
        (SolverChain::new(), Solver::new(), Blaster::new())
    }

    #[test]
    fn subset_walk() {
        let t = |i: u32| TermId(i);
        assert!(is_subset(&[], &[t(1), t(2)]));
        assert!(is_subset(&[t(2)], &[t(1), t(2), t(3)]));
        assert!(is_subset(&[t(1), t(3)], &[t(1), t(2), t(3)]));
        assert!(!is_subset(&[t(1), t(4)], &[t(1), t(2), t(3)]));
        assert!(!is_subset(&[t(0)], &[t(1)]));
        assert!(!is_subset(&[t(1)], &[]));
    }

    #[test]
    fn independent_conditions_split_into_components() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let y = ctx.symbol(8, "y");
        let c1 = ctx.constant(8, 1);
        let x1 = ctx.eq(x, c1);
        let y1 = ctx.eq(y, c1);
        let mut chain = SolverChain::new();
        let parts = chain.partition(&ctx, &[x1, y1]);
        assert_eq!(parts.len(), 2);

        // A condition over both symbols glues them together.
        let sum = ctx.add(x, y);
        let bound = ctx.ult(sum, c1);
        let parts = chain.partition(&ctx, &[x1, y1, bound]);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].len(), 3);
    }

    #[test]
    fn growing_prefix_resolves_untouched_components_from_cache() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let y = ctx.symbol(8, "y");
        let c1 = ctx.constant(8, 1);
        let c2 = ctx.constant(8, 2);
        let x1 = ctx.eq(x, c1);
        let y1 = ctx.eq(y, c1);
        let y2 = ctx.eq(y, c2);

        let (mut chain, mut solver, mut blaster) = chain_parts();
        // Preflight would statically refute the third query; this test is
        // about the per-slice cache, so bypass it.
        chain.set_preflight(false);
        assert!(chain
            .check(&ctx, &mut solver, &mut blaster, &[x1], None)
            .is_sat());
        // Adding the independent y-condition re-solves only its slice.
        assert!(chain
            .check(&ctx, &mut solver, &mut blaster, &[x1, y1], None)
            .is_sat());
        let stats = chain.stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.slice_hits, 1, "x-slice replays from the cache");
        assert_eq!(stats.solves, 2, "one solve per distinct slice");

        // y = 1 ∧ y = 2 is unsat; the x-slice is never re-examined by
        // the solver, and the whole-set answer is still Unsat.
        assert!(!chain
            .check(&ctx, &mut solver, &mut blaster, &[x1, y1, y2], None)
            .is_sat());
        assert_eq!(chain.stats().slice_hits, 2);
    }

    #[test]
    fn unsat_core_subsumption_answers_supersets() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let c1 = ctx.constant(8, 1);
        let c2 = ctx.constant(8, 2);
        let c3 = ctx.constant(8, 3);
        let x1 = ctx.eq(x, c1);
        let x2 = ctx.eq(x, c2);
        let x3 = ctx.eq(x, c3);

        let (mut chain, mut solver, mut blaster) = chain_parts();
        // Both queries are preflight-decidable; bypass it to exercise the
        // unsat-core level underneath.
        chain.set_preflight(false);
        assert!(!chain
            .check(&ctx, &mut solver, &mut blaster, &[x1, x2], None)
            .is_sat());
        let solves = chain.stats().solves;
        // {x1, x2, x3} ⊇ the stored core: answered without solving. The
        // superset is a different component key, so this is subsumption,
        // not the exact component cache.
        assert!(!chain
            .check(&ctx, &mut solver, &mut blaster, &[x1, x2, x3], None)
            .is_sat());
        assert_eq!(chain.stats().solves, solves);
        assert_eq!(chain.stats().core_hits, 1);
    }

    #[test]
    fn cached_model_answers_weaker_queries() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let c5 = ctx.constant(8, 5);
        let c100 = ctx.constant(8, 100);
        let is5 = ctx.eq(x, c5);
        let small = ctx.ult(x, c100);

        let (mut chain, mut solver, mut blaster) = chain_parts();
        assert!(chain
            .check(&ctx, &mut solver, &mut blaster, &[is5], None)
            .is_sat());
        // The x = 5 model also witnesses x < 100.
        assert!(chain
            .check(&ctx, &mut solver, &mut blaster, &[small], None)
            .is_sat());
        let stats = chain.stats();
        assert_eq!(stats.model_hits, 1);
        assert_eq!(stats.solves, 1);
    }

    #[test]
    fn constant_conditions_short_circuit() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let c1 = ctx.constant(8, 1);
        let x1 = ctx.eq(x, c1);
        let truth = ctx.constant(1, 1);
        let falsum = ctx.constant(1, 0);

        let (mut chain, mut solver, mut blaster) = chain_parts();
        assert!(chain
            .check(&ctx, &mut solver, &mut blaster, &[truth], None)
            .is_sat());
        assert!(!chain
            .check(&ctx, &mut solver, &mut blaster, &[falsum, x1], None)
            .is_sat());
        let stats = chain.stats();
        assert_eq!(stats.solves, 0, "no constant query may reach the solver");
    }

    #[test]
    fn exported_seed_warms_a_fresh_chain() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let c1 = ctx.constant(8, 1);
        let c2 = ctx.constant(8, 2);
        let x1 = ctx.eq(x, c1);
        let x2 = ctx.eq(x, c2);

        // First run: one sat solve, one unsat solve (with a stored core
        // and a stored model). Preflight would answer the unsat query
        // before a core is ever stored; this test is about seeding all
        // three caches, so bypass it.
        let (mut chain, mut solver, mut blaster) = chain_parts();
        chain.set_preflight(false);
        assert!(chain
            .check(&ctx, &mut solver, &mut blaster, &[x1], None)
            .is_sat());
        assert!(!chain
            .check(&ctx, &mut solver, &mut blaster, &[x1, x2], None)
            .is_sat());
        let seed = chain.export_seed();
        assert!(!seed.is_empty());
        assert!(seed.entries() >= 3, "components + core + model");

        // Second run over the same term graph, warmed: identical answers
        // with zero solves.
        let (mut warmed, mut solver2, mut blaster2) = chain_parts();
        warmed.set_preflight(false);
        warmed.import_seed(&seed);
        assert!(warmed
            .check(&ctx, &mut solver2, &mut blaster2, &[x1], None)
            .is_sat());
        assert!(!warmed
            .check(&ctx, &mut solver2, &mut blaster2, &[x1, x2], None)
            .is_sat());
        let stats = warmed.stats();
        assert_eq!(stats.solves, 0, "warm chain must not re-solve: {stats}");
        assert_eq!(stats.slice_hits, 2);

        // The seeded model also answers *new* weaker queries.
        let c100 = ctx.constant(8, 100);
        let small = ctx.ult(x, c100);
        assert!(warmed
            .check(&ctx, &mut solver2, &mut blaster2, &[small], None)
            .is_sat());
        assert_eq!(warmed.stats().model_hits, 1);
        assert_eq!(warmed.stats().solves, 0);
    }

    #[test]
    fn empty_seed_is_a_no_op() {
        let seed = ChainSeed::default();
        assert!(seed.is_empty());
        assert_eq!(seed.entries(), 0);
        let mut chain = SolverChain::new();
        chain.import_seed(&seed);
        assert_eq!(chain.export_seed().entries(), 0);
    }

    #[test]
    fn chain_stats_display_round_trips() {
        let stats = SolverChainStats {
            queries: 11,
            preflight_hits: 9,
            slices: 22,
            slice_hits: 33,
            core_hits: 44,
            model_hits: 55,
            solves: 66,
            prefix_reuse_hits: 77,
            max_slice: 7,
        };
        let printed = stats.to_string();
        let parsed: SolverChainStats = printed.parse().expect("display form parses");
        assert_eq!(parsed, stats, "Display must carry every field");
        assert!("queries=1".parse::<SolverChainStats>().is_err());
        assert!(
            "queries=1 preflight_hits=0 slices=x slice_hits=0 core_hits=0 model_hits=0 \
             solves=0 prefix_reuse_hits=0 max_slice=0"
                .parse::<SolverChainStats>()
                .is_err()
        );
    }

    #[test]
    fn stats_merge_sums_and_maxes() {
        let a = SolverChainStats {
            queries: 1,
            preflight_hits: 9,
            slices: 2,
            slice_hits: 3,
            core_hits: 4,
            model_hits: 5,
            solves: 6,
            prefix_reuse_hits: 7,
            max_slice: 7,
        };
        let b = SolverChainStats {
            queries: 10,
            preflight_hits: 90,
            slices: 20,
            slice_hits: 30,
            core_hits: 40,
            model_hits: 50,
            solves: 60,
            prefix_reuse_hits: 70,
            max_slice: 3,
        };
        let merged = a.merge(b);
        assert_eq!(merged.queries, 11);
        assert_eq!(merged.preflight_hits, 99);
        assert_eq!(merged.slices, 22);
        assert_eq!(merged.slice_hits, 33);
        assert_eq!(merged.core_hits, 44);
        assert_eq!(merged.model_hits, 55);
        assert_eq!(merged.solves, 66);
        assert_eq!(merged.prefix_reuse_hits, 77);
        assert_eq!(merged.max_slice, 7);
        assert!(!merged.to_string().is_empty());
    }

    #[test]
    fn preflight_refutes_forced_conflicts_without_solving() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let c1 = ctx.constant(8, 1);
        let c2 = ctx.constant(8, 2);
        let x1 = ctx.eq(x, c1);
        let x2 = ctx.eq(x, c2);

        let (mut chain, mut solver, mut blaster) = chain_parts();
        assert!(chain.preflight_enabled(), "preflight defaults on");
        assert!(!chain
            .check(&ctx, &mut solver, &mut blaster, &[x1, x2], None)
            .is_sat());
        let stats = chain.stats();
        assert_eq!(stats.preflight_hits, 1);
        assert_eq!(stats.solves, 0, "statically refuted before the solver");
        assert_eq!(stats.slices, 0, "answered before slicing");
    }

    #[test]
    fn preflight_accepts_static_tautologies_without_solving() {
        let mut ctx = Context::new();
        let b = ctx.symbol(1, "b");
        let wide = ctx.zero_ext(b, 32);
        let c2 = ctx.constant(32, 2);
        let taut = ctx.ult(wide, c2);

        let (mut chain, mut solver, mut blaster) = chain_parts();
        assert!(chain
            .check(&ctx, &mut solver, &mut blaster, &[taut], None)
            .is_sat());
        let stats = chain.stats();
        assert_eq!(stats.preflight_hits, 1);
        assert_eq!(stats.solves, 0);
    }

    #[test]
    fn preflight_off_reaches_the_solver_with_identical_answers() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let c1 = ctx.constant(8, 1);
        let c2 = ctx.constant(8, 2);
        let x1 = ctx.eq(x, c1);
        let x2 = ctx.eq(x, c2);

        let (mut chain, mut solver, mut blaster) = chain_parts();
        chain.set_preflight(false);
        assert!(!chain
            .check(&ctx, &mut solver, &mut blaster, &[x1, x2], None)
            .is_sat());
        let stats = chain.stats();
        assert_eq!(stats.preflight_hits, 0);
        assert!(stats.solves > 0, "the slice falls through to the solver");
    }
}
