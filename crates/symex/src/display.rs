//! Term pretty-printing and graph statistics.
//!
//! Debugging aids: constraints and voter conditions can be dumped in a
//! readable SMT-like prefix syntax, and the context can report how big the
//! shared term graph has grown (useful when tuning memory sizes and the
//! symbolic register window).

use std::collections::HashMap;

use crate::term::{Node, TermId};
use crate::Context;

impl Context {
    /// Renders `term` as an SMT-like prefix expression.
    ///
    /// Shared subterms are rendered in full at each occurrence; use
    /// [`Context::stats`] to judge sharing. Constants print as hex,
    /// symbols by name.
    ///
    /// # Example
    ///
    /// ```
    /// use symcosim_symex::Context;
    ///
    /// let mut ctx = Context::new();
    /// let x = ctx.symbol(32, "x");
    /// let k = ctx.constant(32, 7);
    /// let sum = ctx.add(x, k);
    /// let cond = ctx.ult(sum, k);
    /// assert_eq!(ctx.render(cond), "(ult (add x 0x7) 0x7)");
    /// ```
    pub fn render(&self, term: TermId) -> String {
        match self.node(term) {
            Node::Const { value, .. } => format!("{value:#x}"),
            Node::Symbol { .. } => self
                .symbol_name(term)
                .expect("symbol has a name")
                .to_string(),
            Node::Not(a) => format!("(not {})", self.render(a)),
            Node::And(a, b) => format!("(and {} {})", self.render(a), self.render(b)),
            Node::Or(a, b) => format!("(or {} {})", self.render(a), self.render(b)),
            Node::Xor(a, b) => format!("(xor {} {})", self.render(a), self.render(b)),
            Node::Add(a, b) => format!("(add {} {})", self.render(a), self.render(b)),
            Node::Sub(a, b) => format!("(sub {} {})", self.render(a), self.render(b)),
            Node::Mul(a, b) => format!("(mul {} {})", self.render(a), self.render(b)),
            Node::Shl(a, b) => format!("(shl {} {})", self.render(a), self.render(b)),
            Node::Lshr(a, b) => format!("(lshr {} {})", self.render(a), self.render(b)),
            Node::Ashr(a, b) => format!("(ashr {} {})", self.render(a), self.render(b)),
            Node::Eq(a, b) => format!("(eq {} {})", self.render(a), self.render(b)),
            Node::Ult(a, b) => format!("(ult {} {})", self.render(a), self.render(b)),
            Node::Slt(a, b) => format!("(slt {} {})", self.render(a), self.render(b)),
            Node::Ite(c, t, e) => {
                format!(
                    "(ite {} {} {})",
                    self.render(c),
                    self.render(t),
                    self.render(e)
                )
            }
            Node::Extract { term, hi, lo } => {
                format!("(extract[{hi}:{lo}] {})", self.render(term))
            }
            Node::Concat { hi, lo } => {
                format!("(concat {} {})", self.render(hi), self.render(lo))
            }
            Node::ZeroExt { term, width } => {
                format!("(zext[{width}] {})", self.render(term))
            }
            Node::SignExt { term, width } => {
                format!("(sext[{width}] {})", self.render(term))
            }
        }
    }

    /// Aggregate statistics of the term graph.
    pub fn stats(&self) -> ContextStats {
        let mut by_kind: HashMap<&'static str, usize> = HashMap::new();
        let mut symbols = 0;
        let mut constants = 0;
        for index in 0..self.num_nodes() {
            let node = self.node(TermId(index as u32));
            let kind = match node {
                Node::Const { .. } => {
                    constants += 1;
                    "const"
                }
                Node::Symbol { .. } => {
                    symbols += 1;
                    "symbol"
                }
                Node::Not(_) => "not",
                Node::And(..) => "and",
                Node::Or(..) => "or",
                Node::Xor(..) => "xor",
                Node::Add(..) => "add",
                Node::Sub(..) => "sub",
                Node::Mul(..) => "mul",
                Node::Shl(..) => "shl",
                Node::Lshr(..) => "lshr",
                Node::Ashr(..) => "ashr",
                Node::Eq(..) => "eq",
                Node::Ult(..) => "ult",
                Node::Slt(..) => "slt",
                Node::Ite(..) => "ite",
                Node::Extract { .. } => "extract",
                Node::Concat { .. } => "concat",
                Node::ZeroExt { .. } => "zext",
                Node::SignExt { .. } => "sext",
            };
            *by_kind.entry(kind).or_default() += 1;
        }
        ContextStats {
            nodes: self.num_nodes(),
            symbols,
            constants,
            by_kind,
        }
    }
}

/// Term-graph statistics returned by [`Context::stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextStats {
    /// Total interned nodes.
    pub nodes: usize,
    /// Symbol leaves.
    pub symbols: usize,
    /// Constant leaves.
    pub constants: usize,
    /// Node count per operator kind.
    pub by_kind: HashMap<&'static str, usize>,
}

impl std::fmt::Display for ContextStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} nodes ({} symbols, {} constants)",
            self.nodes, self.symbols, self.constants
        )?;
        let mut kinds: Vec<_> = self
            .by_kind
            .iter()
            .filter(|(k, _)| **k != "symbol" && **k != "const")
            .collect();
        kinds.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        for (kind, count) in kinds.into_iter().take(5) {
            write!(f, ", {kind}×{count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_expressions() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let y = ctx.symbol(8, "y");
        let diff = ctx.sub(x, y);
        let byte = ctx.extract(diff, 3, 0);
        let wide = ctx.sign_ext(byte, 8);
        let zero = ctx.constant(8, 0);
        let cond = ctx.eq(wide, zero);
        let sel = ctx.ite(cond, x, y);
        assert_eq!(
            ctx.render(sel),
            "(ite (eq (sext[8] (extract[3:0] (sub x y))) 0x0) x y)"
        );
    }

    #[test]
    fn stats_count_kinds() {
        let mut ctx = Context::new();
        let x = ctx.symbol(32, "x");
        let y = ctx.symbol(32, "y");
        let a = ctx.add(x, y);
        let _b = ctx.add(x, y); // hash-consed: no new node
        let _c = ctx.mul(a, x);
        let stats = ctx.stats();
        assert_eq!(stats.symbols, 2);
        assert_eq!(stats.by_kind.get("add"), Some(&1));
        assert_eq!(stats.by_kind.get("mul"), Some(&1));
        assert!(!stats.to_string().is_empty());
    }
}
