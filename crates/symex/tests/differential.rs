//! Differential property tests: the bit-blaster against the concrete
//! evaluator, over randomly generated term DAGs.

use symcosim_symex::{eval, AbsInt, Context, Env, Node, Preflight, SolverBackend, TermId};
use symcosim_testkit::{check_cases, Rng};

/// A recipe for building a random term over two 8-bit symbols.
#[derive(Debug, Clone)]
enum Recipe {
    X,
    Y,
    Const(u8),
    Not(Box<Recipe>),
    And(Box<Recipe>, Box<Recipe>),
    Or(Box<Recipe>, Box<Recipe>),
    Xor(Box<Recipe>, Box<Recipe>),
    Add(Box<Recipe>, Box<Recipe>),
    Sub(Box<Recipe>, Box<Recipe>),
    Mul(Box<Recipe>, Box<Recipe>),
    Shl(Box<Recipe>, Box<Recipe>),
    Lshr(Box<Recipe>, Box<Recipe>),
    Ashr(Box<Recipe>, Box<Recipe>),
    IteUlt(Box<Recipe>, Box<Recipe>, Box<Recipe>, Box<Recipe>),
}

fn build(ctx: &mut Context, recipe: &Recipe) -> TermId {
    match recipe {
        Recipe::X => ctx.symbol(8, "x"),
        Recipe::Y => ctx.symbol(8, "y"),
        Recipe::Const(v) => ctx.constant(8, *v as u64),
        Recipe::Not(a) => {
            let a = build(ctx, a);
            ctx.not(a)
        }
        Recipe::And(a, b) => {
            let (a, b) = (build(ctx, a), build(ctx, b));
            ctx.and(a, b)
        }
        Recipe::Or(a, b) => {
            let (a, b) = (build(ctx, a), build(ctx, b));
            ctx.or(a, b)
        }
        Recipe::Xor(a, b) => {
            let (a, b) = (build(ctx, a), build(ctx, b));
            ctx.xor(a, b)
        }
        Recipe::Add(a, b) => {
            let (a, b) = (build(ctx, a), build(ctx, b));
            ctx.add(a, b)
        }
        Recipe::Sub(a, b) => {
            let (a, b) = (build(ctx, a), build(ctx, b));
            ctx.sub(a, b)
        }
        Recipe::Mul(a, b) => {
            let (a, b) = (build(ctx, a), build(ctx, b));
            ctx.mul(a, b)
        }
        Recipe::Shl(a, b) => {
            let (a, b) = (build(ctx, a), build(ctx, b));
            ctx.shl(a, b)
        }
        Recipe::Lshr(a, b) => {
            let (a, b) = (build(ctx, a), build(ctx, b));
            ctx.lshr(a, b)
        }
        Recipe::Ashr(a, b) => {
            let (a, b) = (build(ctx, a), build(ctx, b));
            ctx.ashr(a, b)
        }
        Recipe::IteUlt(a, b, t, e) => {
            let (a, b) = (build(ctx, a), build(ctx, b));
            let cond = ctx.ult(a, b);
            let (t, e) = (build(ctx, t), build(ctx, e));
            ctx.ite(cond, t, e)
        }
    }
}

/// A random recipe with bounded depth (matching the old proptest
/// `prop_recursive(4, ..)` shape: leaves grow more likely as depth runs out).
fn recipe(rng: &mut Rng, depth: usize) -> Recipe {
    if depth == 0 || rng.chance(1, 4) {
        return match rng.index(3) {
            0 => Recipe::X,
            1 => Recipe::Y,
            _ => Recipe::Const(rng.below(256) as u8),
        };
    }
    let d = depth - 1;
    match rng.index(11) {
        0 => Recipe::Not(Box::new(recipe(rng, d))),
        1 => Recipe::And(Box::new(recipe(rng, d)), Box::new(recipe(rng, d))),
        2 => Recipe::Or(Box::new(recipe(rng, d)), Box::new(recipe(rng, d))),
        3 => Recipe::Xor(Box::new(recipe(rng, d)), Box::new(recipe(rng, d))),
        4 => Recipe::Add(Box::new(recipe(rng, d)), Box::new(recipe(rng, d))),
        5 => Recipe::Sub(Box::new(recipe(rng, d)), Box::new(recipe(rng, d))),
        6 => Recipe::Mul(Box::new(recipe(rng, d)), Box::new(recipe(rng, d))),
        7 => Recipe::Shl(Box::new(recipe(rng, d)), Box::new(recipe(rng, d))),
        8 => Recipe::Lshr(Box::new(recipe(rng, d)), Box::new(recipe(rng, d))),
        9 => Recipe::Ashr(Box::new(recipe(rng, d)), Box::new(recipe(rng, d))),
        _ => Recipe::IteUlt(
            Box::new(recipe(rng, d)),
            Box::new(recipe(rng, d)),
            Box::new(recipe(rng, d)),
            Box::new(recipe(rng, d)),
        ),
    }
}

/// Under an input-fixing path condition, the blasted term is forced to
/// exactly the value the reference evaluator computes.
#[test]
fn blaster_agrees_with_evaluator() {
    check_cases(0xd1f_0001, 64, |rng| {
        let recipe = recipe(rng, 4);
        let x = rng.below(256) as u8;
        let y = rng.below(256) as u8;

        let mut ctx = Context::new();
        let term = build(&mut ctx, &recipe);
        let sym_x = ctx.symbol(8, "x");
        let sym_y = ctx.symbol(8, "y");

        let mut env = Env::new();
        env.insert("x".into(), x as u64);
        env.insert("y".into(), y as u64);
        let expected = eval(&ctx, term, &env);

        let cx = ctx.constant(8, x as u64);
        let cy = ctx.constant(8, y as u64);
        let fix_x = ctx.eq(sym_x, cx);
        let fix_y = ctx.eq(sym_y, cy);
        let cexp = ctx.constant(8, expected);
        let matches = ctx.eq(term, cexp);
        let differs = ctx.not(matches);

        let mut backend = SolverBackend::new();
        assert!(
            backend.check(&ctx, &[fix_x, fix_y, matches]).is_sat(),
            "expected value {expected:#x} must be consistent ({recipe:?})"
        );
        assert!(
            !backend.check(&ctx, &[fix_x, fix_y, differs]).is_sat(),
            "blasted term must be forced to {expected:#x} ({recipe:?})"
        );
    });
}

/// A random boolean condition over the two symbols: an equality with a
/// constant, an unsigned comparison, or a disequality of two terms.
fn condition(rng: &mut Rng, ctx: &mut Context) -> TermId {
    let a = build(ctx, &recipe(rng, 3));
    match rng.index(3) {
        0 => {
            let c = ctx.constant(8, rng.below(256));
            ctx.eq(a, c)
        }
        1 => {
            let b = build(ctx, &recipe(rng, 3));
            ctx.ult(a, b)
        }
        _ => {
            let b = build(ctx, &recipe(rng, 3));
            let e = ctx.eq(a, b);
            ctx.not(e)
        }
    }
}

/// The solver chain (independence slicing, counterexample-core
/// subsumption, cached-model evaluation) never flips an answer: over
/// random query sequences — with shared conditions across queries so the
/// component, core and model caches all get hits — a chained backend and
/// a direct backend agree on every Sat/Unsat verdict, and every
/// satisfiable set is witnessed by a model that replays to true through
/// the concrete evaluator.
#[test]
fn solver_chain_never_flips_answers() {
    check_cases(0xd1f_0003, 48, |rng| {
        let mut ctx = Context::new();
        let mut chained = SolverBackend::with_chain(true);
        let mut direct = SolverBackend::with_chain(false);

        let mut pool: Vec<TermId> = Vec::new();
        for _ in 0..6 {
            while pool.len() < 3 {
                pool.push(condition(rng, &mut ctx));
            }
            // Draw a set that mostly reuses pooled conditions (supersets
            // of previously unsat sets hit the core cache; repeats hit
            // the component cache) plus an occasional fresh one.
            let mut set: Vec<TermId> = (0..1 + rng.index(3))
                .map(|_| pool[rng.index(pool.len())])
                .collect();
            if rng.chance(1, 2) {
                let fresh = condition(rng, &mut ctx);
                pool.push(fresh);
                set.push(fresh);
            }

            let on = chained.check_cached(&ctx, &set);
            let off = direct.check_cached(&ctx, &set);
            assert_eq!(on, off, "solver chain flipped the answer on {set:?}");

            if on.is_sat() {
                // A fresh solve of the same set yields a model; it must
                // satisfy every condition under the reference evaluator.
                let mut fresh = SolverBackend::new();
                assert!(fresh.check(&ctx, &set).is_sat(), "re-solve of {set:?}");
                let env = fresh.test_vector(&ctx).to_env();
                for c in &set {
                    assert_eq!(
                        eval(&ctx, *c, &env),
                        1,
                        "model does not replay condition {c:?} of {set:?}"
                    );
                }
            }
        }
        assert!(chained.solver_chain_stats().queries > 0);
        assert_eq!(direct.solver_chain_stats().queries, 0);
    });
}

/// Proof auditing never flips an answer on term-tree queries: over the
/// same cache-heavy random query sequences as the chain test, an audited
/// chained backend and an unaudited one agree on every Sat/Unsat
/// verdict, the independent checker certifies every answer along the
/// way (models evaluated, cores replayed, no recorded failure), and the
/// unaudited backend accumulates no audit state at all.
#[test]
fn proof_audit_never_flips_term_queries() {
    check_cases(0xd1f_0004, 32, |rng| {
        let mut ctx = Context::new();
        let mut audited = SolverBackend::with_options(true, true);
        let mut plain = SolverBackend::with_options(true, false);

        let mut pool: Vec<TermId> = Vec::new();
        for _ in 0..6 {
            while pool.len() < 3 {
                pool.push(condition(rng, &mut ctx));
            }
            let mut set: Vec<TermId> = (0..1 + rng.index(3))
                .map(|_| pool[rng.index(pool.len())])
                .collect();
            if rng.chance(1, 2) {
                let fresh = condition(rng, &mut ctx);
                pool.push(fresh);
                set.push(fresh);
            }

            let on = audited.check_cached(&ctx, &set);
            let off = plain.check_cached(&ctx, &set);
            assert_eq!(on, off, "proof audit flipped the answer on {set:?}");
        }

        let stats = audited.proof_audit_stats();
        assert!(stats.steps > 0, "auditor applied no proof steps");
        assert!(
            stats.models + stats.cores > 0,
            "auditor certified no answers"
        );
        assert_eq!(stats.failures, 0, "{:?}", audited.proof_audit_failure());
        assert_eq!(plain.proof_audit_stats().steps, 0, "audit state leaked");
    });
}

/// Incremental solving never flips an answer on prefix-growing query
/// streams — the access pattern symbolic execution produces. Over
/// random sequences that grow a path prefix one condition at a time,
/// with occasional backtracks to a shallower fork point, three backends
/// agree on every verdict: an audited incremental backend driven
/// through the prefix API ([`SolverBackend::prefix_push`] /
/// [`SolverBackend::prefix_truncate`] / [`SolverBackend::check_suffix`],
/// so learnt clauses and trail prefixes are retained across queries),
/// the same configuration with incremental solving disabled, and a
/// fresh backend solving each query from scratch. Every satisfiable
/// prefix is witnessed by a model that replays through the reference
/// evaluator, and the auditor certifies every retained-prefix answer
/// (models evaluated, cores replayed) with no failures.
#[test]
fn incremental_prefix_streams_never_flip_answers() {
    check_cases(0xd1f_0005, 24, |rng| {
        let mut ctx = Context::new();
        let mut incremental = SolverBackend::with_options(true, true);
        let mut non_incremental = SolverBackend::with_options(true, true);
        non_incremental.set_incremental(false);
        assert!(incremental.incremental() && !non_incremental.incremental());

        let mut prefix: Vec<TermId> = Vec::new();
        for _ in 0..8 {
            if !prefix.is_empty() && rng.chance(1, 4) {
                // The engine backtracked: retract to a shallower fork.
                let keep = rng.index(prefix.len());
                prefix.truncate(keep);
                incremental.prefix_truncate(keep);
            }
            let cond = condition(rng, &mut ctx);
            prefix.push(cond);

            // The engine's query shape: tracked prefix + the one new
            // branch condition, committed only after the check.
            let inc = incremental.check_suffix(&ctx, &[cond]);
            incremental.prefix_push(cond);
            assert_eq!(incremental.prefix_len(), prefix.len());

            let non_inc = non_incremental.check_cached(&ctx, &prefix);
            assert_eq!(inc, non_inc, "incremental flipped the answer on {prefix:?}");
            let mut fresh = SolverBackend::new();
            let scratch = fresh.check(&ctx, &prefix);
            assert_eq!(
                inc, scratch,
                "retained state flipped the answer on {prefix:?}"
            );

            if scratch.is_sat() {
                let env = fresh.test_vector(&ctx).to_env();
                for c in &prefix {
                    assert_eq!(
                        eval(&ctx, *c, &env),
                        1,
                        "model does not replay condition {c:?} of {prefix:?}"
                    );
                }
            } else {
                // An infeasible path is dead: the engine drops it. Keep
                // the stream on feasible prefixes like the engine does.
                prefix.pop();
                incremental.prefix_truncate(prefix.len());
            }
        }

        for backend in [&incremental, &non_incremental] {
            let stats = backend.proof_audit_stats();
            assert!(stats.steps > 0, "auditor applied no proof steps");
            assert_eq!(stats.failures, 0, "{:?}", backend.proof_audit_failure());
        }
    });
}

/// Every subterm reachable from `roots`, deduplicated.
fn subterms(ctx: &Context, roots: &[TermId]) -> Vec<TermId> {
    let mut seen: Vec<TermId> = Vec::new();
    let mut work: Vec<TermId> = roots.to_vec();
    while let Some(id) = work.pop() {
        if seen.contains(&id) {
            continue;
        }
        seen.push(id);
        match ctx.node(id) {
            Node::Const { .. } | Node::Symbol { .. } => {}
            Node::Not(a)
            | Node::Extract { term: a, .. }
            | Node::ZeroExt { term: a, .. }
            | Node::SignExt { term: a, .. } => work.push(a),
            Node::And(a, b)
            | Node::Or(a, b)
            | Node::Xor(a, b)
            | Node::Add(a, b)
            | Node::Sub(a, b)
            | Node::Mul(a, b)
            | Node::Shl(a, b)
            | Node::Lshr(a, b)
            | Node::Ashr(a, b)
            | Node::Eq(a, b)
            | Node::Ult(a, b)
            | Node::Slt(a, b)
            | Node::Concat { hi: a, lo: b } => {
                work.push(a);
                work.push(b);
            }
            Node::Ite(c, t, e) => {
                work.push(c);
                work.push(t);
                work.push(e);
            }
        }
    }
    seen
}

/// The abstract-interpretation preflight never contradicts the SAT
/// core: over random condition sets — seasoned with conditions the
/// lattice can actually decide, so all three verdicts (`Sat`, `Unsat`,
/// undecided) occur — a `Preflight::Unsat` verdict implies the solver
/// reports unsat, a `Preflight::Sat` verdict implies sat, and for every
/// satisfiable set the solver's model lies inside the abstraction of
/// *every* subterm of the conditions (known-bits cube and interval
/// both).
#[test]
fn absint_never_contradicts_sat() {
    let mut sat_verdicts = 0u32;
    let mut unsat_verdicts = 0u32;
    let mut undecided = 0u32;
    check_cases(0xd1f_0006, 64, |rng| {
        let mut ctx = Context::new();
        let mut set: Vec<TermId> = (0..1 + rng.index(3))
            .map(|_| condition(rng, &mut ctx))
            .collect();
        if rng.chance(1, 3) {
            // A condition known-bits refutes: (x | 0x80) == c with bit 7
            // of c clear.
            let x = ctx.symbol(8, "x");
            let high = ctx.constant(8, 0x80);
            let tagged = ctx.or(x, high);
            let c = ctx.constant(8, rng.below(0x80));
            set.push(ctx.eq(tagged, c));
        } else if rng.chance(1, 2) {
            // A tautology the interval lattice proves: (x & 0xf) < 0x10.
            let x = ctx.symbol(8, "x");
            let low = ctx.constant(8, 0xf);
            let masked = ctx.and(x, low);
            let bound = ctx.constant(8, 0x10);
            set = vec![ctx.ult(masked, bound)];
        }
        if rng.chance(1, 4) {
            // Sub-64-width shift-clamp regression: a logical right shift
            // whose symbolic amount has a known lower bound past
            // width - 1 (here lo >= 8 on an 8-bit term). The interval
            // path must clamp the bounding shift to w - 1 like the
            // arithmetic-shift path; the subterm containment check below
            // rejects any over-tight `hi` the clamp could produce.
            let x = ctx.symbol(8, "x");
            let y = ctx.symbol(8, "y");
            let past_width = ctx.constant(8, 8 << rng.index(2));
            let amount = ctx.or(y, past_width);
            let shifted = ctx.lshr(x, amount);
            let small = ctx.constant(8, 1 + rng.below(3));
            set.push(ctx.ult(shifted, small));
        }

        let mut absint = AbsInt::new();
        let verdict = absint.preflight(&ctx, &set);
        let mut backend = SolverBackend::new();
        let result = backend.check(&ctx, &set);
        match verdict {
            Some(Preflight::Unsat) => {
                unsat_verdicts += 1;
                assert!(
                    !result.is_sat(),
                    "preflight claimed unsat but the solver found a model ({set:?})"
                );
            }
            Some(Preflight::Sat) => {
                sat_verdicts += 1;
                assert!(
                    result.is_sat(),
                    "preflight claimed a tautology but the solver refuted it ({set:?})"
                );
            }
            None => undecided += 1,
        }

        if result.is_sat() {
            let env = backend.test_vector(&ctx).to_env();
            for term in subterms(&ctx, &set) {
                let value = eval(&ctx, term, &env);
                let fact = absint.fact(&ctx, term);
                assert!(
                    fact.contains(value),
                    "model value {value:#x} of {term} escapes its abstraction \
                     {fact:?} ({set:?})"
                );
            }
        }
    });
    assert!(
        sat_verdicts > 0,
        "no case exercised a Sat preflight verdict"
    );
    assert!(
        unsat_verdicts > 0,
        "no case exercised an Unsat preflight verdict"
    );
    assert!(undecided > 0, "no case left the preflight undecided");
}

/// Models returned for an unconstrained term always satisfy the
/// condition they were asked for (soundness of model extraction).
#[test]
fn models_replay_through_the_evaluator() {
    check_cases(0xd1f_0002, 64, |rng| {
        let recipe = recipe(rng, 4);
        let target = rng.below(256) as u8;

        let mut ctx = Context::new();
        let term = build(&mut ctx, &recipe);
        let ctarget = ctx.constant(8, target as u64);
        let cond = ctx.eq(term, ctarget);
        let mut backend = SolverBackend::new();
        if backend.check(&ctx, &[cond]).is_sat() {
            let vector = backend.test_vector(&ctx);
            let env = vector.to_env();
            assert_eq!(
                eval(&ctx, cond, &env),
                1,
                "test vector {vector} does not reproduce the condition"
            );
        }
    });
}
