//! Differential property tests: the bit-blaster against the concrete
//! evaluator, over randomly generated term DAGs.

use proptest::prelude::*;
use symcosim_symex::{eval, Context, Env, SolverBackend, TermId};

/// A recipe for building a random term over two 8-bit symbols.
#[derive(Debug, Clone)]
enum Recipe {
    X,
    Y,
    Const(u8),
    Not(Box<Recipe>),
    And(Box<Recipe>, Box<Recipe>),
    Or(Box<Recipe>, Box<Recipe>),
    Xor(Box<Recipe>, Box<Recipe>),
    Add(Box<Recipe>, Box<Recipe>),
    Sub(Box<Recipe>, Box<Recipe>),
    Mul(Box<Recipe>, Box<Recipe>),
    Shl(Box<Recipe>, Box<Recipe>),
    Lshr(Box<Recipe>, Box<Recipe>),
    Ashr(Box<Recipe>, Box<Recipe>),
    IteUlt(Box<Recipe>, Box<Recipe>, Box<Recipe>, Box<Recipe>),
}

fn build(ctx: &mut Context, recipe: &Recipe) -> TermId {
    match recipe {
        Recipe::X => ctx.symbol(8, "x"),
        Recipe::Y => ctx.symbol(8, "y"),
        Recipe::Const(v) => ctx.constant(8, *v as u64),
        Recipe::Not(a) => {
            let a = build(ctx, a);
            ctx.not(a)
        }
        Recipe::And(a, b) => {
            let (a, b) = (build(ctx, a), build(ctx, b));
            ctx.and(a, b)
        }
        Recipe::Or(a, b) => {
            let (a, b) = (build(ctx, a), build(ctx, b));
            ctx.or(a, b)
        }
        Recipe::Xor(a, b) => {
            let (a, b) = (build(ctx, a), build(ctx, b));
            ctx.xor(a, b)
        }
        Recipe::Add(a, b) => {
            let (a, b) = (build(ctx, a), build(ctx, b));
            ctx.add(a, b)
        }
        Recipe::Sub(a, b) => {
            let (a, b) = (build(ctx, a), build(ctx, b));
            ctx.sub(a, b)
        }
        Recipe::Mul(a, b) => {
            let (a, b) = (build(ctx, a), build(ctx, b));
            ctx.mul(a, b)
        }
        Recipe::Shl(a, b) => {
            let (a, b) = (build(ctx, a), build(ctx, b));
            ctx.shl(a, b)
        }
        Recipe::Lshr(a, b) => {
            let (a, b) = (build(ctx, a), build(ctx, b));
            ctx.lshr(a, b)
        }
        Recipe::Ashr(a, b) => {
            let (a, b) = (build(ctx, a), build(ctx, b));
            ctx.ashr(a, b)
        }
        Recipe::IteUlt(a, b, t, e) => {
            let (a, b) = (build(ctx, a), build(ctx, b));
            let cond = ctx.ult(a, b);
            let (t, e) = (build(ctx, t), build(ctx, e));
            ctx.ite(cond, t, e)
        }
    }
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    let leaf = prop_oneof![
        Just(Recipe::X),
        Just(Recipe::Y),
        any::<u8>().prop_map(Recipe::Const),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|a| Recipe::Not(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Recipe::Shl(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Recipe::Lshr(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Recipe::Ashr(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone(), inner).prop_map(|(a, b, t, e)| {
                Recipe::IteUlt(Box::new(a), Box::new(b), Box::new(t), Box::new(e))
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under an input-fixing path condition, the blasted term is forced to
    /// exactly the value the reference evaluator computes.
    #[test]
    fn blaster_agrees_with_evaluator(recipe in arb_recipe(), x in any::<u8>(), y in any::<u8>()) {
        let mut ctx = Context::new();
        let term = build(&mut ctx, &recipe);
        let sym_x = ctx.symbol(8, "x");
        let sym_y = ctx.symbol(8, "y");

        let mut env = Env::new();
        env.insert("x".into(), x as u64);
        env.insert("y".into(), y as u64);
        let expected = eval(&ctx, term, &env);

        let cx = ctx.constant(8, x as u64);
        let cy = ctx.constant(8, y as u64);
        let fix_x = ctx.eq(sym_x, cx);
        let fix_y = ctx.eq(sym_y, cy);
        let cexp = ctx.constant(8, expected);
        let matches = ctx.eq(term, cexp);
        let differs = ctx.not(matches);

        let mut backend = SolverBackend::new();
        prop_assert!(
            backend.check(&ctx, &[fix_x, fix_y, matches]).is_sat(),
            "expected value {expected:#x} must be consistent"
        );
        prop_assert!(
            !backend.check(&ctx, &[fix_x, fix_y, differs]).is_sat(),
            "blasted term must be forced to {expected:#x}"
        );
    }

    /// Models returned for an unconstrained term always satisfy the
    /// condition they were asked for (soundness of model extraction).
    #[test]
    fn models_replay_through_the_evaluator(recipe in arb_recipe(), target in any::<u8>()) {
        let mut ctx = Context::new();
        let term = build(&mut ctx, &recipe);
        let ctarget = ctx.constant(8, target as u64);
        let cond = ctx.eq(term, ctarget);
        let mut backend = SolverBackend::new();
        if backend.check(&ctx, &[cond]).is_sat() {
            let vector = backend.test_vector(&ctx);
            let env = vector.to_env();
            prop_assert_eq!(
                eval(&ctx, cond, &env), 1,
                "test vector {} does not reproduce the condition", vector
            );
        }
    }
}
