//! Disassembly: `Display` for [`Instr`] in conventional assembler syntax.

use std::fmt;

use crate::instr::{BranchKind, CsrOp, Instr, LoadKind, OpKind, StoreKind};
use crate::Csr;

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Lui { rd, imm } => write!(f, "lui {rd}, {:#x}", (imm as u32) >> 12),
            Instr::Auipc { rd, imm } => write!(f, "auipc {rd}, {:#x}", (imm as u32) >> 12),
            Instr::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Instr::Jalr { rd, rs1, imm } => write!(f, "jalr {rd}, {imm}({rs1})"),
            Instr::Branch {
                kind,
                rs1,
                rs2,
                offset,
            } => {
                let mn = match kind {
                    BranchKind::Beq => "beq",
                    BranchKind::Bne => "bne",
                    BranchKind::Blt => "blt",
                    BranchKind::Bge => "bge",
                    BranchKind::Bltu => "bltu",
                    BranchKind::Bgeu => "bgeu",
                };
                write!(f, "{mn} {rs1}, {rs2}, {offset}")
            }
            Instr::Load { kind, rd, rs1, imm } => {
                let mn = match kind {
                    LoadKind::Lb => "lb",
                    LoadKind::Lh => "lh",
                    LoadKind::Lw => "lw",
                    LoadKind::Lbu => "lbu",
                    LoadKind::Lhu => "lhu",
                };
                write!(f, "{mn} {rd}, {imm}({rs1})")
            }
            Instr::Store {
                kind,
                rs1,
                rs2,
                imm,
            } => {
                let mn = match kind {
                    StoreKind::Sb => "sb",
                    StoreKind::Sh => "sh",
                    StoreKind::Sw => "sw",
                };
                write!(f, "{mn} {rs2}, {imm}({rs1})")
            }
            Instr::Addi { rd, rs1, imm } => write!(f, "addi {rd}, {rs1}, {imm}"),
            Instr::Slti { rd, rs1, imm } => write!(f, "slti {rd}, {rs1}, {imm}"),
            Instr::Sltiu { rd, rs1, imm } => write!(f, "sltiu {rd}, {rs1}, {imm}"),
            Instr::Xori { rd, rs1, imm } => write!(f, "xori {rd}, {rs1}, {imm}"),
            Instr::Ori { rd, rs1, imm } => write!(f, "ori {rd}, {rs1}, {imm}"),
            Instr::Andi { rd, rs1, imm } => write!(f, "andi {rd}, {rs1}, {imm}"),
            Instr::Slli { rd, rs1, shamt } => write!(f, "slli {rd}, {rs1}, {shamt}"),
            Instr::Srli { rd, rs1, shamt } => write!(f, "srli {rd}, {rs1}, {shamt}"),
            Instr::Srai { rd, rs1, shamt } => write!(f, "srai {rd}, {rs1}, {shamt}"),
            Instr::Op { kind, rd, rs1, rs2 } => {
                let mn = match kind {
                    OpKind::Add => "add",
                    OpKind::Sub => "sub",
                    OpKind::Sll => "sll",
                    OpKind::Slt => "slt",
                    OpKind::Sltu => "sltu",
                    OpKind::Xor => "xor",
                    OpKind::Srl => "srl",
                    OpKind::Sra => "sra",
                    OpKind::Or => "or",
                    OpKind::And => "and",
                };
                write!(f, "{mn} {rd}, {rs1}, {rs2}")
            }
            Instr::Fence { pred, succ } => write!(f, "fence {pred:#x}, {succ:#x}"),
            Instr::FenceI => f.write_str("fence.i"),
            Instr::Ecall => f.write_str("ecall"),
            Instr::Ebreak => f.write_str("ebreak"),
            Instr::Mret => f.write_str("mret"),
            Instr::Wfi => f.write_str("wfi"),
            Instr::Csr { op, rd, rs1, csr } => {
                let mn = match op {
                    CsrOp::Rw => "csrrw",
                    CsrOp::Rs => "csrrs",
                    CsrOp::Rc => "csrrc",
                };
                write!(f, "{mn} {rd}, {}, {rs1}", Csr(csr))
            }
            Instr::CsrImm { op, rd, uimm, csr } => {
                let mn = match op {
                    CsrOp::Rw => "csrrwi",
                    CsrOp::Rs => "csrrsi",
                    CsrOp::Rc => "csrrci",
                };
                write!(f, "{mn} {rd}, {}, {uimm}", Csr(csr))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    #[test]
    fn formats_match_convention() {
        assert_eq!(
            Instr::Lui {
                rd: Reg::X1,
                imm: 0x12345 << 12
            }
            .to_string(),
            "lui x1, 0x12345"
        );
        assert_eq!(
            Instr::Load {
                kind: LoadKind::Lw,
                rd: Reg::X2,
                rs1: Reg::X3,
                imm: -4
            }
            .to_string(),
            "lw x2, -4(x3)"
        );
        assert_eq!(
            Instr::Csr {
                op: CsrOp::Rw,
                rd: Reg::X0,
                rs1: Reg::X0,
                csr: 0xf11
            }
            .to_string(),
            "csrrw x0, mvendorid, x0"
        );
        assert_eq!(
            Instr::CsrImm {
                op: CsrOp::Rs,
                rd: Reg::X1,
                uimm: 0,
                csr: 0xc00
            }
            .to_string(),
            "csrrsi x1, cycle, 0"
        );
        assert_eq!(Instr::Wfi.to_string(), "wfi");
    }
}
