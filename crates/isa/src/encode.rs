//! The instruction encoder (assembler back-end).

use crate::imm::{encode_b_imm, encode_i_imm, encode_j_imm, encode_s_imm, encode_u_imm};
use crate::instr::{CsrOp, Instr};
use crate::{opcodes, Reg};

#[inline]
fn rd(reg: Reg) -> u32 {
    (reg.index() as u32) << 7
}

#[inline]
fn rs1(reg: Reg) -> u32 {
    (reg.index() as u32) << 15
}

#[inline]
fn rs2(reg: Reg) -> u32 {
    (reg.index() as u32) << 20
}

#[inline]
fn f3(value: u32) -> u32 {
    value << 12
}

#[inline]
fn f7(value: u32) -> u32 {
    value << 25
}

/// Encodes an [`Instr`] into its 32-bit instruction word.
///
/// Encoding is the exact inverse of [`decode`](crate::decode): for every
/// instruction `i`, `decode(encode(&i)) == Ok(i)` (verified by property
/// tests).
///
/// # Panics
///
/// Panics if an immediate is out of range for its format (e.g. an I-type
/// immediate outside `-2048..=2047`, a shift amount ≥ 32, or a CSR zimm
/// ≥ 32); see the `encode_*_imm` immediate codecs re-exported at the crate root.
///
/// # Example
///
/// ```
/// use symcosim_isa::{encode, Instr, Reg};
///
/// let nop = encode(&Instr::Addi { rd: Reg::X0, rs1: Reg::X0, imm: 0 });
/// assert_eq!(nop, 0x0000_0013);
/// ```
pub fn encode(instr: &Instr) -> u32 {
    match *instr {
        Instr::Lui { rd: d, imm } => opcodes::LUI | rd(d) | encode_u_imm(imm),
        Instr::Auipc { rd: d, imm } => opcodes::AUIPC | rd(d) | encode_u_imm(imm),
        Instr::Jal { rd: d, offset } => opcodes::JAL | rd(d) | encode_j_imm(offset),
        Instr::Jalr {
            rd: d,
            rs1: s1,
            imm,
        } => opcodes::JALR | rd(d) | rs1(s1) | encode_i_imm(imm),
        Instr::Branch {
            kind,
            rs1: s1,
            rs2: s2,
            offset,
        } => opcodes::BRANCH | f3(kind.funct3()) | rs1(s1) | rs2(s2) | encode_b_imm(offset),
        Instr::Load {
            kind,
            rd: d,
            rs1: s1,
            imm,
        } => opcodes::LOAD | f3(kind.funct3()) | rd(d) | rs1(s1) | encode_i_imm(imm),
        Instr::Store {
            kind,
            rs1: s1,
            rs2: s2,
            imm,
        } => opcodes::STORE | f3(kind.funct3()) | rs1(s1) | rs2(s2) | encode_s_imm(imm),
        Instr::Addi {
            rd: d,
            rs1: s1,
            imm,
        } => opcodes::OP_IMM | f3(0b000) | rd(d) | rs1(s1) | encode_i_imm(imm),
        Instr::Slti {
            rd: d,
            rs1: s1,
            imm,
        } => opcodes::OP_IMM | f3(0b010) | rd(d) | rs1(s1) | encode_i_imm(imm),
        Instr::Sltiu {
            rd: d,
            rs1: s1,
            imm,
        } => opcodes::OP_IMM | f3(0b011) | rd(d) | rs1(s1) | encode_i_imm(imm),
        Instr::Xori {
            rd: d,
            rs1: s1,
            imm,
        } => opcodes::OP_IMM | f3(0b100) | rd(d) | rs1(s1) | encode_i_imm(imm),
        Instr::Ori {
            rd: d,
            rs1: s1,
            imm,
        } => opcodes::OP_IMM | f3(0b110) | rd(d) | rs1(s1) | encode_i_imm(imm),
        Instr::Andi {
            rd: d,
            rs1: s1,
            imm,
        } => opcodes::OP_IMM | f3(0b111) | rd(d) | rs1(s1) | encode_i_imm(imm),
        Instr::Slli {
            rd: d,
            rs1: s1,
            shamt,
        } => {
            assert!(shamt < 32, "shift amount out of range: {shamt}");
            opcodes::OP_IMM | f3(0b001) | rd(d) | rs1(s1) | ((shamt as u32) << 20)
        }
        Instr::Srli {
            rd: d,
            rs1: s1,
            shamt,
        } => {
            assert!(shamt < 32, "shift amount out of range: {shamt}");
            opcodes::OP_IMM | f3(0b101) | rd(d) | rs1(s1) | ((shamt as u32) << 20)
        }
        Instr::Srai {
            rd: d,
            rs1: s1,
            shamt,
        } => {
            assert!(shamt < 32, "shift amount out of range: {shamt}");
            opcodes::OP_IMM | f3(0b101) | f7(0b010_0000) | rd(d) | rs1(s1) | ((shamt as u32) << 20)
        }
        Instr::Op {
            kind,
            rd: d,
            rs1: s1,
            rs2: s2,
        } => {
            let (funct3, funct7) = kind.functs();
            opcodes::OP | f3(funct3) | f7(funct7) | rd(d) | rs1(s1) | rs2(s2)
        }
        Instr::Fence { pred, succ } => {
            assert!(
                pred < 16 && succ < 16,
                "fence sets are 4-bit: {pred} {succ}"
            );
            opcodes::MISC_MEM | ((pred as u32) << 24) | ((succ as u32) << 20)
        }
        Instr::FenceI => opcodes::MISC_MEM | f3(0b001),
        Instr::Ecall => opcodes::SYSTEM,
        Instr::Ebreak => opcodes::SYSTEM | (1 << 20),
        Instr::Mret => opcodes::SYSTEM | f7(0b001_1000) | (0b00010 << 20),
        Instr::Wfi => opcodes::SYSTEM | f7(0b000_1000) | (0b00101 << 20),
        Instr::Csr {
            op,
            rd: d,
            rs1: s1,
            csr,
        } => {
            assert!(csr < 4096, "CSR address is 12-bit: {csr:#x}");
            let funct3 = match op {
                CsrOp::Rw => 0b001,
                CsrOp::Rs => 0b010,
                CsrOp::Rc => 0b011,
            };
            opcodes::SYSTEM | f3(funct3) | rd(d) | rs1(s1) | ((csr as u32) << 20)
        }
        Instr::CsrImm {
            op,
            rd: d,
            uimm,
            csr,
        } => {
            assert!(csr < 4096, "CSR address is 12-bit: {csr:#x}");
            assert!(uimm < 32, "CSR zimm is 5-bit: {uimm}");
            let funct3 = match op {
                CsrOp::Rw => 0b101,
                CsrOp::Rs => 0b110,
                CsrOp::Rc => 0b111,
            };
            opcodes::SYSTEM | f3(funct3) | rd(d) | ((uimm as u32) << 15) | ((csr as u32) << 20)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode;
    use crate::instr::{BranchKind, LoadKind, OpKind, StoreKind};

    #[test]
    fn canonical_encodings() {
        assert_eq!(encode(&Instr::Ecall), 0x0000_0073);
        assert_eq!(encode(&Instr::Ebreak), 0x0010_0073);
        assert_eq!(encode(&Instr::Mret), 0x3020_0073);
        assert_eq!(encode(&Instr::Wfi), 0x1050_0073);
        // add x1, x2, x3
        assert_eq!(
            encode(&Instr::Op {
                kind: OpKind::Add,
                rd: Reg::X1,
                rs1: Reg::X2,
                rs2: Reg::X3
            }),
            0x0031_00b3
        );
    }

    #[test]
    fn round_trip_representative_sample() {
        let sample = [
            Instr::Lui {
                rd: Reg::X31,
                imm: -4096,
            },
            Instr::Auipc {
                rd: Reg::X1,
                imm: 0x7fff_f000,
            },
            Instr::Jal {
                rd: Reg::X1,
                offset: -2,
            },
            Instr::Jalr {
                rd: Reg::X0,
                rs1: Reg::X5,
                imm: 2047,
            },
            Instr::Branch {
                kind: BranchKind::Bgeu,
                rs1: Reg::X3,
                rs2: Reg::X4,
                offset: -4096,
            },
            Instr::Load {
                kind: LoadKind::Lhu,
                rd: Reg::X9,
                rs1: Reg::X10,
                imm: -1,
            },
            Instr::Store {
                kind: StoreKind::Sh,
                rs1: Reg::X11,
                rs2: Reg::X12,
                imm: -2048,
            },
            Instr::Slli {
                rd: Reg::X1,
                rs1: Reg::X2,
                shamt: 31,
            },
            Instr::Srai {
                rd: Reg::X1,
                rs1: Reg::X2,
                shamt: 1,
            },
            Instr::Fence {
                pred: 0xf,
                succ: 0x3,
            },
            Instr::FenceI,
            Instr::Csr {
                op: CsrOp::Rs,
                rd: Reg::X1,
                rs1: Reg::X1,
                csr: 0xf14,
            },
            Instr::CsrImm {
                op: CsrOp::Rc,
                rd: Reg::X1,
                uimm: 1,
                csr: 0xf12,
            },
        ];
        for instr in sample {
            assert_eq!(decode(encode(&instr)), Ok(instr), "{instr:?}");
        }
    }

    #[test]
    #[should_panic(expected = "shift amount out of range")]
    fn rejects_wide_shift() {
        encode(&Instr::Slli {
            rd: Reg::X1,
            rs1: Reg::X1,
            shamt: 32,
        });
    }
}
