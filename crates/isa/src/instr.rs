//! The decoded instruction representation.

use crate::Reg;

/// Width/signedness selector for the load instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadKind {
    /// `LB` — load signed byte.
    Lb,
    /// `LH` — load signed half-word.
    Lh,
    /// `LW` — load word.
    Lw,
    /// `LBU` — load unsigned byte.
    Lbu,
    /// `LHU` — load unsigned half-word.
    Lhu,
}

impl LoadKind {
    /// The `funct3` encoding of this load.
    pub const fn funct3(self) -> u32 {
        match self {
            LoadKind::Lb => 0b000,
            LoadKind::Lh => 0b001,
            LoadKind::Lw => 0b010,
            LoadKind::Lbu => 0b100,
            LoadKind::Lhu => 0b101,
        }
    }

    /// Access width in bytes.
    pub const fn width(self) -> u32 {
        match self {
            LoadKind::Lb | LoadKind::Lbu => 1,
            LoadKind::Lh | LoadKind::Lhu => 2,
            LoadKind::Lw => 4,
        }
    }

    /// Whether the loaded value is sign-extended.
    pub const fn is_signed(self) -> bool {
        matches!(self, LoadKind::Lb | LoadKind::Lh)
    }
}

/// Width selector for the store instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreKind {
    /// `SB` — store byte.
    Sb,
    /// `SH` — store half-word.
    Sh,
    /// `SW` — store word.
    Sw,
}

impl StoreKind {
    /// The `funct3` encoding of this store.
    pub const fn funct3(self) -> u32 {
        match self {
            StoreKind::Sb => 0b000,
            StoreKind::Sh => 0b001,
            StoreKind::Sw => 0b010,
        }
    }

    /// Access width in bytes.
    pub const fn width(self) -> u32 {
        match self {
            StoreKind::Sb => 1,
            StoreKind::Sh => 2,
            StoreKind::Sw => 4,
        }
    }
}

/// Comparison selector for the conditional branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// `BEQ` — branch if equal.
    Beq,
    /// `BNE` — branch if not equal.
    Bne,
    /// `BLT` — branch if less than (signed).
    Blt,
    /// `BGE` — branch if greater or equal (signed).
    Bge,
    /// `BLTU` — branch if less than (unsigned).
    Bltu,
    /// `BGEU` — branch if greater or equal (unsigned).
    Bgeu,
}

impl BranchKind {
    /// The `funct3` encoding of this branch.
    pub const fn funct3(self) -> u32 {
        match self {
            BranchKind::Beq => 0b000,
            BranchKind::Bne => 0b001,
            BranchKind::Blt => 0b100,
            BranchKind::Bge => 0b101,
            BranchKind::Bltu => 0b110,
            BranchKind::Bgeu => 0b111,
        }
    }
}

/// Operation selector for the register-register ALU instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants map one-to-one to RV32I mnemonics
pub enum OpKind {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
}

impl OpKind {
    /// `(funct3, funct7)` encoding of this operation.
    pub const fn functs(self) -> (u32, u32) {
        match self {
            OpKind::Add => (0b000, 0b000_0000),
            OpKind::Sub => (0b000, 0b010_0000),
            OpKind::Sll => (0b001, 0b000_0000),
            OpKind::Slt => (0b010, 0b000_0000),
            OpKind::Sltu => (0b011, 0b000_0000),
            OpKind::Xor => (0b100, 0b000_0000),
            OpKind::Srl => (0b101, 0b000_0000),
            OpKind::Sra => (0b101, 0b010_0000),
            OpKind::Or => (0b110, 0b000_0000),
            OpKind::And => (0b111, 0b000_0000),
        }
    }
}

/// Read-modify-write flavour of a Zicsr instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsrOp {
    /// `CSRRW`/`CSRRWI` — atomic read & write.
    Rw,
    /// `CSRRS`/`CSRRSI` — atomic read & set bits.
    Rs,
    /// `CSRRC`/`CSRRCI` — atomic read & clear bits.
    Rc,
}

/// A decoded RV32I + Zicsr instruction.
///
/// Immediates are stored already sign-extended (shift amounts and CSR zimm
/// fields are zero-extended, as the ISA specifies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `LUI rd, imm` — `imm` has its low 12 bits clear.
    Lui {
        /// Destination register.
        rd: Reg,
        /// Upper immediate (low 12 bits zero).
        imm: i32,
    },
    /// `AUIPC rd, imm` — `imm` has its low 12 bits clear.
    Auipc {
        /// Destination register.
        rd: Reg,
        /// Upper immediate (low 12 bits zero).
        imm: i32,
    },
    /// `JAL rd, offset`.
    Jal {
        /// Link register.
        rd: Reg,
        /// PC-relative jump offset (even).
        offset: i32,
    },
    /// `JALR rd, rs1, imm`.
    Jalr {
        /// Link register.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Byte offset added to `rs1`.
        imm: i32,
    },
    /// Conditional branch `B<kind> rs1, rs2, offset`.
    Branch {
        /// Comparison performed.
        kind: BranchKind,
        /// First operand.
        rs1: Reg,
        /// Second operand.
        rs2: Reg,
        /// PC-relative offset (even).
        offset: i32,
    },
    /// Memory load `L<kind> rd, imm(rs1)`.
    Load {
        /// Width/signedness.
        kind: LoadKind,
        /// Destination register.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Byte offset.
        imm: i32,
    },
    /// Memory store `S<kind> rs2, imm(rs1)`.
    Store {
        /// Width.
        kind: StoreKind,
        /// Base register.
        rs1: Reg,
        /// Source register.
        rs2: Reg,
        /// Byte offset.
        imm: i32,
    },
    /// `ADDI rd, rs1, imm`.
    Addi {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Immediate.
        imm: i32,
    },
    /// `SLTI rd, rs1, imm` (signed compare).
    Slti {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Immediate.
        imm: i32,
    },
    /// `SLTIU rd, rs1, imm` (unsigned compare of sign-extended immediate).
    Sltiu {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Immediate.
        imm: i32,
    },
    /// `XORI rd, rs1, imm`.
    Xori {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Immediate.
        imm: i32,
    },
    /// `ORI rd, rs1, imm`.
    Ori {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Immediate.
        imm: i32,
    },
    /// `ANDI rd, rs1, imm`.
    Andi {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Immediate.
        imm: i32,
    },
    /// `SLLI rd, rs1, shamt`.
    Slli {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Shift amount in `0..32`.
        shamt: u8,
    },
    /// `SRLI rd, rs1, shamt`.
    Srli {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Shift amount in `0..32`.
        shamt: u8,
    },
    /// `SRAI rd, rs1, shamt`.
    Srai {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Shift amount in `0..32`.
        shamt: u8,
    },
    /// Register-register ALU operation.
    Op {
        /// Operation performed.
        kind: OpKind,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// `FENCE pred, succ` (treated as a no-op by both models).
    Fence {
        /// Predecessor set (bits `[27:24]` of the encoding).
        pred: u8,
        /// Successor set (bits `[23:20]` of the encoding).
        succ: u8,
    },
    /// `FENCE.I` instruction-stream synchronisation (no-op in the models).
    FenceI,
    /// `ECALL` environment call.
    Ecall,
    /// `EBREAK` breakpoint.
    Ebreak,
    /// `MRET` machine-mode trap return.
    Mret,
    /// `WFI` wait-for-interrupt hint.
    Wfi,
    /// Register-operand Zicsr instruction (`CSRRW`/`CSRRS`/`CSRRC`).
    Csr {
        /// Read-modify-write flavour.
        op: CsrOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// CSR address (12 bits).
        csr: u16,
    },
    /// Immediate-operand Zicsr instruction (`CSRRWI`/`CSRRSI`/`CSRRCI`).
    CsrImm {
        /// Read-modify-write flavour.
        op: CsrOp,
        /// Destination register.
        rd: Reg,
        /// Zero-extended 5-bit immediate.
        uimm: u8,
        /// CSR address (12 bits).
        csr: u16,
    },
}

impl Instr {
    /// The destination register written by this instruction, if any.
    ///
    /// Branches, stores, fences and the bare system instructions write no
    /// register. Note that an `rd` of `x0` still counts as "has a
    /// destination" at the encoding level — the write is simply discarded.
    pub fn rd(&self) -> Option<Reg> {
        match *self {
            Instr::Lui { rd, .. }
            | Instr::Auipc { rd, .. }
            | Instr::Jal { rd, .. }
            | Instr::Jalr { rd, .. }
            | Instr::Load { rd, .. }
            | Instr::Addi { rd, .. }
            | Instr::Slti { rd, .. }
            | Instr::Sltiu { rd, .. }
            | Instr::Xori { rd, .. }
            | Instr::Ori { rd, .. }
            | Instr::Andi { rd, .. }
            | Instr::Slli { rd, .. }
            | Instr::Srli { rd, .. }
            | Instr::Srai { rd, .. }
            | Instr::Op { rd, .. }
            | Instr::Csr { rd, .. }
            | Instr::CsrImm { rd, .. } => Some(rd),
            _ => None,
        }
    }

    /// Whether this is a control-flow transfer (jump or branch).
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Instr::Jal { .. } | Instr::Jalr { .. } | Instr::Branch { .. } | Instr::Mret
        )
    }

    /// Whether this is a Zicsr instruction.
    pub fn is_csr(&self) -> bool {
        matches!(self, Instr::Csr { .. } | Instr::CsrImm { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_kind_metadata_is_consistent() {
        assert_eq!(LoadKind::Lb.width(), 1);
        assert!(LoadKind::Lb.is_signed());
        assert!(!LoadKind::Lbu.is_signed());
        assert_eq!(LoadKind::Lw.width(), 4);
        assert!(!LoadKind::Lw.is_signed());
    }

    #[test]
    fn op_kind_functs_distinct() {
        let kinds = [
            OpKind::Add,
            OpKind::Sub,
            OpKind::Sll,
            OpKind::Slt,
            OpKind::Sltu,
            OpKind::Xor,
            OpKind::Srl,
            OpKind::Sra,
            OpKind::Or,
            OpKind::And,
        ];
        for (i, a) in kinds.iter().enumerate() {
            for b in &kinds[i + 1..] {
                assert_ne!(a.functs(), b.functs());
            }
        }
    }

    #[test]
    fn rd_reported_for_register_writers_only() {
        use crate::Reg;
        assert_eq!(
            Instr::Lui {
                rd: Reg::X3,
                imm: 0
            }
            .rd(),
            Some(Reg::X3)
        );
        assert_eq!(
            Instr::Store {
                kind: StoreKind::Sw,
                rs1: Reg::X1,
                rs2: Reg::X2,
                imm: 0
            }
            .rd(),
            None
        );
        assert_eq!(Instr::Ecall.rd(), None);
    }
}
