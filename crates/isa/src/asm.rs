//! A small two-pass RV32I+Zicsr text assembler.
//!
//! Supports the syntax the disassembler emits (so `parse(disasm(i)) == i`),
//! labels, the common pseudo-instructions, and comments — enough to write
//! directed co-simulation programs in tests and examples.
//!
//! ```
//! use symcosim_isa::asm::assemble;
//!
//! # fn main() -> Result<(), symcosim_isa::asm::AssembleError> {
//! let words = assemble(
//!     r#"
//!     start:
//!         addi x1, x0, 10     # counter
//!     loop:
//!         addi x1, x1, -1
//!         bne  x1, x0, loop
//!         ebreak
//!     "#,
//! )?;
//! assert_eq!(words.len(), 4);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::{encode, BranchKind, CsrOp, Instr, LoadKind, OpKind, Reg, StoreKind};

/// Error produced by [`assemble`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssembleError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for AssembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AssembleError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AssembleError> {
    Err(AssembleError {
        line,
        message: message.into(),
    })
}

/// Parses a register name (`x0`–`x31` or an ABI name).
fn parse_reg(token: &str, line: usize) -> Result<Reg, AssembleError> {
    let token = token.trim();
    if let Some(rest) = token.strip_prefix('x') {
        if let Ok(index) = rest.parse::<usize>() {
            if let Some(reg) = Reg::from_index(index) {
                return Ok(reg);
            }
        }
    }
    for reg in Reg::ALL {
        if reg.abi_name() == token {
            return Ok(reg);
        }
    }
    err(line, format!("unknown register {token:?}"))
}

/// Parses a signed immediate (decimal or 0x-prefixed hex).
fn parse_imm(token: &str, line: usize) -> Result<i64, AssembleError> {
    let token = token.trim();
    let (negative, body) = match token.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, token),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    };
    match value {
        Ok(v) => Ok(if negative { -v } else { v }),
        Err(_) => err(line, format!("invalid immediate {token:?}")),
    }
}

/// Parses a CSR operand: a name from the address map or a numeric address.
fn parse_csr(token: &str, line: usize) -> Result<u16, AssembleError> {
    let token = token.trim();
    for addr in 0u16..4096 {
        if crate::csr_name(addr) == Some(token) {
            return Ok(addr);
        }
    }
    if let Some(stripped) = token.strip_prefix("csr") {
        return parse_imm(stripped, line).map(|v| (v as u16) & 0xfff);
    }
    parse_imm(token, line).map(|v| (v as u16) & 0xfff)
}

/// Parses `imm(reg)` memory-operand syntax.
fn parse_mem_operand(token: &str, line: usize) -> Result<(i64, Reg), AssembleError> {
    let token = token.trim();
    let open = token.find('(').ok_or(AssembleError {
        line,
        message: format!("expected imm(reg), got {token:?}"),
    })?;
    if !token.ends_with(')') {
        return err(line, format!("expected imm(reg), got {token:?}"));
    }
    let imm = if open == 0 {
        0
    } else {
        parse_imm(&token[..open], line)?
    };
    let reg = parse_reg(&token[open + 1..token.len() - 1], line)?;
    Ok((imm, reg))
}

/// A line after lexing: optional label, optional statement.
struct SourceLine<'a> {
    number: usize,
    mnemonic: &'a str,
    operands: Vec<&'a str>,
}

/// Resolves either a label or a numeric offset to a PC-relative offset.
fn branch_target(
    token: &str,
    labels: &HashMap<&str, u32>,
    pc: u32,
    line: usize,
) -> Result<i32, AssembleError> {
    if let Some(&target) = labels.get(token.trim()) {
        return Ok(target.wrapping_sub(pc) as i32);
    }
    parse_imm(token, line).map(|v| v as i32)
}

/// Assembles source text into instruction words (base address 0).
///
/// Supported directives: labels (`name:`), comments (`#` / `//`), and the
/// pseudo-instructions `nop`, `li` (12-bit range), `mv`, `not`, `neg`,
/// `j`, `ret`, `beqz`, `bnez`.
///
/// # Errors
///
/// Returns [`AssembleError`] with the offending line on any syntax error,
/// unknown mnemonic, undefined label or out-of-range immediate.
pub fn assemble(source: &str) -> Result<Vec<u32>, AssembleError> {
    // Pass 1: strip comments/labels, collect label addresses.
    let mut labels: HashMap<&str, u32> = HashMap::new();
    let mut statements: Vec<SourceLine<'_>> = Vec::new();
    for (index, raw) in source.lines().enumerate() {
        let number = index + 1;
        let mut line = raw;
        if let Some(pos) = line.find('#') {
            line = &line[..pos];
        }
        if let Some(pos) = line.find("//") {
            line = &line[..pos];
        }
        let mut line = line.trim();
        while let Some(colon) = line.find(':') {
            let label = line[..colon].trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return err(number, format!("invalid label {label:?}"));
            }
            if labels
                .insert(label, (statements.len() * 4) as u32)
                .is_some()
            {
                return err(number, format!("duplicate label {label:?}"));
            }
            line = line[colon + 1..].trim();
        }
        if line.is_empty() {
            continue;
        }
        let (mnemonic, rest) = match line.find(char::is_whitespace) {
            Some(pos) => (&line[..pos], line[pos..].trim()),
            None => (line, ""),
        };
        let operands: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        statements.push(SourceLine {
            number,
            mnemonic,
            operands,
        });
    }

    // Pass 2: encode.
    let mut words = Vec::with_capacity(statements.len());
    for (index, stmt) in statements.iter().enumerate() {
        let pc = (index * 4) as u32;
        let instr = encode_statement(stmt, &labels, pc)?;
        words.push(encode(&instr));
    }
    Ok(words)
}

fn encode_statement(
    stmt: &SourceLine<'_>,
    labels: &HashMap<&str, u32>,
    pc: u32,
) -> Result<Instr, AssembleError> {
    let line = stmt.number;
    let ops = &stmt.operands;
    let arity = |n: usize| -> Result<(), AssembleError> {
        if ops.len() == n {
            Ok(())
        } else {
            err(
                line,
                format!(
                    "{} expects {} operands, got {}",
                    stmt.mnemonic,
                    n,
                    ops.len()
                ),
            )
        }
    };
    let reg = |i: usize| parse_reg(ops[i], line);
    let imm12 = |i: usize| -> Result<i32, AssembleError> {
        let v = parse_imm(ops[i], line)?;
        if (-2048..=2047).contains(&v) {
            Ok(v as i32)
        } else {
            err(line, format!("immediate {v} out of 12-bit range"))
        }
    };
    let shamt = |i: usize| -> Result<u8, AssembleError> {
        let v = parse_imm(ops[i], line)?;
        if (0..32).contains(&v) {
            Ok(v as u8)
        } else {
            err(line, format!("shift amount {v} out of range"))
        }
    };

    let op_kind = |kind: OpKind| -> Result<Instr, AssembleError> {
        arity(3)?;
        Ok(Instr::Op {
            kind,
            rd: reg(0)?,
            rs1: reg(1)?,
            rs2: reg(2)?,
        })
    };
    let branch = |kind: BranchKind| -> Result<Instr, AssembleError> {
        arity(3)?;
        let offset = branch_target(ops[2], labels, pc, line)?;
        Ok(Instr::Branch {
            kind,
            rs1: reg(0)?,
            rs2: reg(1)?,
            offset,
        })
    };
    let load = |kind: LoadKind| -> Result<Instr, AssembleError> {
        arity(2)?;
        let (imm, rs1) = parse_mem_operand(ops[1], line)?;
        Ok(Instr::Load {
            kind,
            rd: reg(0)?,
            rs1,
            imm: imm as i32,
        })
    };
    let store = |kind: StoreKind| -> Result<Instr, AssembleError> {
        arity(2)?;
        let (imm, rs1) = parse_mem_operand(ops[1], line)?;
        Ok(Instr::Store {
            kind,
            rs1,
            rs2: reg(0)?,
            imm: imm as i32,
        })
    };
    let csr_reg = |op: CsrOp| -> Result<Instr, AssembleError> {
        arity(3)?;
        Ok(Instr::Csr {
            op,
            rd: reg(0)?,
            csr: parse_csr(ops[1], line)?,
            rs1: reg(2)?,
        })
    };
    let csr_imm = |op: CsrOp| -> Result<Instr, AssembleError> {
        arity(3)?;
        let uimm = parse_imm(ops[2], line)?;
        if !(0..32).contains(&uimm) {
            return err(line, format!("zimm {uimm} out of 5-bit range"));
        }
        Ok(Instr::CsrImm {
            op,
            rd: reg(0)?,
            csr: parse_csr(ops[1], line)?,
            uimm: uimm as u8,
        })
    };

    match stmt.mnemonic {
        "lui" => {
            arity(2)?;
            let value = parse_imm(ops[1], line)?;
            if !(0..=0xfffff).contains(&value) {
                return err(
                    line,
                    format!("lui immediate {value:#x} out of 20-bit range"),
                );
            }
            Ok(Instr::Lui {
                rd: reg(0)?,
                imm: ((value as u32) << 12) as i32,
            })
        }
        "auipc" => {
            arity(2)?;
            let value = parse_imm(ops[1], line)?;
            if !(0..=0xfffff).contains(&value) {
                return err(
                    line,
                    format!("auipc immediate {value:#x} out of 20-bit range"),
                );
            }
            Ok(Instr::Auipc {
                rd: reg(0)?,
                imm: ((value as u32) << 12) as i32,
            })
        }
        "jal" => {
            arity(2)?;
            let offset = branch_target(ops[1], labels, pc, line)?;
            Ok(Instr::Jal {
                rd: reg(0)?,
                offset,
            })
        }
        "jalr" => {
            arity(2)?;
            let (imm, rs1) = parse_mem_operand(ops[1], line)?;
            Ok(Instr::Jalr {
                rd: reg(0)?,
                rs1,
                imm: imm as i32,
            })
        }
        "beq" => branch(BranchKind::Beq),
        "bne" => branch(BranchKind::Bne),
        "blt" => branch(BranchKind::Blt),
        "bge" => branch(BranchKind::Bge),
        "bltu" => branch(BranchKind::Bltu),
        "bgeu" => branch(BranchKind::Bgeu),
        "lb" => load(LoadKind::Lb),
        "lh" => load(LoadKind::Lh),
        "lw" => load(LoadKind::Lw),
        "lbu" => load(LoadKind::Lbu),
        "lhu" => load(LoadKind::Lhu),
        "sb" => store(StoreKind::Sb),
        "sh" => store(StoreKind::Sh),
        "sw" => store(StoreKind::Sw),
        "addi" => {
            arity(3)?;
            Ok(Instr::Addi {
                rd: reg(0)?,
                rs1: reg(1)?,
                imm: imm12(2)?,
            })
        }
        "slti" => {
            arity(3)?;
            Ok(Instr::Slti {
                rd: reg(0)?,
                rs1: reg(1)?,
                imm: imm12(2)?,
            })
        }
        "sltiu" => {
            arity(3)?;
            Ok(Instr::Sltiu {
                rd: reg(0)?,
                rs1: reg(1)?,
                imm: imm12(2)?,
            })
        }
        "xori" => {
            arity(3)?;
            Ok(Instr::Xori {
                rd: reg(0)?,
                rs1: reg(1)?,
                imm: imm12(2)?,
            })
        }
        "ori" => {
            arity(3)?;
            Ok(Instr::Ori {
                rd: reg(0)?,
                rs1: reg(1)?,
                imm: imm12(2)?,
            })
        }
        "andi" => {
            arity(3)?;
            Ok(Instr::Andi {
                rd: reg(0)?,
                rs1: reg(1)?,
                imm: imm12(2)?,
            })
        }
        "slli" => {
            arity(3)?;
            Ok(Instr::Slli {
                rd: reg(0)?,
                rs1: reg(1)?,
                shamt: shamt(2)?,
            })
        }
        "srli" => {
            arity(3)?;
            Ok(Instr::Srli {
                rd: reg(0)?,
                rs1: reg(1)?,
                shamt: shamt(2)?,
            })
        }
        "srai" => {
            arity(3)?;
            Ok(Instr::Srai {
                rd: reg(0)?,
                rs1: reg(1)?,
                shamt: shamt(2)?,
            })
        }
        "add" => op_kind(OpKind::Add),
        "sub" => op_kind(OpKind::Sub),
        "sll" => op_kind(OpKind::Sll),
        "slt" => op_kind(OpKind::Slt),
        "sltu" => op_kind(OpKind::Sltu),
        "xor" => op_kind(OpKind::Xor),
        "srl" => op_kind(OpKind::Srl),
        "sra" => op_kind(OpKind::Sra),
        "or" => op_kind(OpKind::Or),
        "and" => op_kind(OpKind::And),
        "fence" => {
            if ops.is_empty() {
                Ok(Instr::Fence {
                    pred: 0xf,
                    succ: 0xf,
                })
            } else {
                arity(2)?;
                let pred = parse_imm(ops[0], line)?;
                let succ = parse_imm(ops[1], line)?;
                if !(0..16).contains(&pred) || !(0..16).contains(&succ) {
                    return err(line, "fence sets are 4-bit");
                }
                Ok(Instr::Fence {
                    pred: pred as u8,
                    succ: succ as u8,
                })
            }
        }
        "fence.i" => {
            arity(0)?;
            Ok(Instr::FenceI)
        }
        "ecall" => {
            arity(0)?;
            Ok(Instr::Ecall)
        }
        "ebreak" => {
            arity(0)?;
            Ok(Instr::Ebreak)
        }
        "mret" => {
            arity(0)?;
            Ok(Instr::Mret)
        }
        "wfi" => {
            arity(0)?;
            Ok(Instr::Wfi)
        }
        "csrrw" => csr_reg(CsrOp::Rw),
        "csrrs" => csr_reg(CsrOp::Rs),
        "csrrc" => csr_reg(CsrOp::Rc),
        "csrrwi" => csr_imm(CsrOp::Rw),
        "csrrsi" => csr_imm(CsrOp::Rs),
        "csrrci" => csr_imm(CsrOp::Rc),
        // Pseudo-instructions.
        "nop" => {
            arity(0)?;
            Ok(Instr::Addi {
                rd: Reg::X0,
                rs1: Reg::X0,
                imm: 0,
            })
        }
        "li" => {
            arity(2)?;
            Ok(Instr::Addi {
                rd: reg(0)?,
                rs1: Reg::X0,
                imm: imm12(1)?,
            })
        }
        "mv" => {
            arity(2)?;
            Ok(Instr::Addi {
                rd: reg(0)?,
                rs1: reg(1)?,
                imm: 0,
            })
        }
        "not" => {
            arity(2)?;
            Ok(Instr::Xori {
                rd: reg(0)?,
                rs1: reg(1)?,
                imm: -1,
            })
        }
        "neg" => {
            arity(2)?;
            Ok(Instr::Op {
                kind: OpKind::Sub,
                rd: reg(0)?,
                rs1: Reg::X0,
                rs2: reg(1)?,
            })
        }
        "j" => {
            arity(1)?;
            let offset = branch_target(ops[0], labels, pc, line)?;
            Ok(Instr::Jal {
                rd: Reg::X0,
                offset,
            })
        }
        "ret" => {
            arity(0)?;
            Ok(Instr::Jalr {
                rd: Reg::X0,
                rs1: Reg::X1,
                imm: 0,
            })
        }
        "beqz" => {
            arity(2)?;
            let offset = branch_target(ops[1], labels, pc, line)?;
            Ok(Instr::Branch {
                kind: BranchKind::Beq,
                rs1: reg(0)?,
                rs2: Reg::X0,
                offset,
            })
        }
        "bnez" => {
            arity(2)?;
            let offset = branch_target(ops[1], labels, pc, line)?;
            Ok(Instr::Branch {
                kind: BranchKind::Bne,
                rs1: reg(0)?,
                rs2: Reg::X0,
                offset,
            })
        }
        other => err(line, format!("unknown mnemonic {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode;

    #[test]
    fn assembles_basic_program() {
        let words = assemble(
            r"
            start:
                addi x1, x0, 10
            loop:
                addi x1, x1, -1
                bne x1, x0, loop
                ebreak
            ",
        )
        .expect("valid program");
        assert_eq!(words.len(), 4);
        assert_eq!(
            decode(words[2]).expect("bne"),
            Instr::Branch {
                kind: BranchKind::Bne,
                rs1: Reg::X1,
                rs2: Reg::X0,
                offset: -4
            }
        );
    }

    #[test]
    fn round_trips_through_the_disassembler() {
        let sample = [
            Instr::Lui {
                rd: Reg::X5,
                imm: 0x12345 << 12,
            },
            Instr::Auipc {
                rd: Reg::X6,
                imm: 0x1000,
            },
            Instr::Jal {
                rd: Reg::X1,
                offset: 16,
            },
            Instr::Jalr {
                rd: Reg::X0,
                rs1: Reg::X1,
                imm: 4,
            },
            Instr::Branch {
                kind: BranchKind::Bgeu,
                rs1: Reg::X2,
                rs2: Reg::X3,
                offset: -8,
            },
            Instr::Load {
                kind: LoadKind::Lhu,
                rd: Reg::X4,
                rs1: Reg::X5,
                imm: -2,
            },
            Instr::Store {
                kind: StoreKind::Sb,
                rs1: Reg::X6,
                rs2: Reg::X7,
                imm: 3,
            },
            Instr::Addi {
                rd: Reg::X8,
                rs1: Reg::X9,
                imm: -100,
            },
            Instr::Slli {
                rd: Reg::X10,
                rs1: Reg::X11,
                shamt: 7,
            },
            Instr::Op {
                kind: OpKind::Sra,
                rd: Reg::X12,
                rs1: Reg::X13,
                rs2: Reg::X14,
            },
            Instr::Fence {
                pred: 0xf,
                succ: 0x3,
            },
            Instr::FenceI,
            Instr::Ecall,
            Instr::Ebreak,
            Instr::Mret,
            Instr::Wfi,
            Instr::Csr {
                op: CsrOp::Rw,
                rd: Reg::X1,
                rs1: Reg::X2,
                csr: 0x340,
            },
            Instr::CsrImm {
                op: CsrOp::Rs,
                rd: Reg::X3,
                uimm: 5,
                csr: 0xc00,
            },
        ];
        for instr in sample {
            let text = instr.to_string();
            let words = assemble(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(decode(words[0]), Ok(instr), "{text}");
        }
    }

    #[test]
    fn pseudo_instructions_expand() {
        let words = assemble("nop\nli x1, 42\nmv x2, x1\nnot x3, x2\nneg x4, x3\nj 0\nret")
            .expect("pseudos");
        assert_eq!(
            decode(words[0]),
            Ok(Instr::Addi {
                rd: Reg::X0,
                rs1: Reg::X0,
                imm: 0
            })
        );
        assert_eq!(
            decode(words[1]),
            Ok(Instr::Addi {
                rd: Reg::X1,
                rs1: Reg::X0,
                imm: 42
            })
        );
        assert_eq!(
            decode(words[3]),
            Ok(Instr::Xori {
                rd: Reg::X3,
                rs1: Reg::X2,
                imm: -1
            })
        );
        assert_eq!(
            decode(words[4]),
            Ok(Instr::Op {
                kind: OpKind::Sub,
                rd: Reg::X4,
                rs1: Reg::X0,
                rs2: Reg::X3
            })
        );
        assert_eq!(
            decode(words[6]),
            Ok(Instr::Jalr {
                rd: Reg::X0,
                rs1: Reg::X1,
                imm: 0
            })
        );
    }

    #[test]
    fn abi_register_names_accepted() {
        let words = assemble("add a0, sp, t0").expect("abi names");
        assert_eq!(
            decode(words[0]),
            Ok(Instr::Op {
                kind: OpKind::Add,
                rd: Reg::X10,
                rs1: Reg::X2,
                rs2: Reg::X5
            })
        );
    }

    #[test]
    fn csr_names_and_numbers() {
        let a = assemble("csrrw x1, mscratch, x2").expect("name");
        let b = assemble("csrrw x1, 0x340, x2").expect("number");
        assert_eq!(a, b);
    }

    #[test]
    fn forward_labels_resolve() {
        let words = assemble("beq x0, x0, end\nnop\nend: ebreak").expect("forward label");
        assert_eq!(
            decode(words[0]),
            Ok(Instr::Branch {
                kind: BranchKind::Beq,
                rs1: Reg::X0,
                rs2: Reg::X0,
                offset: 8
            })
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nbogus x1").expect_err("unknown mnemonic");
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let e = assemble("addi x1, x0, 5000").expect_err("range");
        assert!(e.message.contains("12-bit"));

        let e = assemble("lw x1, nope").expect_err("mem operand");
        assert!(e.message.contains("imm(reg)"));

        let e = assemble("x: nop\nx: nop").expect_err("duplicate label");
        assert!(e.message.contains("duplicate"));
    }
}
