//! Ternary bit-pattern algebra over the 32-bit instruction word space.
//!
//! A [`Pattern`] is a cube in `{0,1,X}^32`: `mask` selects the cared bits,
//! `value` gives their required values, and the remaining bits are free.
//! Decode rules, encoder ranges and the whole 2^32 universe are all cubes,
//! so the decode-space theorems reduce to cube operations — overlap tests,
//! intersection, complement and cube subtraction — with no enumeration
//! anywhere. The same algebra carries the dynamic coverage certificates:
//! each explored path projects its path condition to a [`PatternSet`] over
//! the instruction slot, and completeness/disjointness of a whole run are
//! again just set operations.

use crate::DecodeRule;

/// A ternary cube over 32-bit words: `w` is covered iff `w & mask == value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Pattern {
    /// Cared-bit mask.
    pub mask: u32,
    /// Required value of the cared bits (zero outside `mask`).
    pub value: u32,
}

impl Pattern {
    /// Creates a cube, normalising `value` onto `mask`.
    #[must_use]
    pub const fn new(mask: u32, value: u32) -> Pattern {
        Pattern {
            mask,
            value: value & mask,
        }
    }

    /// The cube covering every 32-bit word.
    #[must_use]
    pub const fn universe() -> Pattern {
        Pattern { mask: 0, value: 0 }
    }

    /// The cube holding exactly `word`.
    #[must_use]
    pub const fn singleton(word: u32) -> Pattern {
        Pattern {
            mask: u32::MAX,
            value: word,
        }
    }

    /// Whether `word` lies in the cube.
    #[must_use]
    pub const fn covers(&self, word: u32) -> bool {
        word & self.mask == self.value
    }

    /// Number of words in the cube: `2^(32 - popcount(mask))`.
    #[must_use]
    pub const fn count(&self) -> u64 {
        1u64 << (32 - self.mask.count_ones())
    }

    /// Whether the two cubes share at least one word: they do exactly when
    /// their fixed bits agree wherever both care.
    #[must_use]
    pub const fn overlaps(&self, other: &Pattern) -> bool {
        (self.value ^ other.value) & self.mask & other.mask == 0
    }

    /// Whether every word of `self` also lies in `other`.
    #[must_use]
    pub const fn subset_of(&self, other: &Pattern) -> bool {
        // `other` must care about no bit `self` leaves free, and agree on
        // the shared cared bits.
        other.mask & !self.mask == 0 && (self.value ^ other.value) & other.mask == 0
    }

    /// The intersection cube, `None` when disjoint.
    #[must_use]
    pub fn intersect(&self, other: &Pattern) -> Option<Pattern> {
        if !self.overlaps(other) {
            return None;
        }
        Some(Pattern {
            mask: self.mask | other.mask,
            value: self.value | other.value,
        })
    }

    /// A concrete member word (free bits zero).
    #[must_use]
    pub const fn sample(&self) -> u32 {
        self.value
    }

    /// Corner samples of the cube: free bits all-zero, all-one, and the two
    /// alternating fillings. Cheap concrete probes that ground the cube
    /// algebra against the real decoder.
    #[must_use]
    pub fn corner_samples(&self) -> [u32; 4] {
        let free = !self.mask;
        [
            self.value,
            self.value | free,
            self.value | (free & 0xaaaa_aaaa),
            self.value | (free & 0x5555_5555),
        ]
    }

    /// Cube subtraction: disjoint cubes covering `self \ other`.
    ///
    /// Splits `self` along each bit that `other` fixes but `self` leaves
    /// free; the halves disagreeing with `other` survive, and what remains
    /// afterwards lies inside `other` and is dropped. At most 32 cubes
    /// result.
    #[must_use]
    pub fn subtract(&self, other: &Pattern) -> Vec<Pattern> {
        if !self.overlaps(other) {
            return vec![*self];
        }
        let mut survivors = Vec::new();
        let mut current = *self;
        let split_bits = other.mask & !self.mask;
        for bit_index in 0..32 {
            let bit = 1u32 << bit_index;
            if split_bits & bit == 0 {
                continue;
            }
            survivors.push(Pattern {
                mask: current.mask | bit,
                value: current.value | (bit & !other.value),
            });
            current = Pattern {
                mask: current.mask | bit,
                value: current.value | (bit & other.value),
            };
        }
        // `current` now agrees with `other` on every cared bit, i.e. it is
        // contained in `other`, so it is exactly the part removed.
        survivors
    }

    /// Cube complement: disjoint cubes covering `universe \ self`.
    ///
    /// One cube per cared bit (the standard ring-sum decomposition); the
    /// all-don't-care cube has an empty complement.
    #[must_use]
    pub fn complement(&self) -> Vec<Pattern> {
        Pattern::universe().subtract(self)
    }

    /// Splits the cube into its two halves fixing free bit `bit_index` to
    /// 0 and 1; `None` when the cube already cares about that bit.
    #[must_use]
    pub fn split_at(&self, bit_index: u32) -> Option<(Pattern, Pattern)> {
        let bit = 1u32 << bit_index;
        if self.mask & bit != 0 {
            return None;
        }
        let zero = Pattern {
            mask: self.mask | bit,
            value: self.value,
        };
        let one = Pattern {
            mask: self.mask | bit,
            value: self.value | bit,
        };
        Some((zero, one))
    }
}

/// Preferred split order for sharding the decode space into job slices:
/// funct3 (bits 14..12) first — the primary minor-opcode selector, so small
/// slice counts separate whole behaviour classes — then funct7/imm-high and
/// the register fields, with the major opcode bits (6..0) last so slices
/// stay opcode-agnostic and every slice of a single-opcode job is non-empty
/// for as long as possible.
pub const SLICE_SPLIT_BITS: [u32; 32] = [
    14, 13, 12, // funct3
    30, 25, 26, 27, 28, 29, 31, // funct7 / imm high
    24, 23, 22, 21, 20, // rs2
    19, 18, 17, 16, 15, // rs1
    11, 10, 9, 8, 7, // rd
    6, 5, 4, 3, 2, 1, 0, // major opcode, last
];

/// Deterministically partitions the full 32-bit word universe into exactly
/// `n` pairwise-disjoint cubes whose union is the universe.
///
/// Repeatedly splits the currently largest cube on the first
/// [`SLICE_SPLIT_BITS`] bit it leaves free, so e.g. `n = 2` splits on
/// instruction bit 14 and `n = 8` yields the eight funct3 octants. The
/// result is sorted into canonical cube order. `n = 0` yields the empty
/// partition (of the empty space, vacuously disjoint but not covering).
#[must_use]
pub fn partition_universe(n: usize) -> Vec<Pattern> {
    assert!(n <= 1 << 16, "partition fan-out capped at 65536 slices");
    if n == 0 {
        return Vec::new();
    }
    let mut cubes = vec![Pattern::universe()];
    while cubes.len() < n {
        let (index, _) = cubes
            .iter()
            .enumerate()
            .max_by_key(|(i, cube)| (cube.count(), usize::MAX - i))
            .expect("partition is non-empty");
        let widest = cubes[index];
        let bit = SLICE_SPLIT_BITS
            .iter()
            .copied()
            .find(|&b| widest.mask & (1 << b) == 0)
            .expect("a cube wider than a point has a free bit");
        let (zero, one) = widest.split_at(bit).expect("bit is free");
        cubes[index] = zero;
        cubes.insert(index + 1, one);
    }
    cubes.sort();
    cubes
}

impl From<&DecodeRule> for Pattern {
    fn from(rule: &DecodeRule) -> Pattern {
        Pattern::new(rule.mask, rule.value)
    }
}

/// A set of pairwise-disjoint cubes, closed under the boolean set algebra.
#[derive(Debug, Clone, Default)]
pub struct PatternSet {
    cubes: Vec<Pattern>,
}

impl PatternSet {
    /// The empty set.
    #[must_use]
    pub fn empty() -> PatternSet {
        PatternSet { cubes: Vec::new() }
    }

    /// The set covering every 32-bit word.
    #[must_use]
    pub fn universe() -> PatternSet {
        PatternSet {
            cubes: vec![Pattern::universe()],
        }
    }

    /// The set covering exactly one cube.
    #[must_use]
    pub fn from_cube(pattern: Pattern) -> PatternSet {
        PatternSet {
            cubes: vec![pattern],
        }
    }

    /// Whether the set covers no word at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Adds every word of `pattern` to the set, keeping cubes disjoint:
    /// only the part of `pattern` not already covered is appended.
    pub fn insert(&mut self, pattern: &Pattern) {
        let mut fresh = vec![*pattern];
        for cube in &self.cubes {
            fresh = fresh.iter().flat_map(|f| f.subtract(cube)).collect();
            if fresh.is_empty() {
                return;
            }
        }
        self.cubes.extend(fresh);
    }

    /// Set union: `self := self ∪ other`.
    pub fn union_with(&mut self, other: &PatternSet) {
        for cube in &other.cubes {
            self.insert(cube);
        }
    }

    /// Removes every word covered by `pattern` from the set.
    pub fn subtract(&mut self, pattern: &Pattern) {
        self.cubes = self
            .cubes
            .iter()
            .flat_map(|cube| cube.subtract(pattern))
            .collect();
    }

    /// Set difference: `self := self \ other`.
    pub fn subtract_set(&mut self, other: &PatternSet) {
        for cube in &other.cubes {
            self.subtract(cube);
        }
    }

    /// Set intersection, as a new set. Pairwise cube intersections of two
    /// disjoint families are themselves pairwise disjoint.
    #[must_use]
    pub fn intersect_set(&self, other: &PatternSet) -> PatternSet {
        let mut cubes = Vec::new();
        for a in &self.cubes {
            for b in &other.cubes {
                if let Some(i) = a.intersect(b) {
                    cubes.push(i);
                }
            }
        }
        PatternSet { cubes }
    }

    /// Set complement: `universe \ self`.
    #[must_use]
    pub fn complement(&self) -> PatternSet {
        let mut out = PatternSet::universe();
        out.subtract_set(self);
        out
    }

    /// The disjoint cubes of the set.
    #[must_use]
    pub fn cubes(&self) -> &[Pattern] {
        &self.cubes
    }

    /// Total number of words covered (exact, since cubes are disjoint).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.cubes.iter().map(Pattern::count).sum()
    }

    /// Whether `word` is covered by any cube.
    #[must_use]
    pub fn covers(&self, word: u32) -> bool {
        self.cubes.iter().any(|cube| cube.covers(word))
    }

    /// Canonicalises the cube order so structurally equal sets compare and
    /// serialise identically regardless of construction order.
    pub fn sort_cubes(&mut self) {
        self.cubes.sort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symcosim_testkit::check_cases;

    #[test]
    fn universe_counts_the_full_space() {
        assert_eq!(Pattern::universe().count(), 1u64 << 32);
        assert_eq!(PatternSet::universe().count(), 1u64 << 32);
    }

    #[test]
    fn overlap_is_symmetric_and_exact() {
        let a = Pattern::new(0x0000_00ff, 0x13);
        let b = Pattern::new(0x0000_0f00, 0x100);
        assert!(a.overlaps(&b) && b.overlaps(&a));
        let c = Pattern::new(0x0000_00ff, 0x33);
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn subtraction_partitions_counts() {
        let a = Pattern::new(0x0000_007f, 0x13);
        let b = Pattern::new(0x0000_707f, 0x13);
        let diff = a.subtract(&b);
        let diff_count: u64 = diff.iter().map(Pattern::count).sum();
        assert_eq!(diff_count + b.count(), a.count());
        for cube in &diff {
            assert!(!cube.overlaps(&b));
        }
    }

    #[test]
    fn disjoint_subtraction_is_identity() {
        let a = Pattern::new(0x0000_007f, 0x13);
        let b = Pattern::new(0x0000_007f, 0x33);
        assert_eq!(a.subtract(&b), vec![a]);
    }

    #[test]
    fn subtracting_self_empties_the_cube() {
        let a = Pattern::new(0x0000_707f, 0x13);
        assert!(a.subtract(&a).is_empty());
    }

    #[test]
    fn membership_matches_subtraction_semantics() {
        // Randomised: after subtracting b from the universe, a word is
        // covered exactly when b does not cover it.
        check_cases(0x717e_0001, 128, |rng| {
            let b = Pattern::new(rng.next_u32(), rng.next_u32());
            let mut set = PatternSet::universe();
            set.subtract(&b);
            let word = rng.next_u32();
            assert_eq!(set.covers(word), !b.covers(word));
            assert_eq!(set.count(), (1u64 << 32) - b.count());
        });
    }

    #[test]
    fn corner_samples_stay_inside_the_cube() {
        check_cases(0x717e_0002, 64, |rng| {
            let p = Pattern::new(rng.next_u32(), rng.next_u32());
            for word in p.corner_samples() {
                assert!(p.covers(word));
            }
        });
    }

    #[test]
    fn intersection_covers_common_words() {
        let a = Pattern::new(0x0000_00ff, 0x13);
        let b = Pattern::new(0x0000_0f0f, 0x103);
        let i = a.intersect(&b).expect("overlapping");
        assert!(a.covers(i.sample()) && b.covers(i.sample()));
    }

    // --- certifier edge cases: complement / intersection on the boundary
    // cubes the coverage algebra leans on.

    #[test]
    fn all_dont_care_cube_has_empty_complement() {
        assert!(Pattern::universe().complement().is_empty());
        assert!(PatternSet::universe().complement().is_empty());
    }

    #[test]
    fn empty_set_complement_is_the_universe() {
        let empty = PatternSet::empty();
        assert!(empty.is_empty());
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.complement().count(), 1u64 << 32);
        // Intersecting anything with the empty set stays empty.
        assert!(PatternSet::universe().intersect_set(&empty).is_empty());
    }

    #[test]
    fn single_bit_cube_complement_is_the_opposite_half() {
        for bit_index in [0u32, 7, 31] {
            let bit = 1u32 << bit_index;
            let ones = Pattern::new(bit, bit);
            let comp = ones.complement();
            assert_eq!(comp.len(), 1);
            assert_eq!(comp[0], Pattern::new(bit, 0));
            assert_eq!(comp[0].count() + ones.count(), 1u64 << 32);
        }
    }

    #[test]
    fn singleton_cube_complement_partitions_exactly() {
        let w = 0xdead_beef;
        let p = Pattern::singleton(w);
        assert_eq!(p.count(), 1);
        let comp = p.complement();
        assert_eq!(comp.len(), 32);
        let comp_count: u64 = comp.iter().map(Pattern::count).sum();
        assert_eq!(comp_count, (1u64 << 32) - 1);
        assert!(comp.iter().all(|c| !c.covers(w)));
        assert!(comp.iter().any(|c| c.covers(w ^ 1)));
    }

    #[test]
    fn single_bit_cube_intersections() {
        let b0 = Pattern::new(0x1, 0x1);
        let b1 = Pattern::new(0x2, 0x2);
        // Different bits: the intersection fixes both.
        let both = b0.intersect(&b1).expect("independent bits overlap");
        assert_eq!(both, Pattern::new(0x3, 0x3));
        // Same bit, opposite polarity: disjoint halves.
        assert!(b0.intersect(&Pattern::new(0x1, 0x0)).is_none());
        // Intersecting with itself is the identity.
        assert_eq!(b0.intersect(&b0), Some(b0));
    }

    #[test]
    fn intersect_with_universe_is_identity() {
        check_cases(0x717e_0003, 64, |rng| {
            let p = Pattern::new(rng.next_u32(), rng.next_u32());
            assert_eq!(p.intersect(&Pattern::universe()), Some(p));
        });
    }

    #[test]
    fn subset_of_agrees_with_subtraction() {
        check_cases(0x717e_0004, 128, |rng| {
            let a = Pattern::new(rng.next_u32(), rng.next_u32());
            let b = Pattern::new(rng.next_u32(), rng.next_u32());
            assert_eq!(a.subset_of(&b), a.subtract(&b).is_empty());
            assert!(a.subset_of(&a));
            assert!(a.subset_of(&Pattern::universe()));
        });
    }

    #[test]
    fn insert_keeps_cubes_disjoint_and_counts_exact() {
        check_cases(0x717e_0005, 64, |rng| {
            let mut set = PatternSet::empty();
            let mut members = Vec::new();
            for _ in 0..6 {
                let p = Pattern::new(rng.next_u32() | 0xffff_0000, rng.next_u32());
                set.insert(&p);
                members.push(p);
            }
            for (i, a) in set.cubes().iter().enumerate() {
                for b in &set.cubes()[i + 1..] {
                    assert!(!a.overlaps(b), "cubes must stay disjoint");
                }
            }
            let word = rng.next_u32();
            assert_eq!(set.covers(word), members.iter().any(|m| m.covers(word)));
        });
    }

    #[test]
    fn partition_universe_is_a_disjoint_cover() {
        for n in [1usize, 2, 3, 5, 7, 8, 16, 33] {
            let cubes = partition_universe(n);
            assert_eq!(cubes.len(), n);
            let total: u64 = cubes.iter().map(Pattern::count).sum();
            assert_eq!(total, 1u64 << 32, "n={n} must cover the universe");
            for (i, a) in cubes.iter().enumerate() {
                for b in &cubes[i + 1..] {
                    assert!(!a.overlaps(b), "n={n}: slices must be disjoint");
                }
            }
            // Every probe word lands in exactly one slice.
            check_cases(0x717e_0007 ^ n as u64, 32, |rng| {
                let w = rng.next_u32();
                assert_eq!(cubes.iter().filter(|c| c.covers(w)).count(), 1);
            });
        }
    }

    #[test]
    fn partition_universe_is_deterministic_and_funct3_first() {
        assert_eq!(partition_universe(0), vec![]);
        assert_eq!(partition_universe(1), vec![Pattern::universe()]);
        // n = 2 halves the space on instruction bit 14 (funct3 MSB).
        assert_eq!(
            partition_universe(2),
            vec![Pattern::new(1 << 14, 0), Pattern::new(1 << 14, 1 << 14)]
        );
        // n = 8 is exactly the eight funct3 octants.
        let octants = partition_universe(8);
        for f3 in 0u32..8 {
            assert!(octants.contains(&Pattern::new(0x7000, f3 << 12)));
        }
        // Stable across calls.
        assert_eq!(partition_universe(5), partition_universe(5));
    }

    #[test]
    fn split_at_respects_cared_bits() {
        let p = Pattern::new(0x7000, 0x2000);
        assert!(p.split_at(12).is_none());
        let (zero, one) = p.split_at(30).expect("bit 30 is free");
        assert!(!zero.overlaps(&one));
        assert_eq!(zero.count() + one.count(), p.count());
        assert!(zero.subset_of(&p) && one.subset_of(&p));
    }

    #[test]
    fn set_algebra_laws_hold_pointwise() {
        // union/intersection/difference/complement agree with pointwise
        // membership on random probes.
        check_cases(0x717e_0006, 64, |rng| {
            let a_cube = Pattern::new(rng.next_u32(), rng.next_u32());
            let b_cube = Pattern::new(rng.next_u32(), rng.next_u32());
            let a = PatternSet::from_cube(a_cube);
            let b = PatternSet::from_cube(b_cube);

            let mut union = a.clone();
            union.union_with(&b);
            let inter = a.intersect_set(&b);
            let mut diff = a.clone();
            diff.subtract_set(&b);
            let comp = a.complement();

            for _ in 0..8 {
                let w = rng.next_u32();
                assert_eq!(union.covers(w), a.covers(w) || b.covers(w));
                assert_eq!(inter.covers(w), a.covers(w) && b.covers(w));
                assert_eq!(diff.covers(w), a.covers(w) && !b.covers(w));
                assert_eq!(comp.covers(w), !a.covers(w));
            }
            // Inclusion–exclusion on the exact counts.
            assert_eq!(union.count() + inter.count(), a.count() + b.count());
        });
    }
}
