//! The reference instruction decoder.
//!
//! This is the *architectural* decoder used by the assembler, the fuzzing
//! baseline and for pretty-printing test vectors. The ISS and the RTL core
//! each carry their own decode logic written over the symbolic word domain;
//! differential tests in those crates check them against this one.

use std::error::Error;
use std::fmt;

use crate::imm::{decode_b_imm, decode_i_imm, decode_j_imm, decode_s_imm, decode_u_imm};
use crate::instr::{BranchKind, CsrOp, Instr, LoadKind, OpKind, StoreKind};
use crate::{opcodes, Reg};

/// Error returned by [`decode`] for words that are not valid RV32I+Zicsr
/// encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending instruction word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal instruction encoding {:#010x}", self.word)
    }
}

impl Error for DecodeError {}

#[inline]
fn rd(word: u32) -> Reg {
    Reg::from_field(word >> 7)
}

#[inline]
fn rs1(word: u32) -> Reg {
    Reg::from_field(word >> 15)
}

#[inline]
fn rs2(word: u32) -> Reg {
    Reg::from_field(word >> 20)
}

#[inline]
fn shamt(word: u32) -> u8 {
    ((word >> 20) & 0x1f) as u8
}

#[inline]
fn csr_addr(word: u32) -> u16 {
    (word >> 20) as u16
}

/// One ternary decode rule over the 32-bit instruction word space.
///
/// A word `w` is accepted by the rule iff `w & mask == value`; the bits
/// outside `mask` are don't-cares (operand fields, immediates, the CSR
/// address). The whole RV32I+Zicsr decode space of this crate is described
/// by [`DECODE_TABLE`], which both [`decode`] and the `symcosim-lint`
/// static analyzer consume, so the analysed table *is* the shipped decoder.
#[derive(Clone, Copy)]
pub struct DecodeRule {
    /// Cared-bit mask: a set bit means the decoder inspects that bit.
    pub mask: u32,
    /// Required value of the cared bits (bits outside `mask` are zero).
    pub value: u32,
    /// Canonical mnemonic, used by lint reports and counterexamples.
    pub name: &'static str,
    build: fn(u32) -> Instr,
}

impl DecodeRule {
    /// Returns `true` iff `word` is accepted by this rule.
    #[inline]
    #[must_use]
    pub const fn matches(&self, word: u32) -> bool {
        word & self.mask == self.value
    }

    /// Extracts the operand fields of a matching `word`.
    ///
    /// The result is only meaningful when [`matches`](Self::matches) holds;
    /// for non-matching words the extracted operands are unspecified.
    #[inline]
    #[must_use]
    pub fn build(&self, word: u32) -> Instr {
        (self.build)(word)
    }
}

/// Cares about the major opcode only (U- and J-type instructions).
const OPCODE: u32 = 0x0000_007f;
/// Cares about the major opcode and funct3.
const OPCODE_F3: u32 = 0x0000_707f;
/// Cares about the major opcode, funct3 and funct7 (R-type and shifts).
const OPCODE_F3_F7: u32 = 0xfe00_707f;
/// Every bit is fixed (the four SYSTEM special instructions).
const EXACT: u32 = 0xffff_ffff;

/// Builds the fixed-bit pattern `opcode | funct3 << 12 | funct7 << 25`.
const fn pat(opcode: u32, funct3: u32, funct7: u32) -> u32 {
    opcode | (funct3 << 12) | (funct7 << 25)
}

macro_rules! rule {
    ($mask:expr, $value:expr, $name:literal, $build:expr) => {
        DecodeRule {
            mask: $mask,
            value: $value,
            name: $name,
            build: $build,
        }
    };
}

/// The complete RV32I+Zicsr decode table.
///
/// Every legal instruction word is accepted by exactly one rule; every word
/// accepted by no rule is an illegal instruction. Both properties
/// (*disjointness* and *completeness* against [`decode`]) are proved
/// statically by `symcosim-lint` over the ternary-pattern algebra, without
/// enumerating the 2^32 space. [`decode`] itself is a first-match scan of
/// this table, so there is no second copy of the decode logic to drift.
#[rustfmt::skip]
pub static DECODE_TABLE: &[DecodeRule] = &[
    // U-type and J-type: major opcode only.
    rule!(OPCODE, opcodes::LUI, "lui", |w| Instr::Lui { rd: rd(w), imm: decode_u_imm(w) }),
    rule!(OPCODE, opcodes::AUIPC, "auipc", |w| Instr::Auipc { rd: rd(w), imm: decode_u_imm(w) }),
    rule!(OPCODE, opcodes::JAL, "jal", |w| Instr::Jal { rd: rd(w), offset: decode_j_imm(w) }),
    // JALR requires funct3 = 0.
    rule!(OPCODE_F3, pat(opcodes::JALR, 0b000, 0), "jalr",
        |w| Instr::Jalr { rd: rd(w), rs1: rs1(w), imm: decode_i_imm(w) }),
    // Conditional branches: funct3 010/011 are reserved.
    rule!(OPCODE_F3, pat(opcodes::BRANCH, 0b000, 0), "beq",
        |w| branch(BranchKind::Beq, w)),
    rule!(OPCODE_F3, pat(opcodes::BRANCH, 0b001, 0), "bne",
        |w| branch(BranchKind::Bne, w)),
    rule!(OPCODE_F3, pat(opcodes::BRANCH, 0b100, 0), "blt",
        |w| branch(BranchKind::Blt, w)),
    rule!(OPCODE_F3, pat(opcodes::BRANCH, 0b101, 0), "bge",
        |w| branch(BranchKind::Bge, w)),
    rule!(OPCODE_F3, pat(opcodes::BRANCH, 0b110, 0), "bltu",
        |w| branch(BranchKind::Bltu, w)),
    rule!(OPCODE_F3, pat(opcodes::BRANCH, 0b111, 0), "bgeu",
        |w| branch(BranchKind::Bgeu, w)),
    // Loads: funct3 011/110/111 are reserved in RV32I.
    rule!(OPCODE_F3, pat(opcodes::LOAD, 0b000, 0), "lb", |w| load(LoadKind::Lb, w)),
    rule!(OPCODE_F3, pat(opcodes::LOAD, 0b001, 0), "lh", |w| load(LoadKind::Lh, w)),
    rule!(OPCODE_F3, pat(opcodes::LOAD, 0b010, 0), "lw", |w| load(LoadKind::Lw, w)),
    rule!(OPCODE_F3, pat(opcodes::LOAD, 0b100, 0), "lbu", |w| load(LoadKind::Lbu, w)),
    rule!(OPCODE_F3, pat(opcodes::LOAD, 0b101, 0), "lhu", |w| load(LoadKind::Lhu, w)),
    // Stores: funct3 011..111 are reserved in RV32I.
    rule!(OPCODE_F3, pat(opcodes::STORE, 0b000, 0), "sb", |w| store(StoreKind::Sb, w)),
    rule!(OPCODE_F3, pat(opcodes::STORE, 0b001, 0), "sh", |w| store(StoreKind::Sh, w)),
    rule!(OPCODE_F3, pat(opcodes::STORE, 0b010, 0), "sw", |w| store(StoreKind::Sw, w)),
    // OP-IMM: six I-type ALU forms plus the three funct7-guarded shifts.
    rule!(OPCODE_F3, pat(opcodes::OP_IMM, 0b000, 0), "addi",
        |w| Instr::Addi { rd: rd(w), rs1: rs1(w), imm: decode_i_imm(w) }),
    rule!(OPCODE_F3, pat(opcodes::OP_IMM, 0b010, 0), "slti",
        |w| Instr::Slti { rd: rd(w), rs1: rs1(w), imm: decode_i_imm(w) }),
    rule!(OPCODE_F3, pat(opcodes::OP_IMM, 0b011, 0), "sltiu",
        |w| Instr::Sltiu { rd: rd(w), rs1: rs1(w), imm: decode_i_imm(w) }),
    rule!(OPCODE_F3, pat(opcodes::OP_IMM, 0b100, 0), "xori",
        |w| Instr::Xori { rd: rd(w), rs1: rs1(w), imm: decode_i_imm(w) }),
    rule!(OPCODE_F3, pat(opcodes::OP_IMM, 0b110, 0), "ori",
        |w| Instr::Ori { rd: rd(w), rs1: rs1(w), imm: decode_i_imm(w) }),
    rule!(OPCODE_F3, pat(opcodes::OP_IMM, 0b111, 0), "andi",
        |w| Instr::Andi { rd: rd(w), rs1: rs1(w), imm: decode_i_imm(w) }),
    rule!(OPCODE_F3_F7, pat(opcodes::OP_IMM, 0b001, 0b000_0000), "slli",
        |w| Instr::Slli { rd: rd(w), rs1: rs1(w), shamt: shamt(w) }),
    rule!(OPCODE_F3_F7, pat(opcodes::OP_IMM, 0b101, 0b000_0000), "srli",
        |w| Instr::Srli { rd: rd(w), rs1: rs1(w), shamt: shamt(w) }),
    rule!(OPCODE_F3_F7, pat(opcodes::OP_IMM, 0b101, 0b010_0000), "srai",
        |w| Instr::Srai { rd: rd(w), rs1: rs1(w), shamt: shamt(w) }),
    // OP: the ten R-type (funct3, funct7) pairs.
    rule!(OPCODE_F3_F7, pat(opcodes::OP, 0b000, 0b000_0000), "add", |w| op(OpKind::Add, w)),
    rule!(OPCODE_F3_F7, pat(opcodes::OP, 0b000, 0b010_0000), "sub", |w| op(OpKind::Sub, w)),
    rule!(OPCODE_F3_F7, pat(opcodes::OP, 0b001, 0b000_0000), "sll", |w| op(OpKind::Sll, w)),
    rule!(OPCODE_F3_F7, pat(opcodes::OP, 0b010, 0b000_0000), "slt", |w| op(OpKind::Slt, w)),
    rule!(OPCODE_F3_F7, pat(opcodes::OP, 0b011, 0b000_0000), "sltu", |w| op(OpKind::Sltu, w)),
    rule!(OPCODE_F3_F7, pat(opcodes::OP, 0b100, 0b000_0000), "xor", |w| op(OpKind::Xor, w)),
    rule!(OPCODE_F3_F7, pat(opcodes::OP, 0b101, 0b000_0000), "srl", |w| op(OpKind::Srl, w)),
    rule!(OPCODE_F3_F7, pat(opcodes::OP, 0b101, 0b010_0000), "sra", |w| op(OpKind::Sra, w)),
    rule!(OPCODE_F3_F7, pat(opcodes::OP, 0b110, 0b000_0000), "or", |w| op(OpKind::Or, w)),
    rule!(OPCODE_F3_F7, pat(opcodes::OP, 0b111, 0b000_0000), "and", |w| op(OpKind::And, w)),
    // MISC-MEM: fm/pred/succ/rs1/rd of FENCE and the imm/rs1/rd of FENCE.I
    // are don't-cares (hints must execute as the base instruction).
    rule!(OPCODE_F3, pat(opcodes::MISC_MEM, 0b000, 0), "fence",
        |w| Instr::Fence { pred: ((w >> 24) & 0xf) as u8, succ: ((w >> 20) & 0xf) as u8 }),
    rule!(OPCODE_F3, pat(opcodes::MISC_MEM, 0b001, 0), "fence.i", |_| Instr::FenceI),
    // SYSTEM with funct3 = 0: four fully-fixed encodings.
    rule!(EXACT, 0x0000_0073, "ecall", |_| Instr::Ecall),
    rule!(EXACT, 0x0010_0073, "ebreak", |_| Instr::Ebreak),
    rule!(EXACT, 0x3020_0073, "mret", |_| Instr::Mret),
    rule!(EXACT, 0x1050_0073, "wfi", |_| Instr::Wfi),
    // Zicsr: the CSR address (bits 31:20) is a don't-care at decode time;
    // legality of the address is an execution-time question.
    rule!(OPCODE_F3, pat(opcodes::SYSTEM, 0b001, 0), "csrrw", |w| csr(CsrOp::Rw, w)),
    rule!(OPCODE_F3, pat(opcodes::SYSTEM, 0b010, 0), "csrrs", |w| csr(CsrOp::Rs, w)),
    rule!(OPCODE_F3, pat(opcodes::SYSTEM, 0b011, 0), "csrrc", |w| csr(CsrOp::Rc, w)),
    rule!(OPCODE_F3, pat(opcodes::SYSTEM, 0b101, 0), "csrrwi", |w| csr_imm(CsrOp::Rw, w)),
    rule!(OPCODE_F3, pat(opcodes::SYSTEM, 0b110, 0), "csrrsi", |w| csr_imm(CsrOp::Rs, w)),
    rule!(OPCODE_F3, pat(opcodes::SYSTEM, 0b111, 0), "csrrci", |w| csr_imm(CsrOp::Rc, w)),
];

fn branch(kind: BranchKind, w: u32) -> Instr {
    Instr::Branch {
        kind,
        rs1: rs1(w),
        rs2: rs2(w),
        offset: decode_b_imm(w),
    }
}

fn load(kind: LoadKind, w: u32) -> Instr {
    Instr::Load {
        kind,
        rd: rd(w),
        rs1: rs1(w),
        imm: decode_i_imm(w),
    }
}

fn store(kind: StoreKind, w: u32) -> Instr {
    Instr::Store {
        kind,
        rs1: rs1(w),
        rs2: rs2(w),
        imm: decode_s_imm(w),
    }
}

fn op(kind: OpKind, w: u32) -> Instr {
    Instr::Op {
        kind,
        rd: rd(w),
        rs1: rs1(w),
        rs2: rs2(w),
    }
}

fn csr(op: CsrOp, w: u32) -> Instr {
    Instr::Csr {
        op,
        rd: rd(w),
        rs1: rs1(w),
        csr: csr_addr(w),
    }
}

fn csr_imm(op: CsrOp, w: u32) -> Instr {
    Instr::CsrImm {
        op,
        rd: rd(w),
        uimm: rs1(w).index() as u8,
        csr: csr_addr(w),
    }
}

/// Decodes a 32-bit instruction word into an [`Instr`].
///
/// This is a first-match scan of [`DECODE_TABLE`]; the rules are pairwise
/// disjoint (checked by `symcosim-lint`), so first-match equals only-match.
///
/// # Errors
///
/// Returns [`DecodeError`] if the word is not a valid RV32I+Zicsr encoding
/// (including reserved shift encodings and malformed SYSTEM instructions).
///
/// # Example
///
/// ```
/// use symcosim_isa::{decode, Instr, OpKind, Reg};
///
/// # fn main() -> Result<(), symcosim_isa::DecodeError> {
/// // add x1, x2, x3
/// let instr = decode(0x0031_00b3)?;
/// assert_eq!(instr, Instr::Op { kind: OpKind::Add, rd: Reg::X1, rs1: Reg::X2, rs2: Reg::X3 });
/// # Ok(())
/// # }
/// ```
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    DECODE_TABLE
        .iter()
        .find(|rule| rule.matches(word))
        .map(|rule| rule.build(word))
        .ok_or(DecodeError { word })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_canonical_nop() {
        // addi x0, x0, 0
        assert_eq!(
            decode(0x0000_0013).expect("nop decodes"),
            Instr::Addi {
                rd: Reg::X0,
                rs1: Reg::X0,
                imm: 0
            }
        );
    }

    #[test]
    fn decodes_system_instructions() {
        assert_eq!(decode(0x0000_0073).expect("ecall"), Instr::Ecall);
        assert_eq!(decode(0x0010_0073).expect("ebreak"), Instr::Ebreak);
        assert_eq!(decode(0x3020_0073).expect("mret"), Instr::Mret);
        assert_eq!(decode(0x1050_0073).expect("wfi"), Instr::Wfi);
    }

    #[test]
    fn rejects_reserved_shift_encodings() {
        // slli with funct7 = 0b0100000 is reserved in RV32I.
        let slli = 0x0000_1013 | (0b010_0000 << 25);
        assert!(decode(slli).is_err());
        // srli/srai with any other funct7 is reserved too.
        let bad_srl = 0x0000_5013 | (0b000_0001 << 25);
        assert!(decode(bad_srl).is_err());
    }

    #[test]
    fn rejects_unknown_major_opcode() {
        assert!(decode(0x0000_0000).is_err());
        assert!(decode(0xffff_ffff).is_err());
        // A RV64I-only opcode (OP-IMM-32, 0b0011011) must not decode.
        assert!(decode(0x0000_001b).is_err());
    }

    #[test]
    fn rejects_jalr_with_nonzero_funct3() {
        let jalr = 0x0000_0067;
        assert!(decode(jalr).is_ok());
        assert!(decode(jalr | (1 << 12)).is_err());
    }

    #[test]
    fn decodes_csr_immediate_forms() {
        // csrrwi x0, 0x400, 0  => funct3 101
        let w = (0x400 << 20) | (0b101 << 12) | 0x73;
        assert_eq!(
            decode(w).expect("csrrwi"),
            Instr::CsrImm {
                op: CsrOp::Rw,
                rd: Reg::X0,
                uimm: 0,
                csr: 0x400
            }
        );
    }

    #[test]
    fn table_rule_names_are_unique() {
        let mut names: Vec<&str> = DECODE_TABLE.iter().map(|r| r.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), DECODE_TABLE.len());
    }

    #[test]
    fn table_values_honour_their_masks() {
        for rule in DECODE_TABLE {
            assert_eq!(
                rule.value & !rule.mask,
                0,
                "rule {} fixes bits outside its mask",
                rule.name
            );
            assert!(
                rule.matches(rule.value),
                "rule {} rejects itself",
                rule.name
            );
        }
    }

    #[test]
    fn decodes_fence_fields() {
        // fence iorw, iorw
        let w = 0x0ff0_000f;
        assert_eq!(
            decode(w).expect("fence"),
            Instr::Fence {
                pred: 0xf,
                succ: 0xf
            }
        );
    }
}
