//! The reference instruction decoder.
//!
//! This is the *architectural* decoder used by the assembler, the fuzzing
//! baseline and for pretty-printing test vectors. The ISS and the RTL core
//! each carry their own decode logic written over the symbolic word domain;
//! differential tests in those crates check them against this one.

use std::error::Error;
use std::fmt;

use crate::imm::{decode_b_imm, decode_i_imm, decode_j_imm, decode_s_imm, decode_u_imm};
use crate::instr::{BranchKind, CsrOp, Instr, LoadKind, OpKind, StoreKind};
use crate::{opcodes, Reg};

/// Error returned by [`decode`] for words that are not valid RV32I+Zicsr
/// encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending instruction word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal instruction encoding {:#010x}", self.word)
    }
}

impl Error for DecodeError {}

#[inline]
fn rd(word: u32) -> Reg {
    Reg::from_field(word >> 7)
}

#[inline]
fn rs1(word: u32) -> Reg {
    Reg::from_field(word >> 15)
}

#[inline]
fn rs2(word: u32) -> Reg {
    Reg::from_field(word >> 20)
}

#[inline]
fn funct3(word: u32) -> u32 {
    (word >> 12) & 0x7
}

#[inline]
fn funct7(word: u32) -> u32 {
    word >> 25
}

/// Decodes a 32-bit instruction word into an [`Instr`].
///
/// # Errors
///
/// Returns [`DecodeError`] if the word is not a valid RV32I+Zicsr encoding
/// (including reserved shift encodings and malformed SYSTEM instructions).
///
/// # Example
///
/// ```
/// use symcosim_isa::{decode, Instr, OpKind, Reg};
///
/// # fn main() -> Result<(), symcosim_isa::DecodeError> {
/// // add x1, x2, x3
/// let instr = decode(0x0031_00b3)?;
/// assert_eq!(instr, Instr::Op { kind: OpKind::Add, rd: Reg::X1, rs1: Reg::X2, rs2: Reg::X3 });
/// # Ok(())
/// # }
/// ```
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let illegal = Err(DecodeError { word });
    match word & 0x7f {
        opcodes::LUI => Ok(Instr::Lui {
            rd: rd(word),
            imm: decode_u_imm(word),
        }),
        opcodes::AUIPC => Ok(Instr::Auipc {
            rd: rd(word),
            imm: decode_u_imm(word),
        }),
        opcodes::JAL => Ok(Instr::Jal {
            rd: rd(word),
            offset: decode_j_imm(word),
        }),
        opcodes::JALR if funct3(word) == 0 => Ok(Instr::Jalr {
            rd: rd(word),
            rs1: rs1(word),
            imm: decode_i_imm(word),
        }),
        opcodes::BRANCH => {
            let kind = match funct3(word) {
                0b000 => BranchKind::Beq,
                0b001 => BranchKind::Bne,
                0b100 => BranchKind::Blt,
                0b101 => BranchKind::Bge,
                0b110 => BranchKind::Bltu,
                0b111 => BranchKind::Bgeu,
                _ => return illegal,
            };
            Ok(Instr::Branch {
                kind,
                rs1: rs1(word),
                rs2: rs2(word),
                offset: decode_b_imm(word),
            })
        }
        opcodes::LOAD => {
            let kind = match funct3(word) {
                0b000 => LoadKind::Lb,
                0b001 => LoadKind::Lh,
                0b010 => LoadKind::Lw,
                0b100 => LoadKind::Lbu,
                0b101 => LoadKind::Lhu,
                _ => return illegal,
            };
            Ok(Instr::Load {
                kind,
                rd: rd(word),
                rs1: rs1(word),
                imm: decode_i_imm(word),
            })
        }
        opcodes::STORE => {
            let kind = match funct3(word) {
                0b000 => StoreKind::Sb,
                0b001 => StoreKind::Sh,
                0b010 => StoreKind::Sw,
                _ => return illegal,
            };
            Ok(Instr::Store {
                kind,
                rs1: rs1(word),
                rs2: rs2(word),
                imm: decode_s_imm(word),
            })
        }
        opcodes::OP_IMM => {
            let (rd, rs1, imm) = (rd(word), rs1(word), decode_i_imm(word));
            match funct3(word) {
                0b000 => Ok(Instr::Addi { rd, rs1, imm }),
                0b010 => Ok(Instr::Slti { rd, rs1, imm }),
                0b011 => Ok(Instr::Sltiu { rd, rs1, imm }),
                0b100 => Ok(Instr::Xori { rd, rs1, imm }),
                0b110 => Ok(Instr::Ori { rd, rs1, imm }),
                0b111 => Ok(Instr::Andi { rd, rs1, imm }),
                0b001 if funct7(word) == 0 => Ok(Instr::Slli {
                    rd,
                    rs1,
                    shamt: (imm & 0x1f) as u8,
                }),
                0b101 if funct7(word) == 0 => Ok(Instr::Srli {
                    rd,
                    rs1,
                    shamt: (imm & 0x1f) as u8,
                }),
                0b101 if funct7(word) == 0b010_0000 => Ok(Instr::Srai {
                    rd,
                    rs1,
                    shamt: (imm & 0x1f) as u8,
                }),
                _ => illegal,
            }
        }
        opcodes::OP => {
            let kind = match (funct3(word), funct7(word)) {
                (0b000, 0b000_0000) => OpKind::Add,
                (0b000, 0b010_0000) => OpKind::Sub,
                (0b001, 0b000_0000) => OpKind::Sll,
                (0b010, 0b000_0000) => OpKind::Slt,
                (0b011, 0b000_0000) => OpKind::Sltu,
                (0b100, 0b000_0000) => OpKind::Xor,
                (0b101, 0b000_0000) => OpKind::Srl,
                (0b101, 0b010_0000) => OpKind::Sra,
                (0b110, 0b000_0000) => OpKind::Or,
                (0b111, 0b000_0000) => OpKind::And,
                _ => return illegal,
            };
            Ok(Instr::Op {
                kind,
                rd: rd(word),
                rs1: rs1(word),
                rs2: rs2(word),
            })
        }
        opcodes::MISC_MEM => match funct3(word) {
            0b000 => Ok(Instr::Fence {
                pred: ((word >> 24) & 0xf) as u8,
                succ: ((word >> 20) & 0xf) as u8,
            }),
            0b001 => Ok(Instr::FenceI),
            _ => illegal,
        },
        opcodes::SYSTEM => match funct3(word) {
            0b000 => match (funct7(word), rs2(word).index() as u32, rs1(word), rd(word)) {
                (0, 0, Reg::X0, Reg::X0) => Ok(Instr::Ecall),
                (0, 1, Reg::X0, Reg::X0) => Ok(Instr::Ebreak),
                (0b001_1000, 0b00010, Reg::X0, Reg::X0) => Ok(Instr::Mret),
                (0b000_1000, 0b00101, Reg::X0, Reg::X0) => Ok(Instr::Wfi),
                _ => illegal,
            },
            f3 @ (0b001..=0b011) => {
                let op = match f3 {
                    0b001 => CsrOp::Rw,
                    0b010 => CsrOp::Rs,
                    _ => CsrOp::Rc,
                };
                Ok(Instr::Csr {
                    op,
                    rd: rd(word),
                    rs1: rs1(word),
                    csr: (word >> 20) as u16,
                })
            }
            f3 @ (0b101..=0b111) => {
                let op = match f3 {
                    0b101 => CsrOp::Rw,
                    0b110 => CsrOp::Rs,
                    _ => CsrOp::Rc,
                };
                Ok(Instr::CsrImm {
                    op,
                    rd: rd(word),
                    uimm: rs1(word).index() as u8,
                    csr: (word >> 20) as u16,
                })
            }
            _ => illegal,
        },
        _ => illegal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_canonical_nop() {
        // addi x0, x0, 0
        assert_eq!(
            decode(0x0000_0013).expect("nop decodes"),
            Instr::Addi {
                rd: Reg::X0,
                rs1: Reg::X0,
                imm: 0
            }
        );
    }

    #[test]
    fn decodes_system_instructions() {
        assert_eq!(decode(0x0000_0073).expect("ecall"), Instr::Ecall);
        assert_eq!(decode(0x0010_0073).expect("ebreak"), Instr::Ebreak);
        assert_eq!(decode(0x3020_0073).expect("mret"), Instr::Mret);
        assert_eq!(decode(0x1050_0073).expect("wfi"), Instr::Wfi);
    }

    #[test]
    fn rejects_reserved_shift_encodings() {
        // slli with funct7 = 0b0100000 is reserved in RV32I.
        let slli = 0x0000_1013 | (0b010_0000 << 25);
        assert!(decode(slli).is_err());
        // srli/srai with any other funct7 is reserved too.
        let bad_srl = 0x0000_5013 | (0b000_0001 << 25);
        assert!(decode(bad_srl).is_err());
    }

    #[test]
    fn rejects_unknown_major_opcode() {
        assert!(decode(0x0000_0000).is_err());
        assert!(decode(0xffff_ffff).is_err());
        // A RV64I-only opcode (OP-IMM-32, 0b0011011) must not decode.
        assert!(decode(0x0000_001b).is_err());
    }

    #[test]
    fn rejects_jalr_with_nonzero_funct3() {
        let jalr = 0x0000_0067;
        assert!(decode(jalr).is_ok());
        assert!(decode(jalr | (1 << 12)).is_err());
    }

    #[test]
    fn decodes_csr_immediate_forms() {
        // csrrwi x0, 0x400, 0  => funct3 101
        let w = (0x400 << 20) | (0b101 << 12) | 0x73;
        assert_eq!(
            decode(w).expect("csrrwi"),
            Instr::CsrImm {
                op: CsrOp::Rw,
                rd: Reg::X0,
                uimm: 0,
                csr: 0x400
            }
        );
    }

    #[test]
    fn decodes_fence_fields() {
        // fence iorw, iorw
        let w = 0x0ff0_000f;
        assert_eq!(
            decode(w).expect("fence"),
            Instr::Fence {
                pred: 0xf,
                succ: 0xf
            }
        );
    }
}
