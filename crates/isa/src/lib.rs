//! RV32I + Zicsr instruction-set substrate.
//!
//! This crate is the single source of truth for everything
//! architecture-level that both the reference ISS (`symcosim-iss`) and the
//! RTL core model (`symcosim-microrv32`) share: register names, immediate
//! codecs, the instruction decoder and encoder, the CSR address map and trap
//! cause codes.
//!
//! The scope is exactly the ISA the paper's case study exercises:
//! RV32I (the 32-bit base integer instruction set) plus the Zicsr CSR
//! instructions and the privileged instructions MicroRV32 reacts to
//! (`ECALL`, `EBREAK`, `MRET`, `WFI`, `FENCE`).
//!
//! # Example
//!
//! ```
//! use symcosim_isa::{decode, encode, Instr, Reg};
//!
//! # fn main() -> Result<(), symcosim_isa::DecodeError> {
//! let word = encode(&Instr::Addi { rd: Reg::X1, rs1: Reg::X2, imm: -7 });
//! assert_eq!(decode(word)?, Instr::Addi { rd: Reg::X1, rs1: Reg::X2, imm: -7 });
//! assert_eq!(decode(word)?.to_string(), "addi x1, x2, -7");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
mod csr;
mod decode;
mod disasm;
mod encode;
mod imm;
mod instr;
pub mod pattern;
mod reg;
mod trap;

pub use csr::{csr_name, Csr, CsrClass};
pub use decode::{decode, DecodeError, DecodeRule, DECODE_TABLE};
pub use encode::encode;
pub use imm::{
    decode_b_imm, decode_i_imm, decode_j_imm, decode_s_imm, decode_u_imm, encode_b_imm,
    encode_i_imm, encode_j_imm, encode_s_imm, encode_u_imm,
};
pub use instr::{BranchKind, CsrOp, Instr, LoadKind, OpKind, StoreKind};
pub use pattern::{Pattern, PatternSet};
pub use reg::Reg;
pub use trap::Trap;

/// Major opcode field (bits `[6:0]`) values used by RV32I + Zicsr.
pub mod opcodes {
    /// `LUI` — load upper immediate.
    pub const LUI: u32 = 0b011_0111;
    /// `AUIPC` — add upper immediate to PC.
    pub const AUIPC: u32 = 0b001_0111;
    /// `JAL` — jump and link.
    pub const JAL: u32 = 0b110_1111;
    /// `JALR` — jump and link register.
    pub const JALR: u32 = 0b110_0111;
    /// Conditional branches (`BEQ`…`BGEU`).
    pub const BRANCH: u32 = 0b110_0011;
    /// Loads (`LB`…`LHU`).
    pub const LOAD: u32 = 0b000_0011;
    /// Stores (`SB`…`SW`).
    pub const STORE: u32 = 0b010_0011;
    /// Register-immediate ALU operations.
    pub const OP_IMM: u32 = 0b001_0011;
    /// Register-register ALU operations.
    pub const OP: u32 = 0b011_0011;
    /// `FENCE` / `FENCE.I`.
    pub const MISC_MEM: u32 = 0b000_1111;
    /// `ECALL`, `EBREAK`, `MRET`, `WFI` and the Zicsr instructions.
    pub const SYSTEM: u32 = 0b111_0011;
}
