//! Immediate field codecs for the RV32 instruction formats.
//!
//! Each format scatters its (sign-extended) immediate across the 32-bit
//! instruction word in a different way. The `decode_*` functions extract and
//! sign-extend the immediate from a full instruction word; the `encode_*`
//! functions produce the immediate's bit pattern positioned within an
//! otherwise-zero word, ready to be OR-ed with opcode/register fields.
//!
//! Ranges and alignment:
//!
//! | format | bits | range | alignment |
//! |--------|------|-------|-----------|
//! | I      | 12   | −2048 ..= 2047 | 1 |
//! | S      | 12   | −2048 ..= 2047 | 1 |
//! | B      | 13   | −4096 ..= 4094 | 2 |
//! | U      | 20 (upper) | bits `[31:12]` | 4096 |
//! | J      | 21   | −1 MiB ..= 1 MiB − 2 | 2 |

/// Sign-extends the low `bits` bits of `value`.
#[inline]
const fn sext(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

/// Decodes the I-format immediate (bits `[31:20]`), sign-extended.
#[inline]
pub const fn decode_i_imm(word: u32) -> i32 {
    sext(word >> 20, 12)
}

/// Encodes an I-format immediate into bits `[31:20]`.
///
/// # Panics
///
/// Panics if `imm` is outside `-2048..=2047`.
#[inline]
pub fn encode_i_imm(imm: i32) -> u32 {
    assert!(
        (-2048..=2047).contains(&imm),
        "I-immediate out of range: {imm}"
    );
    ((imm as u32) & 0xfff) << 20
}

/// Decodes the S-format immediate (bits `[31:25]` ++ `[11:7]`), sign-extended.
#[inline]
pub const fn decode_s_imm(word: u32) -> i32 {
    sext(((word >> 25) << 5) | ((word >> 7) & 0x1f), 12)
}

/// Encodes an S-format immediate into bits `[31:25]` and `[11:7]`.
///
/// # Panics
///
/// Panics if `imm` is outside `-2048..=2047`.
#[inline]
pub fn encode_s_imm(imm: i32) -> u32 {
    assert!(
        (-2048..=2047).contains(&imm),
        "S-immediate out of range: {imm}"
    );
    let imm = imm as u32 & 0xfff;
    ((imm >> 5) << 25) | ((imm & 0x1f) << 7)
}

/// Decodes the B-format branch offset, sign-extended (always even).
#[inline]
pub const fn decode_b_imm(word: u32) -> i32 {
    let imm = ((word >> 31) << 12)
        | (((word >> 7) & 0x1) << 11)
        | (((word >> 25) & 0x3f) << 5)
        | (((word >> 8) & 0xf) << 1);
    sext(imm, 13)
}

/// Encodes a B-format branch offset.
///
/// # Panics
///
/// Panics if `imm` is outside `-4096..=4094` or odd.
#[inline]
pub fn encode_b_imm(imm: i32) -> u32 {
    assert!(
        (-4096..=4094).contains(&imm) && imm % 2 == 0,
        "B-immediate out of range or misaligned: {imm}"
    );
    let imm = imm as u32 & 0x1fff;
    (((imm >> 12) & 0x1) << 31)
        | (((imm >> 5) & 0x3f) << 25)
        | (((imm >> 1) & 0xf) << 8)
        | (((imm >> 11) & 0x1) << 7)
}

/// Decodes the U-format immediate: the upper 20 bits, low 12 bits zero.
#[inline]
pub const fn decode_u_imm(word: u32) -> i32 {
    (word & 0xffff_f000) as i32
}

/// Encodes a U-format immediate.
///
/// # Panics
///
/// Panics if any of the low 12 bits of `imm` are set.
#[inline]
pub fn encode_u_imm(imm: i32) -> u32 {
    assert_eq!(
        imm & 0xfff,
        0,
        "U-immediate must have zero low 12 bits: {imm:#x}"
    );
    imm as u32
}

/// Decodes the J-format jump offset, sign-extended (always even).
#[inline]
pub const fn decode_j_imm(word: u32) -> i32 {
    let imm = ((word >> 31) << 20)
        | (((word >> 12) & 0xff) << 12)
        | (((word >> 20) & 0x1) << 11)
        | (((word >> 21) & 0x3ff) << 1);
    sext(imm, 21)
}

/// Encodes a J-format jump offset.
///
/// # Panics
///
/// Panics if `imm` is outside `-1048576..=1048574` or odd.
#[inline]
pub fn encode_j_imm(imm: i32) -> u32 {
    assert!(
        (-1_048_576..=1_048_574).contains(&imm) && imm % 2 == 0,
        "J-immediate out of range or misaligned: {imm}"
    );
    let imm = imm as u32 & 0x1f_ffff;
    (((imm >> 20) & 0x1) << 31)
        | (((imm >> 1) & 0x3ff) << 21)
        | (((imm >> 11) & 0x1) << 20)
        | (((imm >> 12) & 0xff) << 12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i_imm_round_trip_extremes() {
        for imm in [-2048, -1, 0, 1, 2047] {
            assert_eq!(decode_i_imm(encode_i_imm(imm)), imm);
        }
    }

    #[test]
    fn s_imm_round_trip_extremes() {
        for imm in [-2048, -1, 0, 1, 2047] {
            assert_eq!(decode_s_imm(encode_s_imm(imm)), imm);
        }
    }

    #[test]
    fn b_imm_round_trip_extremes() {
        for imm in [-4096, -2, 0, 2, 4094] {
            assert_eq!(decode_b_imm(encode_b_imm(imm)), imm);
        }
    }

    #[test]
    fn u_imm_round_trip_extremes() {
        for imm in [i32::MIN, -4096, 0, 4096, 0x7fff_f000] {
            assert_eq!(decode_u_imm(encode_u_imm(imm)), imm);
        }
    }

    #[test]
    fn j_imm_round_trip_extremes() {
        for imm in [-1_048_576, -2, 0, 2, 1_048_574] {
            assert_eq!(decode_j_imm(encode_j_imm(imm)), imm);
        }
    }

    #[test]
    #[should_panic(expected = "I-immediate out of range")]
    fn i_imm_rejects_out_of_range() {
        encode_i_imm(2048);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn b_imm_rejects_odd() {
        encode_b_imm(3);
    }

    #[test]
    fn b_imm_known_encoding() {
        // beq offset +8 places imm[3:1]=100 into bits [11:8].
        assert_eq!(encode_b_imm(8), 0b0100 << 8);
        // imm = -2 sets every immediate bit.
        let w = encode_b_imm(-2);
        assert_eq!(decode_b_imm(w), -2);
        assert_eq!(w & 0x8000_0000, 0x8000_0000, "sign bit lives at bit 31");
    }
}
