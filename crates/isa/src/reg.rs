//! General-purpose register names.

use std::fmt;

/// One of the 32 RV32I general-purpose registers `x0`–`x31`.
///
/// `x0` is architecturally hardwired to zero; writes to it are discarded.
/// The enum is `repr(u8)` so `Reg as u8` yields the register index, and
/// [`Reg::from_index`] converts back.
///
/// # Example
///
/// ```
/// use symcosim_isa::Reg;
///
/// assert_eq!(Reg::X5.index(), 5);
/// assert_eq!(Reg::from_index(5), Some(Reg::X5));
/// assert_eq!(Reg::X5.abi_name(), "t0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
#[allow(missing_docs)] // the 32 variants are self-describing
pub enum Reg {
    X0 = 0,
    X1,
    X2,
    X3,
    X4,
    X5,
    X6,
    X7,
    X8,
    X9,
    X10,
    X11,
    X12,
    X13,
    X14,
    X15,
    X16,
    X17,
    X18,
    X19,
    X20,
    X21,
    X22,
    X23,
    X24,
    X25,
    X26,
    X27,
    X28,
    X29,
    X30,
    X31,
}

impl Reg {
    /// All 32 registers in index order.
    pub const ALL: [Reg; 32] = [
        Reg::X0,
        Reg::X1,
        Reg::X2,
        Reg::X3,
        Reg::X4,
        Reg::X5,
        Reg::X6,
        Reg::X7,
        Reg::X8,
        Reg::X9,
        Reg::X10,
        Reg::X11,
        Reg::X12,
        Reg::X13,
        Reg::X14,
        Reg::X15,
        Reg::X16,
        Reg::X17,
        Reg::X18,
        Reg::X19,
        Reg::X20,
        Reg::X21,
        Reg::X22,
        Reg::X23,
        Reg::X24,
        Reg::X25,
        Reg::X26,
        Reg::X27,
        Reg::X28,
        Reg::X29,
        Reg::X30,
        Reg::X31,
    ];

    /// Numeric register index in `0..32`.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Converts an index in `0..32` to a register; `None` otherwise.
    #[inline]
    pub const fn from_index(index: usize) -> Option<Reg> {
        if index < 32 {
            Some(Self::ALL[index])
        } else {
            None
        }
    }

    /// Converts the low five bits of an encoded register field.
    #[inline]
    pub const fn from_field(field: u32) -> Reg {
        Self::ALL[(field & 0x1f) as usize]
    }

    /// Whether this is the hardwired-zero register `x0`.
    #[inline]
    pub const fn is_zero(self) -> bool {
        matches!(self, Reg::X0)
    }

    /// Standard RISC-V ABI mnemonic (`zero`, `ra`, `sp`, …).
    pub const fn abi_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        NAMES[self as usize]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.index())
    }
}

impl From<Reg> for u32 {
    fn from(reg: Reg) -> u32 {
        reg.index() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for i in 0..32 {
            let r = Reg::from_index(i).expect("valid index");
            assert_eq!(r.index(), i);
        }
        assert_eq!(Reg::from_index(32), None);
    }

    #[test]
    fn from_field_masks_high_bits() {
        assert_eq!(Reg::from_field(0x25), Reg::X5);
        assert_eq!(Reg::from_field(31), Reg::X31);
    }

    #[test]
    fn display_uses_numeric_name() {
        assert_eq!(Reg::X0.to_string(), "x0");
        assert_eq!(Reg::X31.to_string(), "x31");
    }

    #[test]
    fn only_x0_is_zero() {
        assert!(Reg::X0.is_zero());
        for r in Reg::ALL.iter().skip(1) {
            assert!(!r.is_zero());
        }
    }
}
