//! Control and Status Register address map.

use std::fmt;

/// A 12-bit CSR address.
///
/// The two top bits of the address encode accessibility: bits `[11:10]`
/// equal to `0b11` mean the CSR is read-only, and bits `[9:8]` give the
/// lowest privilege level that may access it.
///
/// # Example
///
/// ```
/// use symcosim_isa::Csr;
///
/// assert!(Csr::MVENDORID.is_read_only());
/// assert!(!Csr::MSCRATCH.is_read_only());
/// assert_eq!(Csr::MCYCLE.name(), Some("mcycle"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Csr(pub u16);

/// Broad functional grouping of a CSR address, used by the verification
/// report to label findings the way Table I of the paper does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsrClass {
    /// Machine information registers (`mvendorid`, `marchid`, …).
    MachineInfo,
    /// Machine trap setup (`mstatus`, `mtvec`, `medeleg`, …).
    MachineTrapSetup,
    /// Machine trap handling (`mscratch`, `mepc`, `mcause`, `mtval`, `mip`).
    MachineTrapHandling,
    /// Machine counters (`mcycle`, `minstret` and their `h` halves).
    MachineCounter,
    /// Machine hardware performance monitor counters (`mhpmcounter3..=31`).
    MachineHpmCounter,
    /// Machine HPM event selectors (`mhpmevent3..=31`).
    MachineHpmEvent,
    /// Unprivileged counters (`cycle`, `time`, `instret` and `h` halves).
    UnprivilegedCounter,
    /// Anything not covered above.
    Other,
}

impl Csr {
    /// `mstatus` — machine status.
    pub const MSTATUS: Csr = Csr(0x300);
    /// `misa` — ISA and extensions.
    pub const MISA: Csr = Csr(0x301);
    /// `medeleg` — machine exception delegation.
    pub const MEDELEG: Csr = Csr(0x302);
    /// `mideleg` — machine interrupt delegation.
    pub const MIDELEG: Csr = Csr(0x303);
    /// `mie` — machine interrupt enable.
    pub const MIE: Csr = Csr(0x304);
    /// `mtvec` — machine trap vector base.
    pub const MTVEC: Csr = Csr(0x305);
    /// `mcounteren` — machine counter enable.
    pub const MCOUNTEREN: Csr = Csr(0x306);
    /// `mscratch` — machine scratch.
    pub const MSCRATCH: Csr = Csr(0x340);
    /// `mepc` — machine exception PC.
    pub const MEPC: Csr = Csr(0x341);
    /// `mcause` — machine trap cause.
    pub const MCAUSE: Csr = Csr(0x342);
    /// `mtval` — machine trap value.
    pub const MTVAL: Csr = Csr(0x343);
    /// `mip` — machine interrupt pending.
    pub const MIP: Csr = Csr(0x344);
    /// `mcycle` — machine cycle counter, low half.
    pub const MCYCLE: Csr = Csr(0xb00);
    /// `minstret` — machine instructions-retired counter, low half.
    pub const MINSTRET: Csr = Csr(0xb02);
    /// `mcycleh` — machine cycle counter, high half.
    pub const MCYCLEH: Csr = Csr(0xb80);
    /// `minstreth` — machine instructions-retired counter, high half.
    pub const MINSTRETH: Csr = Csr(0xb82);
    /// `cycle` — unprivileged cycle counter, low half.
    pub const CYCLE: Csr = Csr(0xc00);
    /// `time` — unprivileged timer, low half.
    pub const TIME: Csr = Csr(0xc01);
    /// `instret` — unprivileged instructions-retired counter, low half.
    pub const INSTRET: Csr = Csr(0xc02);
    /// `cycleh` — unprivileged cycle counter, high half.
    pub const CYCLEH: Csr = Csr(0xc80);
    /// `timeh` — unprivileged timer, high half.
    pub const TIMEH: Csr = Csr(0xc81);
    /// `instreth` — unprivileged instructions-retired counter, high half.
    pub const INSTRETH: Csr = Csr(0xc82);
    /// `mvendorid` — machine vendor ID (read-only).
    pub const MVENDORID: Csr = Csr(0xf11);
    /// `marchid` — machine architecture ID (read-only).
    pub const MARCHID: Csr = Csr(0xf12);
    /// `mimpid` — machine implementation ID (read-only).
    pub const MIMPID: Csr = Csr(0xf13);
    /// `mhartid` — hardware thread ID (read-only).
    pub const MHARTID: Csr = Csr(0xf14);

    /// Address of `mhpmcounter<n>` for `n` in `3..=31`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is outside `3..=31`.
    pub fn mhpmcounter(n: u16) -> Csr {
        assert!((3..=31).contains(&n), "mhpmcounter index out of range: {n}");
        Csr(0xb00 + n)
    }

    /// Address of `mhpmcounter<n>h` for `n` in `3..=31`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is outside `3..=31`.
    pub fn mhpmcounterh(n: u16) -> Csr {
        assert!(
            (3..=31).contains(&n),
            "mhpmcounterh index out of range: {n}"
        );
        Csr(0xb80 + n)
    }

    /// Address of `mhpmevent<n>` for `n` in `3..=31`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is outside `3..=31`.
    pub fn mhpmevent(n: u16) -> Csr {
        assert!((3..=31).contains(&n), "mhpmevent index out of range: {n}");
        Csr(0x320 + n)
    }

    /// The raw 12-bit address.
    #[inline]
    pub const fn addr(self) -> u16 {
        self.0
    }

    /// Whether the address is architecturally read-only (bits `[11:10]`
    /// both set). A write attempt must raise an illegal-instruction trap.
    #[inline]
    pub const fn is_read_only(self) -> bool {
        self.0 >> 10 == 0b11
    }

    /// Lowest privilege level encoded in bits `[9:8]` (0 = user,
    /// 3 = machine).
    #[inline]
    pub const fn min_privilege(self) -> u8 {
        ((self.0 >> 8) & 0b11) as u8
    }

    /// The functional grouping of this address.
    pub fn class(self) -> CsrClass {
        match self.0 {
            0xf11..=0xf14 => CsrClass::MachineInfo,
            0x300..=0x306 => CsrClass::MachineTrapSetup,
            0x340..=0x344 => CsrClass::MachineTrapHandling,
            0xb00 | 0xb02 | 0xb80 | 0xb82 => CsrClass::MachineCounter,
            0xb03..=0xb1f | 0xb83..=0xb9f => CsrClass::MachineHpmCounter,
            0x323..=0x33f => CsrClass::MachineHpmEvent,
            0xc00..=0xc02 | 0xc80..=0xc82 => CsrClass::UnprivilegedCounter,
            _ => CsrClass::Other,
        }
    }

    /// Canonical name of this address, if it is an architected CSR.
    pub fn name(self) -> Option<&'static str> {
        csr_name(self.0)
    }
}

impl fmt::Display for Csr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.name() {
            Some(name) => f.write_str(name),
            None => write!(f, "csr{:#05x}", self.0),
        }
    }
}

impl From<u16> for Csr {
    fn from(addr: u16) -> Csr {
        Csr(addr & 0xfff)
    }
}

/// Looks up the canonical name for a CSR address.
///
/// Returns `None` for unarchitected addresses.
pub fn csr_name(addr: u16) -> Option<&'static str> {
    Some(match addr {
        0x300 => "mstatus",
        0x301 => "misa",
        0x302 => "medeleg",
        0x303 => "mideleg",
        0x304 => "mie",
        0x305 => "mtvec",
        0x306 => "mcounteren",
        0x340 => "mscratch",
        0x341 => "mepc",
        0x342 => "mcause",
        0x343 => "mtval",
        0x344 => "mip",
        0xb00 => "mcycle",
        0xb02 => "minstret",
        0xb80 => "mcycleh",
        0xb82 => "minstreth",
        0xc00 => "cycle",
        0xc01 => "time",
        0xc02 => "instret",
        0xc80 => "cycleh",
        0xc81 => "timeh",
        0xc82 => "instreth",
        0xf11 => "mvendorid",
        0xf12 => "marchid",
        0xf13 => "mimpid",
        0xf14 => "mhartid",
        0xb03..=0xb1f => {
            const NAMES: [&str; 29] = [
                "mhpmcounter3",
                "mhpmcounter4",
                "mhpmcounter5",
                "mhpmcounter6",
                "mhpmcounter7",
                "mhpmcounter8",
                "mhpmcounter9",
                "mhpmcounter10",
                "mhpmcounter11",
                "mhpmcounter12",
                "mhpmcounter13",
                "mhpmcounter14",
                "mhpmcounter15",
                "mhpmcounter16",
                "mhpmcounter17",
                "mhpmcounter18",
                "mhpmcounter19",
                "mhpmcounter20",
                "mhpmcounter21",
                "mhpmcounter22",
                "mhpmcounter23",
                "mhpmcounter24",
                "mhpmcounter25",
                "mhpmcounter26",
                "mhpmcounter27",
                "mhpmcounter28",
                "mhpmcounter29",
                "mhpmcounter30",
                "mhpmcounter31",
            ];
            NAMES[(addr - 0xb03) as usize]
        }
        0xb83..=0xb9f => {
            const NAMES: [&str; 29] = [
                "mhpmcounter3h",
                "mhpmcounter4h",
                "mhpmcounter5h",
                "mhpmcounter6h",
                "mhpmcounter7h",
                "mhpmcounter8h",
                "mhpmcounter9h",
                "mhpmcounter10h",
                "mhpmcounter11h",
                "mhpmcounter12h",
                "mhpmcounter13h",
                "mhpmcounter14h",
                "mhpmcounter15h",
                "mhpmcounter16h",
                "mhpmcounter17h",
                "mhpmcounter18h",
                "mhpmcounter19h",
                "mhpmcounter20h",
                "mhpmcounter21h",
                "mhpmcounter22h",
                "mhpmcounter23h",
                "mhpmcounter24h",
                "mhpmcounter25h",
                "mhpmcounter26h",
                "mhpmcounter27h",
                "mhpmcounter28h",
                "mhpmcounter29h",
                "mhpmcounter30h",
                "mhpmcounter31h",
            ];
            NAMES[(addr - 0xb83) as usize]
        }
        0x323..=0x33f => {
            const NAMES: [&str; 29] = [
                "mhpmevent3",
                "mhpmevent4",
                "mhpmevent5",
                "mhpmevent6",
                "mhpmevent7",
                "mhpmevent8",
                "mhpmevent9",
                "mhpmevent10",
                "mhpmevent11",
                "mhpmevent12",
                "mhpmevent13",
                "mhpmevent14",
                "mhpmevent15",
                "mhpmevent16",
                "mhpmevent17",
                "mhpmevent18",
                "mhpmevent19",
                "mhpmevent20",
                "mhpmevent21",
                "mhpmevent22",
                "mhpmevent23",
                "mhpmevent24",
                "mhpmevent25",
                "mhpmevent26",
                "mhpmevent27",
                "mhpmevent28",
                "mhpmevent29",
                "mhpmevent30",
                "mhpmevent31",
            ];
            NAMES[(addr - 0x323) as usize]
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_only_detection_follows_address_bits() {
        assert!(Csr::MVENDORID.is_read_only());
        assert!(Csr::MARCHID.is_read_only());
        assert!(Csr::MHARTID.is_read_only());
        assert!(Csr::CYCLE.is_read_only());
        assert!(!Csr::MCYCLE.is_read_only());
        assert!(!Csr::MSCRATCH.is_read_only());
        assert!(!Csr::MIP.is_read_only());
    }

    #[test]
    fn hpm_ranges_are_named_and_classified() {
        assert_eq!(Csr::mhpmcounter(16).name(), Some("mhpmcounter16"));
        assert_eq!(Csr::mhpmcounterh(3).name(), Some("mhpmcounter3h"));
        assert_eq!(Csr::mhpmevent(16).name(), Some("mhpmevent16"));
        assert_eq!(Csr::mhpmcounter(31).class(), CsrClass::MachineHpmCounter);
        assert_eq!(Csr::mhpmevent(31).class(), CsrClass::MachineHpmEvent);
    }

    #[test]
    #[should_panic(expected = "mhpmcounter index out of range")]
    fn hpm_counter_rejects_index_2() {
        Csr::mhpmcounter(2);
    }

    #[test]
    fn display_prefers_names() {
        assert_eq!(Csr::MSCRATCH.to_string(), "mscratch");
        assert_eq!(Csr(0x7c0).to_string(), "csr0x7c0");
    }

    #[test]
    fn min_privilege_extracted() {
        assert_eq!(Csr::MSTATUS.min_privilege(), 3);
        assert_eq!(Csr::CYCLE.min_privilege(), 0);
    }
}
