//! Synchronous exception causes.

use std::fmt;

/// Machine-mode synchronous exception causes used by RV32I+Zicsr.
///
/// The discriminants are the architectural `mcause` codes.
///
/// # Example
///
/// ```
/// use symcosim_isa::Trap;
///
/// assert_eq!(Trap::IllegalInstruction.cause(), 2);
/// assert_eq!(Trap::from_cause(4), Some(Trap::LoadAddressMisaligned));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum Trap {
    /// Instruction address misaligned (cause 0).
    InstructionAddressMisaligned = 0,
    /// Instruction access fault (cause 1).
    InstructionAccessFault = 1,
    /// Illegal instruction (cause 2).
    IllegalInstruction = 2,
    /// Breakpoint (cause 3).
    Breakpoint = 3,
    /// Load address misaligned (cause 4).
    LoadAddressMisaligned = 4,
    /// Load access fault (cause 5).
    LoadAccessFault = 5,
    /// Store address misaligned (cause 6).
    StoreAddressMisaligned = 6,
    /// Store access fault (cause 7).
    StoreAccessFault = 7,
    /// Environment call from U-mode (cause 8).
    EcallFromU = 8,
    /// Environment call from M-mode (cause 11).
    EcallFromM = 11,
}

impl Trap {
    /// The architectural `mcause` code.
    #[inline]
    pub const fn cause(self) -> u32 {
        self as u32
    }

    /// Converts an `mcause` code back to a trap, if it is one we model.
    pub const fn from_cause(cause: u32) -> Option<Trap> {
        Some(match cause {
            0 => Trap::InstructionAddressMisaligned,
            1 => Trap::InstructionAccessFault,
            2 => Trap::IllegalInstruction,
            3 => Trap::Breakpoint,
            4 => Trap::LoadAddressMisaligned,
            5 => Trap::LoadAccessFault,
            6 => Trap::StoreAddressMisaligned,
            7 => Trap::StoreAccessFault,
            8 => Trap::EcallFromU,
            11 => Trap::EcallFromM,
            _ => return None,
        })
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            Trap::InstructionAddressMisaligned => "instruction address misaligned",
            Trap::InstructionAccessFault => "instruction access fault",
            Trap::IllegalInstruction => "illegal instruction",
            Trap::Breakpoint => "breakpoint",
            Trap::LoadAddressMisaligned => "load address misaligned",
            Trap::LoadAccessFault => "load access fault",
            Trap::StoreAddressMisaligned => "store address misaligned",
            Trap::StoreAccessFault => "store access fault",
            Trap::EcallFromU => "environment call from U-mode",
            Trap::EcallFromM => "environment call from M-mode",
        };
        f.write_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_round_trip() {
        let traps = [
            Trap::InstructionAddressMisaligned,
            Trap::InstructionAccessFault,
            Trap::IllegalInstruction,
            Trap::Breakpoint,
            Trap::LoadAddressMisaligned,
            Trap::LoadAccessFault,
            Trap::StoreAddressMisaligned,
            Trap::StoreAccessFault,
            Trap::EcallFromU,
            Trap::EcallFromM,
        ];
        for trap in traps {
            assert_eq!(Trap::from_cause(trap.cause()), Some(trap));
        }
        assert_eq!(Trap::from_cause(9), None);
        assert_eq!(Trap::from_cause(12), None);
    }
}
