//! Property tests for the instruction codecs.

use symcosim_isa::{decode, encode, BranchKind, CsrOp, Instr, LoadKind, OpKind, Reg, StoreKind};
use symcosim_testkit::{check_cases, Rng};

fn reg(rng: &mut Rng) -> Reg {
    Reg::from_index(rng.index(32)).expect("index in range")
}

fn i_imm(rng: &mut Rng) -> i32 {
    rng.range_i64(-2048, 2047) as i32
}

fn u_imm(rng: &mut Rng) -> i32 {
    (rng.range_i64(-524288, 524287) as i32) << 12
}

fn j_offset(rng: &mut Rng) -> i32 {
    (rng.range_i64(-524288, 524287) as i32) * 2
}

fn b_offset(rng: &mut Rng) -> i32 {
    (rng.range_i64(-2048, 2047) as i32) * 2
}

fn instr(rng: &mut Rng) -> Instr {
    let load_kind = [
        LoadKind::Lb,
        LoadKind::Lh,
        LoadKind::Lw,
        LoadKind::Lbu,
        LoadKind::Lhu,
    ];
    let store_kind = [StoreKind::Sb, StoreKind::Sh, StoreKind::Sw];
    let branch_kind = [
        BranchKind::Beq,
        BranchKind::Bne,
        BranchKind::Blt,
        BranchKind::Bge,
        BranchKind::Bltu,
        BranchKind::Bgeu,
    ];
    let op_kind = [
        OpKind::Add,
        OpKind::Sub,
        OpKind::Sll,
        OpKind::Slt,
        OpKind::Sltu,
        OpKind::Xor,
        OpKind::Srl,
        OpKind::Sra,
        OpKind::Or,
        OpKind::And,
    ];
    let csr_op = [CsrOp::Rw, CsrOp::Rs, CsrOp::Rc];

    match rng.index(24) {
        0 => Instr::Lui {
            rd: reg(rng),
            imm: u_imm(rng),
        },
        1 => Instr::Auipc {
            rd: reg(rng),
            imm: u_imm(rng),
        },
        2 => Instr::Jal {
            rd: reg(rng),
            offset: j_offset(rng),
        },
        3 => Instr::Jalr {
            rd: reg(rng),
            rs1: reg(rng),
            imm: i_imm(rng),
        },
        4 => Instr::Branch {
            kind: *rng.choose(&branch_kind),
            rs1: reg(rng),
            rs2: reg(rng),
            offset: b_offset(rng),
        },
        5 => Instr::Load {
            kind: *rng.choose(&load_kind),
            rd: reg(rng),
            rs1: reg(rng),
            imm: i_imm(rng),
        },
        6 => Instr::Store {
            kind: *rng.choose(&store_kind),
            rs1: reg(rng),
            rs2: reg(rng),
            imm: i_imm(rng),
        },
        7 => Instr::Addi {
            rd: reg(rng),
            rs1: reg(rng),
            imm: i_imm(rng),
        },
        8 => Instr::Slti {
            rd: reg(rng),
            rs1: reg(rng),
            imm: i_imm(rng),
        },
        9 => Instr::Sltiu {
            rd: reg(rng),
            rs1: reg(rng),
            imm: i_imm(rng),
        },
        10 => Instr::Xori {
            rd: reg(rng),
            rs1: reg(rng),
            imm: i_imm(rng),
        },
        11 => Instr::Ori {
            rd: reg(rng),
            rs1: reg(rng),
            imm: i_imm(rng),
        },
        12 => Instr::Andi {
            rd: reg(rng),
            rs1: reg(rng),
            imm: i_imm(rng),
        },
        13 => Instr::Slli {
            rd: reg(rng),
            rs1: reg(rng),
            shamt: rng.below(32) as u8,
        },
        14 => Instr::Srli {
            rd: reg(rng),
            rs1: reg(rng),
            shamt: rng.below(32) as u8,
        },
        15 => Instr::Srai {
            rd: reg(rng),
            rs1: reg(rng),
            shamt: rng.below(32) as u8,
        },
        16 => Instr::Op {
            kind: *rng.choose(&op_kind),
            rd: reg(rng),
            rs1: reg(rng),
            rs2: reg(rng),
        },
        17 => Instr::Fence {
            pred: rng.below(16) as u8,
            succ: rng.below(16) as u8,
        },
        18 => Instr::FenceI,
        19 => Instr::Ecall,
        20 => Instr::Ebreak,
        21 => Instr::Mret,
        22 => Instr::Wfi,
        _ => {
            if rng.chance(1, 2) {
                Instr::Csr {
                    op: *rng.choose(&csr_op),
                    rd: reg(rng),
                    rs1: reg(rng),
                    csr: rng.below(4096) as u16,
                }
            } else {
                Instr::CsrImm {
                    op: *rng.choose(&csr_op),
                    rd: reg(rng),
                    uimm: rng.below(32) as u8,
                    csr: rng.below(4096) as u16,
                }
            }
        }
    }
}

/// Every instruction survives an encode/decode round trip unchanged.
#[test]
fn encode_decode_round_trip() {
    check_cases(0x15a_0001, 256, |rng| {
        let instr = instr(rng);
        let word = encode(&instr);
        assert_eq!(decode(word), Ok(instr));
    });
}

/// The decoder never panics, whatever the input word.
#[test]
fn decode_total() {
    check_cases(0x15a_0002, 256, |rng| {
        let _ = decode(rng.next_u32());
    });
}

/// Decoded instructions re-encode to a word that decodes identically
/// (canonicalisation is idempotent).
#[test]
fn reencode_is_stable() {
    check_cases(0x15a_0003, 256, |rng| {
        if let Ok(instr) = decode(rng.next_u32()) {
            let canon = encode(&instr);
            assert_eq!(decode(canon), Ok(instr));
        }
    });
}

/// Disassembly never panics and is never empty.
#[test]
fn disassembly_total() {
    check_cases(0x15a_0004, 256, |rng| {
        assert!(!instr(rng).to_string().is_empty());
    });
}
