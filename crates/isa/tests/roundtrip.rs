//! Property tests for the instruction codecs.

use symcosim_isa::{decode, encode, BranchKind, CsrOp, Instr, LoadKind, OpKind, Reg, StoreKind};
use symcosim_testkit::{check_cases, Rng};

fn reg(rng: &mut Rng) -> Reg {
    Reg::from_index(rng.index(32)).expect("index in range")
}

fn i_imm(rng: &mut Rng) -> i32 {
    rng.range_i64(-2048, 2047) as i32
}

fn u_imm(rng: &mut Rng) -> i32 {
    (rng.range_i64(-524288, 524287) as i32) << 12
}

fn j_offset(rng: &mut Rng) -> i32 {
    (rng.range_i64(-524288, 524287) as i32) * 2
}

fn b_offset(rng: &mut Rng) -> i32 {
    (rng.range_i64(-2048, 2047) as i32) * 2
}

fn instr(rng: &mut Rng) -> Instr {
    let load_kind = [
        LoadKind::Lb,
        LoadKind::Lh,
        LoadKind::Lw,
        LoadKind::Lbu,
        LoadKind::Lhu,
    ];
    let store_kind = [StoreKind::Sb, StoreKind::Sh, StoreKind::Sw];
    let branch_kind = [
        BranchKind::Beq,
        BranchKind::Bne,
        BranchKind::Blt,
        BranchKind::Bge,
        BranchKind::Bltu,
        BranchKind::Bgeu,
    ];
    let op_kind = [
        OpKind::Add,
        OpKind::Sub,
        OpKind::Sll,
        OpKind::Slt,
        OpKind::Sltu,
        OpKind::Xor,
        OpKind::Srl,
        OpKind::Sra,
        OpKind::Or,
        OpKind::And,
    ];
    let csr_op = [CsrOp::Rw, CsrOp::Rs, CsrOp::Rc];

    match rng.index(24) {
        0 => Instr::Lui {
            rd: reg(rng),
            imm: u_imm(rng),
        },
        1 => Instr::Auipc {
            rd: reg(rng),
            imm: u_imm(rng),
        },
        2 => Instr::Jal {
            rd: reg(rng),
            offset: j_offset(rng),
        },
        3 => Instr::Jalr {
            rd: reg(rng),
            rs1: reg(rng),
            imm: i_imm(rng),
        },
        4 => Instr::Branch {
            kind: *rng.choose(&branch_kind),
            rs1: reg(rng),
            rs2: reg(rng),
            offset: b_offset(rng),
        },
        5 => Instr::Load {
            kind: *rng.choose(&load_kind),
            rd: reg(rng),
            rs1: reg(rng),
            imm: i_imm(rng),
        },
        6 => Instr::Store {
            kind: *rng.choose(&store_kind),
            rs1: reg(rng),
            rs2: reg(rng),
            imm: i_imm(rng),
        },
        7 => Instr::Addi {
            rd: reg(rng),
            rs1: reg(rng),
            imm: i_imm(rng),
        },
        8 => Instr::Slti {
            rd: reg(rng),
            rs1: reg(rng),
            imm: i_imm(rng),
        },
        9 => Instr::Sltiu {
            rd: reg(rng),
            rs1: reg(rng),
            imm: i_imm(rng),
        },
        10 => Instr::Xori {
            rd: reg(rng),
            rs1: reg(rng),
            imm: i_imm(rng),
        },
        11 => Instr::Ori {
            rd: reg(rng),
            rs1: reg(rng),
            imm: i_imm(rng),
        },
        12 => Instr::Andi {
            rd: reg(rng),
            rs1: reg(rng),
            imm: i_imm(rng),
        },
        13 => Instr::Slli {
            rd: reg(rng),
            rs1: reg(rng),
            shamt: rng.below(32) as u8,
        },
        14 => Instr::Srli {
            rd: reg(rng),
            rs1: reg(rng),
            shamt: rng.below(32) as u8,
        },
        15 => Instr::Srai {
            rd: reg(rng),
            rs1: reg(rng),
            shamt: rng.below(32) as u8,
        },
        16 => Instr::Op {
            kind: *rng.choose(&op_kind),
            rd: reg(rng),
            rs1: reg(rng),
            rs2: reg(rng),
        },
        17 => Instr::Fence {
            pred: rng.below(16) as u8,
            succ: rng.below(16) as u8,
        },
        18 => Instr::FenceI,
        19 => Instr::Ecall,
        20 => Instr::Ebreak,
        21 => Instr::Mret,
        22 => Instr::Wfi,
        _ => {
            if rng.chance(1, 2) {
                Instr::Csr {
                    op: *rng.choose(&csr_op),
                    rd: reg(rng),
                    rs1: reg(rng),
                    csr: rng.below(4096) as u16,
                }
            } else {
                Instr::CsrImm {
                    op: *rng.choose(&csr_op),
                    rd: reg(rng),
                    uimm: rng.below(32) as u8,
                    csr: rng.below(4096) as u16,
                }
            }
        }
    }
}

/// Every instruction survives an encode/decode round trip unchanged.
#[test]
fn encode_decode_round_trip() {
    check_cases(0x15a_0001, 256, |rng| {
        let instr = instr(rng);
        let word = encode(&instr);
        assert_eq!(decode(word), Ok(instr));
    });
}

/// The decoder never panics, whatever the input word.
#[test]
fn decode_total() {
    check_cases(0x15a_0002, 256, |rng| {
        let _ = decode(rng.next_u32());
    });
}

/// Decoded instructions re-encode to a word that decodes identically
/// (canonicalisation is idempotent).
#[test]
fn reencode_is_stable() {
    check_cases(0x15a_0003, 256, |rng| {
        if let Ok(instr) = decode(rng.next_u32()) {
            let canon = encode(&instr);
            assert_eq!(decode(canon), Ok(instr));
        }
    });
}

/// Disassembly never panics and is never empty.
#[test]
fn disassembly_total() {
    check_cases(0x15a_0004, 256, |rng| {
        assert!(!instr(rng).to_string().is_empty());
    });
}

// --- Known-illegal corpus -------------------------------------------------
//
// Words the decoder must reject, and on which both corrected executable
// models must raise the same illegal-instruction trap (cause 2). The
// classification harnesses come from the lint crate so this file and
// `symcosim-lint --cross` agree on what "illegal in a model" means.

use symcosim_iss::IssConfig;
use symcosim_lint::cross::{core_illegal, iss_illegal};
use symcosim_microrv32::CoreConfig;

/// Asserts that `word` is decode-illegal and that both corrected models
/// trap on it with cause 2.
fn assert_illegal_everywhere(word: u32) {
    assert!(decode(word).is_err(), "0x{word:08x} unexpectedly decodes");
    assert!(
        iss_illegal(word, &IssConfig::fixed()),
        "0x{word:08x}: fixed ISS does not trap illegal"
    );
    assert!(
        core_illegal(word, &CoreConfig::fixed()),
        "0x{word:08x}: fixed core does not trap illegal"
    );
}

/// Structured near-misses: legal opcodes with reserved funct3/funct7
/// values, and privileged exact encodings with corrupted operand fields.
#[test]
fn structured_illegal_words_trap_in_both_models() {
    let corpus: &[u32] = &[
        // JALR with funct3 != 0.
        0b110_0111 | (1 << 12),
        0b110_0111 | (7 << 12),
        // LOAD funct3 ∈ {3, 6, 7} (no LD/LWU/reserved in RV32I).
        0b000_0011 | (3 << 12),
        0b000_0011 | (6 << 12),
        0b000_0011 | (7 << 12),
        // STORE funct3 > 2.
        0b010_0011 | (3 << 12),
        0b010_0011 | (7 << 12),
        // BRANCH funct3 ∈ {2, 3} (reserved).
        0b110_0011 | (2 << 12),
        0b110_0011 | (3 << 12),
        // Shift immediates with bad funct7: SLLI needs 0, SRLI/SRAI
        // need 0 or 0b010_0000.
        0b001_0011 | (1 << 12) | (1 << 25),
        0b001_0011 | (5 << 12) | (1 << 25),
        0b001_0011 | (5 << 12) | (0b111_1111 << 25),
        // OP with funct7 outside {0, 0b010_0000}, and SUB-bit abuse on
        // operations that have no SUB form.
        0b011_0011 | (1 << 25),
        0b011_0011 | (1 << 12) | (0b010_0000 << 25), // "SLL" with bit 30
        0b011_0011 | (7 << 12) | (0b010_0000 << 25), // "AND" with bit 30
        // MISC-MEM funct3 > 1 (only FENCE and FENCE.I exist).
        0b000_1111 | (2 << 12),
        0b000_1111 | (7 << 12),
        // SYSTEM funct3 = 4 (reserved encoding slot).
        0b111_0011 | (4 << 12),
        // Privileged exact-encoding near-misses: ECALL with rs2 = 2
        // (rs2 = 1 would *be* EBREAK), EBREAK with rd = 1, MRET with
        // rs1 = 1, WFI with rd = 1.
        0x0000_0073 | (2 << 20),
        0x0010_0073 | (1 << 7),
        0x3020_0073 | (1 << 15),
        0x1050_0073 | (1 << 7),
        // Unused major opcodes (OP-FP, AMO, custom-0).
        0b101_0011,
        0b010_1111,
        0b000_1011,
        // Compressed-looking words: low two bits != 0b11.
        0x0000_0000,
        0x0000_4501,
        0x0000_0001,
        0xffff_fffe,
    ];
    for &word in corpus {
        assert_illegal_everywhere(word);
    }
}

/// Randomised: whenever a word fails to decode, both corrected models
/// must agree it is illegal; whenever it decodes (and legality does not
/// depend on the CSR address), neither model may trap it as illegal.
#[test]
fn random_words_classify_identically_across_models() {
    check_cases(0x15a_0005, 64, |rng| {
        let word = rng.next_u32();
        let iss = iss_illegal(word, &IssConfig::fixed());
        let core = core_illegal(word, &CoreConfig::fixed());
        assert_eq!(iss, core, "0x{word:08x}: fixed models disagree");
        match decode(word) {
            Err(_) => assert!(iss, "0x{word:08x}: decode-illegal but models retire it"),
            Ok(Instr::Csr { .. } | Instr::CsrImm { .. }) => {}
            Ok(_) => assert!(!iss, "0x{word:08x}: decode-legal but models trap it"),
        }
    });
}

/// Reserved CSR encodings decode fine (address legality is an execution
/// property) but both corrected models trap on unarchitected addresses.
#[test]
fn reserved_csr_encodings_trap_identically() {
    // CSRRW x1, <addr>, x1 for addresses with no architected CSR.
    for addr in [0x003u32, 0x145, 0x7c0, 0x800, 0xfff] {
        let word = 0b111_0011 | (1 << 7) | (1 << 12) | (1 << 15) | (addr << 20);
        assert!(decode(word).is_ok(), "0x{word:08x} must decode");
        assert!(
            iss_illegal(word, &IssConfig::fixed()),
            "csr 0x{addr:03x}: fixed ISS does not trap"
        );
        assert!(
            core_illegal(word, &CoreConfig::fixed()),
            "csr 0x{addr:03x}: fixed core does not trap"
        );
    }
}
