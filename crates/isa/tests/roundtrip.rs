//! Property tests for the instruction codecs.

use proptest::prelude::*;
use symcosim_isa::{decode, encode, BranchKind, CsrOp, Instr, LoadKind, OpKind, Reg, StoreKind};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0usize..32).prop_map(|i| Reg::from_index(i).expect("index in range"))
}

fn arb_i_imm() -> impl Strategy<Value = i32> {
    -2048i32..=2047
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    let load_kind = prop_oneof![
        Just(LoadKind::Lb),
        Just(LoadKind::Lh),
        Just(LoadKind::Lw),
        Just(LoadKind::Lbu),
        Just(LoadKind::Lhu),
    ];
    let store_kind = prop_oneof![
        Just(StoreKind::Sb),
        Just(StoreKind::Sh),
        Just(StoreKind::Sw)
    ];
    let branch_kind = prop_oneof![
        Just(BranchKind::Beq),
        Just(BranchKind::Bne),
        Just(BranchKind::Blt),
        Just(BranchKind::Bge),
        Just(BranchKind::Bltu),
        Just(BranchKind::Bgeu),
    ];
    let op_kind = prop_oneof![
        Just(OpKind::Add),
        Just(OpKind::Sub),
        Just(OpKind::Sll),
        Just(OpKind::Slt),
        Just(OpKind::Sltu),
        Just(OpKind::Xor),
        Just(OpKind::Srl),
        Just(OpKind::Sra),
        Just(OpKind::Or),
        Just(OpKind::And),
    ];
    let csr_op = prop_oneof![Just(CsrOp::Rw), Just(CsrOp::Rs), Just(CsrOp::Rc)];

    prop_oneof![
        (arb_reg(), (-524288i32..=524287).prop_map(|v| v << 12))
            .prop_map(|(rd, imm)| Instr::Lui { rd, imm }),
        (arb_reg(), (-524288i32..=524287).prop_map(|v| v << 12))
            .prop_map(|(rd, imm)| Instr::Auipc { rd, imm }),
        (arb_reg(), (-524288i32..=524287).prop_map(|v| v * 2))
            .prop_map(|(rd, offset)| Instr::Jal { rd, offset }),
        (arb_reg(), arb_reg(), arb_i_imm()).prop_map(|(rd, rs1, imm)| Instr::Jalr { rd, rs1, imm }),
        (
            branch_kind,
            arb_reg(),
            arb_reg(),
            (-2048i32..=2047).prop_map(|v| v * 2)
        )
            .prop_map(|(kind, rs1, rs2, offset)| Instr::Branch {
                kind,
                rs1,
                rs2,
                offset
            }),
        (load_kind, arb_reg(), arb_reg(), arb_i_imm())
            .prop_map(|(kind, rd, rs1, imm)| Instr::Load { kind, rd, rs1, imm }),
        (store_kind, arb_reg(), arb_reg(), arb_i_imm()).prop_map(|(kind, rs1, rs2, imm)| {
            Instr::Store {
                kind,
                rs1,
                rs2,
                imm,
            }
        }),
        (arb_reg(), arb_reg(), arb_i_imm()).prop_map(|(rd, rs1, imm)| Instr::Addi { rd, rs1, imm }),
        (arb_reg(), arb_reg(), arb_i_imm()).prop_map(|(rd, rs1, imm)| Instr::Slti { rd, rs1, imm }),
        (arb_reg(), arb_reg(), arb_i_imm()).prop_map(|(rd, rs1, imm)| Instr::Sltiu {
            rd,
            rs1,
            imm
        }),
        (arb_reg(), arb_reg(), arb_i_imm()).prop_map(|(rd, rs1, imm)| Instr::Xori { rd, rs1, imm }),
        (arb_reg(), arb_reg(), arb_i_imm()).prop_map(|(rd, rs1, imm)| Instr::Ori { rd, rs1, imm }),
        (arb_reg(), arb_reg(), arb_i_imm()).prop_map(|(rd, rs1, imm)| Instr::Andi { rd, rs1, imm }),
        (arb_reg(), arb_reg(), 0u8..32).prop_map(|(rd, rs1, shamt)| Instr::Slli { rd, rs1, shamt }),
        (arb_reg(), arb_reg(), 0u8..32).prop_map(|(rd, rs1, shamt)| Instr::Srli { rd, rs1, shamt }),
        (arb_reg(), arb_reg(), 0u8..32).prop_map(|(rd, rs1, shamt)| Instr::Srai { rd, rs1, shamt }),
        (op_kind, arb_reg(), arb_reg(), arb_reg()).prop_map(|(kind, rd, rs1, rs2)| Instr::Op {
            kind,
            rd,
            rs1,
            rs2
        }),
        (0u8..16, 0u8..16).prop_map(|(pred, succ)| Instr::Fence { pred, succ }),
        Just(Instr::FenceI),
        Just(Instr::Ecall),
        Just(Instr::Ebreak),
        Just(Instr::Mret),
        Just(Instr::Wfi),
        (csr_op.clone(), arb_reg(), arb_reg(), 0u16..4096)
            .prop_map(|(op, rd, rs1, csr)| Instr::Csr { op, rd, rs1, csr }),
        (csr_op, arb_reg(), 0u8..32, 0u16..4096).prop_map(|(op, rd, uimm, csr)| Instr::CsrImm {
            op,
            rd,
            uimm,
            csr
        }),
    ]
}

proptest! {
    /// Every instruction survives an encode/decode round trip unchanged.
    #[test]
    fn encode_decode_round_trip(instr in arb_instr()) {
        let word = encode(&instr);
        prop_assert_eq!(decode(word), Ok(instr));
    }

    /// The decoder never panics, whatever the input word.
    #[test]
    fn decode_total(word in any::<u32>()) {
        let _ = decode(word);
    }

    /// Decoded instructions re-encode to a word that decodes identically
    /// (canonicalisation is idempotent).
    #[test]
    fn reencode_is_stable(word in any::<u32>()) {
        if let Ok(instr) = decode(word) {
            let canon = encode(&instr);
            prop_assert_eq!(decode(canon), Ok(instr));
        }
    }

    /// Disassembly never panics and is never empty.
    #[test]
    fn disassembly_total(instr in arb_instr()) {
        prop_assert!(!instr.to_string().is_empty());
    }
}
