//! Co-simulation throughput benchmarks: the concrete harness (the inner
//! loop of the fuzzing baseline) and one symbolic path exploration.

use std::hint::black_box;
use symcosim_core::{
    CoSim, ConcreteJudge, InstrConstraint, SessionConfig, SymbolicInstrMemory, VerifySession,
};
use symcosim_iss::IssConfig;
use symcosim_microrv32::CoreConfig;
use symcosim_symex::ConcreteDomain;
use symcosim_testkit::bench;

/// One concrete co-simulation run: fetch, execute on both models, vote.
fn concrete_run(instr_limit: u32) -> u64 {
    let mut dom = ConcreteDomain::new();
    // A fixed ALU instruction: addi x1, x1, 1.
    let imem = SymbolicInstrMemory::with_generator(|_dom, _index| 0x0010_8093);
    let mut cosim = CoSim::new(
        &mut dom,
        CoreConfig::fixed(),
        IssConfig::fixed(),
        None,
        imem,
        0,
        16,
        instr_limit,
        64 * instr_limit as u64,
    );
    let result = cosim.run(&mut dom, &mut ConcreteJudge);
    assert!(result.mismatch.is_none());
    result.instructions
}

fn main() {
    bench("cosim/concrete_1_instruction", 10, 100, || {
        black_box(concrete_run(1));
    });
    bench("cosim/concrete_8_instructions", 10, 100, || {
        black_box(concrete_run(8));
    });

    // Explore a single major opcode so each iteration is one small
    // exploration (LUI: exactly one feasible path).
    bench("cosim/symbolic/lui_only_exploration", 1, 5, || {
        let mut config = SessionConfig::rv32i_only();
        config.stop_at_first_mismatch = false;
        config.constraint = InstrConstraint::OnlyOpcode(symcosim_isa::opcodes::LUI);
        let report = VerifySession::new(config)
            .expect("valid configuration")
            .run();
        assert_eq!(report.paths_complete, 1);
    });
    // The branch opcode forks over comparisons and taken/not-taken.
    bench("cosim/symbolic/branch_opcode_exploration", 1, 5, || {
        let mut config = SessionConfig::rv32i_only();
        config.stop_at_first_mismatch = false;
        config.constraint = InstrConstraint::OnlyOpcode(symcosim_isa::opcodes::BRANCH);
        let report = VerifySession::new(config)
            .expect("valid configuration")
            .run();
        assert!(report.paths_complete > 5);
    });
}
