//! Co-simulation throughput benchmarks: the concrete harness (the inner
//! loop of the fuzzing baseline) and one symbolic path exploration.

use criterion::{criterion_group, criterion_main, Criterion};
use symcosim_core::{
    CoSim, ConcreteJudge, InstrConstraint, SessionConfig, SymbolicInstrMemory, VerifySession,
};
use symcosim_iss::IssConfig;
use symcosim_microrv32::CoreConfig;
use symcosim_symex::ConcreteDomain;

/// One concrete co-simulation run: fetch, execute on both models, vote.
fn concrete_run(instr_limit: u32) -> u64 {
    let mut dom = ConcreteDomain::new();
    // A fixed ALU instruction: addi x1, x1, 1.
    let imem = SymbolicInstrMemory::with_generator(|_dom, _index| 0x0010_8093);
    let mut cosim = CoSim::new(
        &mut dom,
        CoreConfig::fixed(),
        IssConfig::fixed(),
        None,
        imem,
        0,
        16,
        instr_limit,
        64 * instr_limit as u64,
    );
    let result = cosim.run(&mut dom, &mut ConcreteJudge);
    assert!(result.mismatch.is_none());
    result.instructions
}

fn bench_concrete(c: &mut Criterion) {
    c.bench_function("cosim/concrete_1_instruction", |b| {
        b.iter(|| concrete_run(1))
    });
    c.bench_function("cosim/concrete_8_instructions", |b| {
        b.iter(|| concrete_run(8))
    });
}

fn bench_symbolic(c: &mut Criterion) {
    let mut group = c.benchmark_group("cosim/symbolic");
    group.sample_size(10);
    // Explore a single major opcode so each iteration is one small
    // exploration (LUI: exactly one feasible path).
    group.bench_function("lui_only_exploration", |b| {
        b.iter(|| {
            let mut config = SessionConfig::rv32i_only();
            config.stop_at_first_mismatch = false;
            config.constraint = InstrConstraint::OnlyOpcode(symcosim_isa::opcodes::LUI);
            let report = VerifySession::new(config)
                .expect("valid configuration")
                .run();
            assert_eq!(report.paths_complete, 1);
        })
    });
    // The branch opcode forks over comparisons and taken/not-taken.
    group.bench_function("branch_opcode_exploration", |b| {
        b.iter(|| {
            let mut config = SessionConfig::rv32i_only();
            config.stop_at_first_mismatch = false;
            config.constraint = InstrConstraint::OnlyOpcode(symcosim_isa::opcodes::BRANCH);
            let report = VerifySession::new(config)
                .expect("valid configuration")
                .run();
            assert!(report.paths_complete > 5);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_concrete, bench_symbolic);
criterion_main!(benches);
