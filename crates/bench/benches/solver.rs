//! Micro-benchmarks of the decision-procedure substrate: the CDCL SAT
//! solver and the bit-vector blasting layer that every path-feasibility
//! query of the co-simulation goes through.

use std::hint::black_box;
use symcosim_sat::{Lit, Solver};
use symcosim_symex::{Context, SolverBackend};
use symcosim_testkit::bench;

/// Unsatisfiable pigeonhole instance — exercises conflict analysis.
fn pigeonhole(pigeons: usize, holes: usize) -> Solver {
    let mut solver = Solver::new();
    let grid: Vec<Vec<Lit>> = (0..pigeons)
        .map(|_| {
            (0..holes)
                .map(|_| Lit::positive(solver.new_var()))
                .collect()
        })
        .collect();
    for row in &grid {
        solver.add_clause(row.iter().copied());
    }
    #[allow(clippy::needless_range_loop)] // 2-D pigeonhole indexing
    for hole in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                let (a, b) = (grid[p1][hole], grid[p2][hole]);
                solver.add_clause([!a, !b]);
            }
        }
    }
    solver
}

fn main() {
    bench("sat/pigeonhole_7_6_unsat", 2, 20, || {
        let mut solver = pigeonhole(7, 6);
        black_box(solver.solve(&[]));
    });

    bench("blast/add32_equation", 2, 20, || {
        let mut ctx = Context::new();
        let x = ctx.symbol(32, "x");
        let y = ctx.symbol(32, "y");
        let sum = ctx.add(x, y);
        let target = ctx.constant(32, 0x1234_5678);
        let cond = ctx.eq(sum, target);
        let mut backend = SolverBackend::new();
        assert!(backend.check(&ctx, &[cond]).is_sat());
    });

    bench("blast/mul16_factorisation", 1, 10, || {
        let mut ctx = Context::new();
        let x = ctx.symbol(16, "x");
        let y = ctx.symbol(16, "y");
        let product = ctx.mul(x, y);
        // 12343 is prime, so any factorisation with both factors > 1
        // must exploit the wrapping semantics (x·y ≡ 12343 mod 2^16) —
        // forcing the solver through the full multiplier circuit.
        let target = ctx.constant(16, 12_343);
        let one = ctx.constant(16, 1);
        let cond = ctx.eq(product, target);
        let x_gt1 = ctx.ult(one, x);
        let y_gt1 = ctx.ult(one, y);
        let t = ctx.and(cond, x_gt1);
        let both = ctx.and(t, y_gt1);
        let mut backend = SolverBackend::new();
        assert!(backend.check(&ctx, &[both]).is_sat());
        let xv = backend.value_of(&ctx, x).expect("model");
        let yv = backend.value_of(&ctx, y).expect("model");
        assert_eq!(xv.wrapping_mul(yv) & 0xffff, 12_343);
    });

    bench("blast/incremental_assumption_queries", 2, 20, || {
        let mut ctx = Context::new();
        let x = ctx.symbol(32, "x");
        let conds: Vec<_> = (0..16)
            .map(|i| {
                let k = ctx.constant(32, 1u64 << i);
                let masked = ctx.and(x, k);
                ctx.eq(masked, k)
            })
            .collect();
        let mut backend = SolverBackend::new();
        for i in 0..conds.len() {
            assert!(backend.check(&ctx, &conds[..=i]).is_sat());
        }
    });
}
