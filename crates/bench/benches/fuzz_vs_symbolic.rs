//! Time-to-detection: symbolic exploration vs the random fuzzing baseline
//! on the same injected error — the comparison motivating the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use symcosim_core::fuzz::{self, FuzzConfig};
use symcosim_core::{SessionConfig, VerifySession};
use symcosim_microrv32::InjectedError;

fn bench_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("detect_e3");
    group.sample_size(10);

    group.bench_function("symbolic", |b| {
        b.iter(|| {
            let mut config = SessionConfig::rv32i_only();
            config.inject = Some(InjectedError::E3AddiStuckAt0Lsb);
            let report = VerifySession::new(config)
                .expect("valid configuration")
                .run();
            assert!(report.first_mismatch().is_some());
        })
    });

    group.bench_function("fuzzing", |b| {
        let mut seed = 1u64;
        b.iter(|| {
            let mut config = FuzzConfig::rv32i_only();
            config.inject = Some(InjectedError::E3AddiStuckAt0Lsb);
            config.seed = seed;
            seed = seed.wrapping_add(1);
            let outcome = fuzz::run(&config);
            assert!(outcome.found());
        })
    });

    group.finish();
}

criterion_group!(benches, bench_detection);
criterion_main!(benches);
