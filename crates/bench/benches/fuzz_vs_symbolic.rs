//! Time-to-detection: symbolic exploration vs the random fuzzing baseline
//! on the same injected error — the comparison motivating the paper.

use symcosim_core::fuzz::{self, FuzzConfig};
use symcosim_core::{SessionConfig, VerifySession};
use symcosim_microrv32::InjectedError;
use symcosim_testkit::bench;

fn main() {
    bench("detect_e3/symbolic", 1, 5, || {
        let mut config = SessionConfig::rv32i_only();
        config.inject = Some(InjectedError::E3AddiStuckAt0Lsb);
        let report = VerifySession::new(config)
            .expect("valid configuration")
            .run();
        assert!(report.first_mismatch().is_some());
    });

    let mut seed = 1u64;
    bench("detect_e3/fuzzing", 1, 5, || {
        let mut config = FuzzConfig::rv32i_only();
        config.inject = Some(InjectedError::E3AddiStuckAt0Lsb);
        config.seed = seed;
        seed = seed.wrapping_add(1);
        let outcome = fuzz::run(&config);
        assert!(outcome.found());
    });
}
