//! Benchmark harnesses and table-regeneration binaries.
//!
//! Binaries (each regenerates one artefact of the paper's evaluation):
//!
//! * `table1` — the catalogue of MicroRV32/VP errors and mismatches
//!   (Table I),
//! * `table2` — the injected-error performance evaluation, instruction
//!   limits 1 and 2 (Table II),
//! * `longrun` — the exemplary unrestricted exploration of Section V-A
//!   (paths, partial paths, generated test vectors),
//! * `ablation` — the sliced-symbolic-registers ablation behind the
//!   "a non-optimised symbolic execution requires more than 30 days"
//!   claim.
//!
//! Criterion benches live in `benches/` and cover the engine and
//! co-simulation building blocks plus the fuzzing comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Formats a `std::time::Duration` the way the tables print it (seconds).
pub fn fmt_secs(duration: std::time::Duration) -> String {
    format!("{:.2}", duration.as_secs_f64())
}

/// Median of a slice (the tables report medians like the paper does).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn median(values: &mut [u64]) -> u64 {
    assert!(!values.is_empty(), "median of empty slice");
    values.sort_unstable();
    values[values.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&mut [3, 1, 2]), 2);
        assert_eq!(median(&mut [4, 1, 2, 3]), 3);
    }

    #[test]
    fn seconds_format() {
        assert_eq!(fmt_secs(std::time::Duration::from_millis(1500)), "1.50");
    }
}
