//! Benchmark harnesses and table-regeneration binaries.
//!
//! Binaries (each regenerates one artefact of the paper's evaluation):
//!
//! * `table1` — the catalogue of MicroRV32/VP errors and mismatches
//!   (Table I),
//! * `table2` — the injected-error performance evaluation, instruction
//!   limits 1 and 2 (Table II),
//! * `longrun` — the exemplary unrestricted exploration of Section V-A
//!   (paths, partial paths, generated test vectors),
//! * `ablation` — the sliced-symbolic-registers ablation behind the
//!   "a non-optimised symbolic execution requires more than 30 days"
//!   claim.
//!
//! Micro-benchmarks live in `benches/` (std-only harnesses built on
//! `symcosim-testkit`) and cover the engine and co-simulation building
//! blocks plus the fuzzing comparison. Every binary accepts `--jobs N`
//! for parallel exploration and `--progress-json` for structured
//! progress events.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::mpsc;
use std::thread;

use symcosim_core::{EngineKind, ProgressEvent, SessionConfig, VerifyReport, VerifySession};

/// Schema identifier of the `BENCH_*.json` documents the benchmark bins
/// emit. Every document opens with the shared
/// [`json::header`](symcosim_core::json::header) fields (`schema`,
/// `tool`, `version`) followed by a `bench` name.
pub const BENCH_SCHEMA: &str = "symcosim-bench/1";

/// Parallelism options the table bins share: `--jobs N` selects the
/// worker count (default 1, the sequential engine), `--engine
/// fork|reexec` overrides the path engine, and `--progress-json` streams
/// one structured progress event per line on stderr.
#[derive(Debug, Clone, Copy)]
pub struct RunOpts {
    /// Worker threads; 1 runs the classic sequential engine.
    pub jobs: usize,
    /// Path-engine override; `None` keeps the session default (fork).
    pub engine: Option<EngineKind>,
    /// Stream JSON progress events on stderr.
    pub progress_json: bool,
}

impl RunOpts {
    /// Parses the options from the process arguments (unknown arguments
    /// are ignored so bins can layer their own flags on top).
    pub fn from_args() -> RunOpts {
        let args: Vec<String> = std::env::args().collect();
        let jobs = args
            .iter()
            .position(|a| a == "--jobs")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);
        let engine = args
            .iter()
            .position(|a| a == "--engine")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| EngineKind::parse(v));
        RunOpts {
            jobs: usize::max(jobs, 1),
            engine,
            progress_json: args.iter().any(|a| a == "--progress-json"),
        }
    }

    /// Applies the path-engine override to a session configuration.
    pub fn apply(&self, config: &mut SessionConfig) {
        if let Some(engine) = self.engine {
            config.engine = engine;
        }
    }
}

/// Runs a session honouring [`RunOpts`]: sequentially for `--jobs 1`
/// without progress, on worker threads otherwise. The merged report is
/// the same either way for frontier-drained configurations.
pub fn run_session(session: VerifySession, opts: RunOpts) -> VerifyReport {
    if opts.jobs <= 1 && !opts.progress_json {
        return session.run();
    }
    if !opts.progress_json {
        return session.run_parallel(opts.jobs);
    }
    let (sender, receiver) = mpsc::channel::<ProgressEvent>();
    let printer = thread::spawn(move || {
        for event in receiver {
            eprintln!("{}", event.to_json());
        }
    });
    let report = session.run_parallel_with_progress(opts.jobs, Some(sender));
    let _ = printer.join();
    report
}

/// Formats a `std::time::Duration` the way the tables print it (seconds).
pub fn fmt_secs(duration: std::time::Duration) -> String {
    format!("{:.2}", duration.as_secs_f64())
}

/// Median of a slice (the tables report medians like the paper does).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn median(values: &mut [u64]) -> u64 {
    assert!(!values.is_empty(), "median of empty slice");
    values.sort_unstable();
    values[values.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&mut [3, 1, 2]), 2);
        assert_eq!(median(&mut [4, 1, 2, 3]), 3);
    }

    #[test]
    fn seconds_format() {
        assert_eq!(fmt_secs(std::time::Duration::from_millis(1500)), "1.50");
    }
}
