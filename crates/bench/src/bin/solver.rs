//! Solver-chain benchmark: feasibility solving with the KLEE-style chain
//! on versus off, with incremental solving on versus off, and with the
//! abstract-interpretation preflight on versus off.
//!
//! Runs the same frontier-drained explorations — corrected models, fork
//! engine, generation restricted to the OP and then the BRANCH major
//! opcode at instruction limit 2 — four times each: through the solver
//! chain (absint preflight, independence slicing, counterexample-core
//! subsumption, cached model evaluation) with incremental solving
//! (`chain_on`), through the chain with incremental solving disabled
//! (`incremental_off`), through the chain with the preflight disabled
//! (`preflight_off`), and solving every query set directly
//! (`chain_off`). None of the chain, incrementality or the preflight
//! changes an answer, so all four reports of each sweep are asserted
//! identical; the interesting numbers are the SAT `solve()` call count,
//! the assumption-prefix reuse rate, the preflight kill fraction (share
//! of chain queries the lattice answers before any cache or solver
//! work), and the wall time.
//!
//! Emits `BENCH_solver.json` (a `symcosim-bench/1` document) into the
//! working directory and prints the same numbers to stdout. The
//! benchmark is informational (non-gating on speed): it exits non-zero
//! only if a chain-on report diverges from its chain-off twin.
//!
//! Run with: `cargo run --release -p symcosim-bench --bin solver`
//! Optional: `--paths N` bounds the explored paths per run (default 200,
//! which drains both spaces at limit 2); `--smoke` is a fast CI mode
//! (24 paths per run).

use std::time::Instant;

use symcosim_bench::BENCH_SCHEMA;
use symcosim_core::json::{self, JsonWriter};
use symcosim_core::{EngineKind, InstrConstraint, SessionConfig, VerifyReport, VerifySession};
use symcosim_isa::opcodes;

struct Measurement {
    wall_ms: u64,
    report: VerifyReport,
}

struct Sweep {
    name: &'static str,
    opcode: u32,
    chain_on: Measurement,
    chain_off: Measurement,
    incremental_off: Measurement,
    preflight_off: Measurement,
    solves_saved_pct: f64,
    wall_speedup: f64,
    incremental_speedup: f64,
    preflight_kill_pct: f64,
    preflight_speedup: f64,
}

const INSTR_LIMIT: u32 = 2;

fn sweep_config(
    opcode: u32,
    chain: bool,
    incremental: bool,
    preflight: bool,
    max_paths: usize,
) -> SessionConfig {
    let mut config = SessionConfig::rv32i_only();
    config.stop_at_first_mismatch = false;
    config.constraint = InstrConstraint::OnlyOpcode(opcode);
    config.instr_limit = INSTR_LIMIT;
    config.cycle_limit = 64 * u64::from(INSTR_LIMIT);
    config.max_paths = max_paths;
    config.engine = EngineKind::Fork;
    // Isolate feasibility solving: per-path test-vector emission re-solves
    // the full path condition on a fresh solver outside the chain, a cost
    // identical in all modes.
    config.emit_test_vectors = false;
    config.solver_chain = chain;
    config.incremental = incremental;
    config.preflight = preflight;
    config
}

fn run_once(
    opcode: u32,
    chain: bool,
    incremental: bool,
    preflight: bool,
    max_paths: usize,
) -> Measurement {
    let config = sweep_config(opcode, chain, incremental, preflight, max_paths);
    let start = Instant::now();
    let report = VerifySession::new(config)
        .expect("valid configuration")
        .run();
    Measurement {
        wall_ms: start.elapsed().as_millis() as u64,
        report,
    }
}

fn sweep(name: &'static str, opcode: u32, max_paths: usize) -> Sweep {
    let chain_off = run_once(opcode, false, true, true, max_paths);
    let incremental_off = run_once(opcode, true, false, true, max_paths);
    let preflight_off = run_once(opcode, true, true, false, max_paths);
    let chain_on = run_once(opcode, true, true, true, max_paths);

    // The chain and incremental solving only change how answers are
    // computed, never what they are: the serialised reports (findings,
    // paths, coverage) must match bit for bit across all three modes.
    assert_eq!(
        chain_on.report.to_json(),
        chain_off.report.to_json(),
        "chain-on report diverged from chain-off on the {name} sweep"
    );
    assert_eq!(
        chain_on.report.to_json(),
        incremental_off.report.to_json(),
        "incremental solving changed the report on the {name} sweep"
    );
    assert_eq!(
        chain_on.report.to_json(),
        preflight_off.report.to_json(),
        "the absint preflight changed the report on the {name} sweep"
    );

    let off_solves = chain_off.report.solver_stats.solves;
    let on_solves = chain_on.report.solver_stats.solves;
    let solves_saved_pct = if off_solves == 0 {
        0.0
    } else {
        100.0 * (off_solves.saturating_sub(on_solves)) as f64 / off_solves as f64
    };
    let wall_speedup = chain_off.wall_ms as f64 / (chain_on.wall_ms as f64).max(1.0);
    let incremental_speedup = incremental_off.wall_ms as f64 / (chain_on.wall_ms as f64).max(1.0);
    let on_chain = &chain_on.report.chain_stats;
    let preflight_kill_pct = if on_chain.queries == 0 {
        0.0
    } else {
        100.0 * on_chain.preflight_hits as f64 / on_chain.queries as f64
    };
    let preflight_speedup = preflight_off.wall_ms as f64 / (chain_on.wall_ms as f64).max(1.0);

    println!(
        "{name:<8} {} paths  chain off: {:>6} solves {:>7} ms   \
         chain on: {:>6} solves {:>7} ms   ({solves_saved_pct:.1}% fewer solves)",
        chain_on.report.total_paths(),
        off_solves,
        chain_off.wall_ms,
        on_solves,
        chain_on.wall_ms,
    );
    println!(
        "         incremental off: {:>7} ms   incremental on: {:>7} ms   \
         ({incremental_speedup:.2}x, {} prefix reuse hits)",
        incremental_off.wall_ms, chain_on.wall_ms, chain_on.report.chain_stats.prefix_reuse_hits,
    );
    println!(
        "         preflight off: {:>7} ms   preflight on: {:>7} ms   \
         ({preflight_kill_pct:.1}% of chain queries killed statically)",
        preflight_off.wall_ms, chain_on.wall_ms,
    );
    println!("         chain: {}", chain_on.report.chain_stats);

    Sweep {
        name,
        opcode,
        chain_on,
        chain_off,
        incremental_off,
        preflight_off,
        solves_saved_pct,
        wall_speedup,
        incremental_speedup,
        preflight_kill_pct,
        preflight_speedup,
    }
}

fn write_mode(w: &mut JsonWriter, name: &str, m: &Measurement) {
    w.object_field(name);
    w.number_field("wall_ms", m.wall_ms);
    w.number_field("paths", m.report.total_paths() as u64);
    w.number_field("findings", m.report.findings.len() as u64);
    w.number_field("solves", m.report.solver_stats.solves);
    w.number_field("conflicts", m.report.solver_stats.conflicts);
    w.number_field("restarts", m.report.solver_stats.restarts);
    w.number_field("db_reductions", m.report.solver_stats.db_reductions);
    w.number_field("learned_kept", m.report.solver_stats.learned_kept);
    w.number_field("cache_hits", m.report.query_cache.hits);
    w.number_field("cache_misses", m.report.query_cache.misses);
    let chain = &m.report.chain_stats;
    w.object_field("chain");
    w.number_field("queries", chain.queries);
    w.number_field("preflight_hits", chain.preflight_hits);
    w.number_field("slices", chain.slices);
    w.number_field("slice_hits", chain.slice_hits);
    w.number_field("core_hits", chain.core_hits);
    w.number_field("model_hits", chain.model_hits);
    w.number_field("solves", chain.solves);
    w.number_field("prefix_reuse_hits", chain.prefix_reuse_hits);
    w.number_field("max_slice", chain.max_slice);
    w.close_object();
    w.close_object();
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let max_paths = args
        .iter()
        .position(|a| a == "--paths")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 24 } else { 200 });

    println!(
        "solver-chain benchmark (instruction limit {INSTR_LIMIT}, up to \
         {max_paths} paths per run)\n"
    );
    let sweeps = [
        sweep("OP", opcodes::OP, max_paths),
        sweep("BRANCH", opcodes::BRANCH, max_paths),
    ];

    let mut w = JsonWriter::new();
    w.open_object();
    json::header(&mut w, BENCH_SCHEMA);
    w.string_field("bench", "solver");
    w.bool_field("smoke", smoke);
    w.object_field("config");
    w.number_field("instr_limit", u64::from(INSTR_LIMIT));
    w.number_field("max_paths", max_paths as u64);
    w.close_object();
    w.array_field("sweeps", sweeps.len(), |w, i| {
        let s = &sweeps[i];
        w.open_object();
        w.string_field("name", s.name);
        w.string_field("opcode", &format!("{:#04x}", s.opcode));
        write_mode(w, "chain_on", &s.chain_on);
        write_mode(w, "chain_off", &s.chain_off);
        write_mode(w, "incremental_off", &s.incremental_off);
        write_mode(w, "preflight_off", &s.preflight_off);
        w.float_field("solves_saved_pct", s.solves_saved_pct);
        w.float_field("wall_speedup", s.wall_speedup);
        w.float_field("incremental_speedup", s.incremental_speedup);
        w.float_field("preflight_kill_pct", s.preflight_kill_pct);
        w.float_field("preflight_speedup", s.preflight_speedup);
        w.bool_field("identical_reports", true);
        w.close_object();
    });
    w.close_object();
    std::fs::write("BENCH_solver.json", w.finish()).expect("write BENCH_solver.json");
    println!("\nwrote BENCH_solver.json");
}
