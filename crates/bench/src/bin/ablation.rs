//! Regenerates the sliced-symbolic-registers ablation of Section V-A.
//!
//! The paper argues two symbolic registers suffice for RV32I (no
//! instruction has more than two source registers) and reports that a
//! *fully* symbolic register file blows the verification up from hours to
//! "more than 30 days". This binary sweeps the symbolic window width and
//! measures the cost of detecting the same injected error, plus the cost
//! of a fixed slice of the clean exploration, so the blow-up curve is
//! directly visible.
//!
//! Run with: `cargo run --release -p symcosim-bench --bin ablation`

use std::time::Instant;

use symcosim_bench::RunOpts;
use symcosim_core::{SessionConfig, VerifySession};
use symcosim_microrv32::InjectedError;

fn main() {
    let opts = RunOpts::from_args();
    let windows = [0usize, 1, 2, 4, 8, 16, 31];

    println!("sliced symbolic registers ablation — detecting E4 (SUB stuck-at-0 MSB)\n");
    println!(
        "{:<18} {:>7} {:>8} {:>12} {:>10}",
        "symbolic window", "found", "paths", "instructions", "time [s]"
    );
    println!("{}", "-".repeat(60));

    for window in windows {
        let mut config = SessionConfig::rv32i_only();
        config.inject = Some(InjectedError::E4SubStuckAt0Msb);
        config.symbolic_regs = window;
        opts.apply(&mut config);
        let start = Instant::now();
        let report = VerifySession::new(config)
            .expect("valid configuration")
            .run();
        println!(
            "{:<18} {:>7} {:>8} {:>12} {:>10}",
            format!("x1..x{window}"),
            if report.first_mismatch().is_some() {
                "yes"
            } else {
                "no"
            },
            report.total_paths(),
            report.instructions_executed,
            symcosim_bench::fmt_secs(start.elapsed()),
        );
    }

    println!(
        "\nNote: window 0 leaves all registers at zero — value-dependent faults in\n\
         two-source instructions (like E4's MSB fault, which needs operands whose\n\
         difference has bit 31 set) can only be reached through loaded memory\n\
         values, and windows larger than 2 only add state-space without adding\n\
         coverage for RV32I, mirroring the paper's argument."
    );
}
