//! Regenerates the exemplary comprehensive exploration of Section V-A:
//! an unrestricted (here: path-budgeted) run over the full RV32I+Zicsr
//! space against the shipped models, reporting completely and partially
//! explored paths, executed instructions and generated test vectors.
//!
//! The paper's run executed ~1.0e8 instructions over 6.8 days and explored
//! 848 complete plus 408 partial paths, generating 1256 test vectors; this
//! binary reproduces the *shape* (hundreds of paths, a complete/partial
//! split dominated by mismatch and limit terminations, one test vector per
//! path) at laptop scale.
//!
//! Run with: `cargo run --release -p symcosim-bench --bin longrun`
//! Optional: `--jobs N` explores on N worker threads (note the path
//! budget makes truncated runs scheduling-dependent: the *set* of paths
//! inside the budget varies, each path's result does not) and
//! `--progress-json` streams structured progress events on stderr.

use std::time::Instant;

use symcosim_bench::{run_session, RunOpts};
use symcosim_core::{SessionConfig, VerifySession};

fn main() {
    let opts = RunOpts::from_args();
    let budget: usize = std::env::args()
        .skip_while(|a| a != "--paths")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(600);

    let mut config = SessionConfig::table1();
    config.instr_limit = 2;
    config.cycle_limit = 128;
    config.max_paths = budget;
    opts.apply(&mut config);

    println!("comprehensive exploration (instruction limit 2, path budget {budget})\n");
    let start = Instant::now();
    let report = run_session(
        VerifySession::new(config).expect("valid configuration"),
        opts,
    );
    let elapsed = start.elapsed();

    println!(
        "runtime                     : {} s",
        symcosim_bench::fmt_secs(elapsed)
    );
    println!(
        "executed instructions       : {}",
        report.instructions_executed
    );
    println!("core clock cycles           : {}", report.cycles);
    println!("paths explored completely   : {}", report.paths_complete);
    println!("paths explored partially    : {}", report.paths_partial);
    println!("test vectors generated      : {}", report.test_vectors);
    println!("unique findings             : {}", report.findings.len());
    println!("exploration truncated       : {}", report.truncated);
    println!();
    for finding in &report.findings {
        println!("  {finding}");
    }
}
