//! Regenerates Table II: for every injected error E0–E9 and instruction
//! limits 1 and 2, whether the symbolic co-simulation finds it, plus the
//! executed instructions, time, partial paths and completed paths.
//!
//! Run with: `cargo run --release -p symcosim-bench --bin table2`
//! Optional: `--jobs N` explores each error's paths on N worker threads
//! (identical results, shorter wall-clock on multi-core hosts) and
//! `--progress-json` streams structured progress events on stderr.

use std::time::Instant;

use symcosim_bench::{fmt_secs, median, run_session, RunOpts};
use symcosim_core::{SessionConfig, VerifySession};
use symcosim_microrv32::InjectedError;

struct Row {
    found: bool,
    instructions: u64,
    millis: u64,
    partial: usize,
    complete: usize,
}

fn run_one(error: InjectedError, instr_limit: u32, opts: RunOpts) -> Row {
    let mut config = SessionConfig::rv32i_only();
    config.inject = Some(error);
    config.instr_limit = instr_limit;
    config.cycle_limit = 64 * instr_limit as u64;
    if instr_limit > 1 {
        // Depth-first search degenerates at higher instruction limits: it
        // exhausts the full second-instruction subtree of every early
        // first-instruction class before reaching later opcodes (the
        // paper's limit-2 runs show the same blow-up, up to 22k seconds).
        // Breadth-first scheduling reaches every opcode class early while
        // preserving completeness.
        config.strategy = symcosim_symex::SearchStrategy::Bfs;
    }
    opts.apply(&mut config);
    let start = Instant::now();
    let session = VerifySession::new(config).expect("valid configuration");
    let report = run_session(session, opts);
    Row {
        found: report.first_mismatch().is_some(),
        instructions: report.instructions_executed,
        millis: start.elapsed().as_millis() as u64,
        partial: report.paths_partial,
        complete: report.paths_complete,
    }
}

fn main() {
    let opts = RunOpts::from_args();
    println!("Table II — injected error results (RV32I only, CSR instructions blocked)\n");
    println!(
        "{:<6} | {:^44} | {:^44}",
        "", "Instruction Limit: 1", "Instruction Limit: 2"
    );
    println!(
        "{:<6} | {:>6} {:>12} {:>8} {:>7} {:>6} | {:>6} {:>12} {:>8} {:>7} {:>6}",
        "Error",
        "Result",
        "#Exec.Instr.",
        "Time[s]",
        "Partial",
        "Paths",
        "Result",
        "#Exec.Instr.",
        "Time[s]",
        "Partial",
        "Paths"
    );
    println!("{}", "-".repeat(110));

    let mut sums = [[0u64; 4]; 2];
    let mut all_found = [true; 2];
    let mut instr_series = [Vec::new(), Vec::new()];
    let mut time_series = [Vec::new(), Vec::new()];
    let mut partial_series = [Vec::new(), Vec::new()];
    let mut path_series = [Vec::new(), Vec::new()];

    for error in InjectedError::ALL {
        let rows = [run_one(error, 1, opts), run_one(error, 2, opts)];
        print!("{:<6}", error.id());
        for (i, row) in rows.iter().enumerate() {
            print!(
                " | {:>6} {:>12} {:>8} {:>7} {:>6}",
                if row.found { "yes" } else { "no" },
                row.instructions,
                fmt_secs(std::time::Duration::from_millis(row.millis)),
                row.partial,
                row.complete,
            );
            sums[i][0] += row.instructions;
            sums[i][1] += row.millis;
            sums[i][2] += row.partial as u64;
            sums[i][3] += row.complete as u64;
            all_found[i] &= row.found;
            instr_series[i].push(row.instructions);
            time_series[i].push(row.millis);
            partial_series[i].push(row.partial as u64);
            path_series[i].push(row.complete as u64);
        }
        println!();
    }

    println!("{}", "-".repeat(110));
    print!("Sum:  ");
    for (i, sums) in sums.iter().enumerate() {
        print!(
            " | {:>6} {:>12} {:>8} {:>7} {:>6}",
            if all_found[i] { "10 yes" } else { "!" },
            sums[0],
            fmt_secs(std::time::Duration::from_millis(sums[1])),
            sums[2],
            sums[3],
        );
    }
    println!();
    print!("Median");
    for i in 0..2 {
        print!(
            " | {:>6} {:>12} {:>8} {:>7} {:>6}",
            "",
            median(&mut instr_series[i]),
            fmt_secs(std::time::Duration::from_millis(median(
                &mut time_series[i]
            ))),
            median(&mut partial_series[i]),
            median(&mut path_series[i]),
        );
    }
    println!();
    println!(
        "\nShape checks vs the paper: every error found under both limits; \
         limit 1 is cheaper than limit 2 in total time."
    );
}
