//! Paths-per-second microbenchmark of the two path engines.
//!
//! Runs the same frontier-drained exploration — corrected models,
//! generation restricted to the OP major opcode — once with the
//! re-execution engine and once with the fork engine, and reports the
//! throughput ratio. At instruction limit `d` the re-execution engine
//! re-runs up to `d - 1` instructions for every sibling forked at the
//! last decision level, while the fork engine resumes from a snapshot
//! taken at the enclosing instruction boundary, so the fork advantage
//! grows with the instruction limit.
//!
//! Both engines issue the *identical* sequence of solver queries (the
//! printed solve counts match), so the measured gap is purely
//! replay-versus-snapshot overhead. The feasibility-query cache narrows
//! that gap: a replayed prefix answers its branch decisions from the
//! cache instead of the SAT solver, which makes re-execution far cheaper
//! than it would be uncached and keeps the ratio modest in shallow,
//! solver-dominated regimes.
//!
//! Emits `BENCH_pathengine.json` (a `symcosim-bench/1` document) into
//! the working directory and prints the same numbers to stdout. The
//! benchmark is informational (non-gating): it always exits 0, whatever
//! the measured ratio.
//!
//! Run with: `cargo run --release -p symcosim-bench --bin pathengine`
//! Optional: `--paths N` bounds the explored paths per engine (default
//! 200; the OP space at limit 2 exhausts below that, so the default
//! measures the full space); `--limit N` sets the instruction limit of
//! the primary comparison (default 2); `--smoke` is a fast CI mode
//! (24 paths, primary row only). A full run also measures a deeper
//! limit-4 row to show how the ratio scales with path depth.

use std::time::Instant;

use symcosim_bench::BENCH_SCHEMA;
use symcosim_core::json::{self, JsonWriter};
use symcosim_core::{EngineKind, InstrConstraint, SessionConfig, VerifySession};
use symcosim_isa::opcodes;

struct Measurement {
    kind: EngineKind,
    paths: usize,
    findings: usize,
    wall_ms: u64,
    paths_per_sec: f64,
}

fn bench_config(max_paths: usize, instr_limit: u32) -> SessionConfig {
    let mut config = SessionConfig::rv32i_only();
    config.stop_at_first_mismatch = false;
    config.constraint = InstrConstraint::OnlyOpcode(opcodes::OP);
    config.instr_limit = instr_limit;
    config.cycle_limit = 64 * instr_limit as u64;
    config.max_paths = max_paths;
    // Isolate path-engine throughput: per-path test-vector emission
    // re-solves the full path condition on a fresh solver, a cost that is
    // identical in both engines and would dilute the measured ratio.
    config.emit_test_vectors = false;
    config
}

fn run_engine(kind: EngineKind, max_paths: usize, instr_limit: u32) -> Measurement {
    let mut config = bench_config(max_paths, instr_limit);
    config.engine = kind;
    let start = Instant::now();
    let report = VerifySession::new(config)
        .expect("valid configuration")
        .run();
    let wall = start.elapsed();
    let paths = report.total_paths();
    eprintln!(
        "  [{kind} @ limit {instr_limit}] solver: {} solves, {} conflicts; \
         cache: {} hits, {} misses",
        report.solver_stats.solves,
        report.solver_stats.conflicts,
        report.query_cache.hits,
        report.query_cache.misses
    );
    Measurement {
        kind,
        paths,
        findings: report.findings.len(),
        wall_ms: wall.as_millis() as u64,
        paths_per_sec: paths as f64 / wall.as_secs_f64().max(1e-9),
    }
}

/// Runs both engines at one instruction limit and returns
/// `(reexec, fork, speedup)` after checking they explored the same space.
fn compare(max_paths: usize, instr_limit: u32) -> (Measurement, Measurement, f64) {
    let reexec = run_engine(EngineKind::Reexec, max_paths, instr_limit);
    let fork = run_engine(EngineKind::Fork, max_paths, instr_limit);
    assert_eq!(
        (reexec.paths, reexec.findings),
        (fork.paths, fork.findings),
        "the engines must explore the same path set"
    );
    for m in [&reexec, &fork] {
        println!(
            "{:<8} limit {:>2} {:>6} paths  {:>8} ms  {:>10.2} paths/s",
            m.kind.to_string(),
            instr_limit,
            m.paths,
            m.wall_ms,
            m.paths_per_sec
        );
    }
    let speedup = fork.paths_per_sec / reexec.paths_per_sec.max(1e-9);
    println!("fork/reexec speedup at limit {instr_limit}: {speedup:.2}x\n");
    (reexec, fork, speedup)
}

fn write_measurement(w: &mut JsonWriter, name: &str, m: &Measurement) {
    w.object_field(name);
    w.number_field("paths", m.paths as u64);
    w.number_field("findings", m.findings as u64);
    w.number_field("wall_ms", m.wall_ms);
    w.float_field("paths_per_sec", m.paths_per_sec);
    w.close_object();
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let max_paths = args
        .iter()
        .position(|a| a == "--paths")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 24 } else { 200 });
    let instr_limit = args
        .iter()
        .position(|a| a == "--limit")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);

    println!(
        "path-engine throughput (OnlyOpcode(OP), instruction limit \
         {instr_limit}, up to {max_paths} paths per engine)\n"
    );
    let (reexec, fork, speedup) = compare(max_paths, instr_limit);

    let deep = if smoke {
        None
    } else {
        let deep_limit = 4;
        let (r, f, s) = compare(max_paths, deep_limit);
        Some((deep_limit, r, f, s))
    };

    let mut w = JsonWriter::new();
    w.open_object();
    json::header(&mut w, BENCH_SCHEMA);
    w.string_field("bench", "pathengine");
    w.bool_field("smoke", smoke);
    w.object_field("config");
    w.string_field("constraint", "OnlyOpcode(OP)");
    w.number_field("instr_limit", u64::from(instr_limit));
    w.number_field("max_paths", max_paths as u64);
    w.close_object();
    write_measurement(&mut w, "reexec", &reexec);
    write_measurement(&mut w, "fork", &fork);
    w.float_field("speedup", speedup);
    if let Some((limit, r, f, s)) = &deep {
        w.object_field("deep");
        w.number_field("instr_limit", u64::from(*limit));
        write_measurement(&mut w, "reexec", r);
        write_measurement(&mut w, "fork", f);
        w.float_field("speedup", *s);
        w.close_object();
    }
    w.close_object();
    std::fs::write("BENCH_pathengine.json", w.finish()).expect("write BENCH_pathengine.json");
    println!("wrote BENCH_pathengine.json");
}
