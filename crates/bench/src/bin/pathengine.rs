//! Paths-per-second microbenchmark of the two path engines, plus the
//! state-merging on/off dimension of the fork engine.
//!
//! **Engine comparison** — runs the same frontier-drained exploration —
//! corrected models, generation restricted to the OP major opcode — once
//! with the re-execution engine and once with the fork engine (merging
//! off), and reports the throughput ratio. At instruction limit `d` the
//! re-execution engine re-runs up to `d - 1` instructions for every
//! sibling forked at the last decision level, while the fork engine
//! resumes from a snapshot taken at the enclosing instruction boundary,
//! so the fork advantage grows with the instruction limit. Both engines
//! issue the *identical* sequence of solver queries (the printed solve
//! counts match), so the measured gap is purely replay-versus-snapshot
//! overhead.
//!
//! **Merge dimension** — runs the fork engine over the BRANCH opcode
//! space (where the decode structure makes sibling flavours rejoin at
//! the post-instruction state) with `SessionConfig::merge` off and on,
//! at instruction limits 2 and 4. The reports are byte-identical; the
//! dimension measures how many *physical* paths merging saves (a merged
//! path representing k sibling arms executes once) and the resulting
//! throughput in path records per second.
//!
//! Any truncated row is explicit: its JSON carries `truncated: true`
//! and `paths_dropped` (queued jobs never run — a lower bound, since an
//! unexplored job can fork further), and a note goes to stderr. There
//! are no silent caps: the default path budget (40000) drains every
//! space this benchmark sweeps (OP at limit 4 is 18888 records, BRANCH
//! at limit 4 is 37573).
//!
//! Emits `BENCH_pathengine.json` (a `symcosim-bench/1` document) into
//! the working directory and prints the same numbers to stdout. The
//! benchmark is informational (non-gating): it always exits 0, whatever
//! the measured ratios.
//!
//! Run with: `cargo run --release -p symcosim-bench --bin pathengine`
//! Optional: `--paths N` bounds the explored paths per run (default
//! 40000, which drains both the OP and BRANCH spaces at limit 4);
//! `--limit N` sets the instruction limit of the primary engine
//! comparison (default 2); `--smoke` is a fast CI mode (24 paths,
//! primary rows only — explicitly truncated).

use std::time::Instant;

use symcosim_bench::BENCH_SCHEMA;
use symcosim_core::json::{self, JsonWriter};
use symcosim_core::{EngineKind, InstrConstraint, SessionConfig, VerifySession};
use symcosim_isa::opcodes;

struct Measurement {
    label: String,
    paths: usize,
    physical_paths: usize,
    merged_paths: usize,
    findings: usize,
    truncated: bool,
    paths_dropped: usize,
    wall_ms: u64,
    paths_per_sec: f64,
}

fn bench_config(opcode: u32, max_paths: usize, instr_limit: u32) -> SessionConfig {
    let mut config = SessionConfig::rv32i_only();
    config.stop_at_first_mismatch = false;
    config.constraint = InstrConstraint::OnlyOpcode(opcode);
    config.instr_limit = instr_limit;
    config.cycle_limit = 64 * instr_limit as u64;
    config.max_paths = max_paths;
    // Isolate path-engine throughput: per-path test-vector emission
    // re-solves the full path condition on a fresh solver, a cost that is
    // identical in every engine and merge mode and would dilute the
    // measured ratios.
    config.emit_test_vectors = false;
    config
}

fn run_config(label: &str, config: SessionConfig, instr_limit: u32) -> Measurement {
    let start = Instant::now();
    let report = VerifySession::new(config)
        .expect("valid configuration")
        .run();
    let wall = start.elapsed();
    let paths = report.total_paths();
    eprintln!(
        "  [{label} @ limit {instr_limit}] solver: {} solves, {} conflicts; \
         cache: {} hits, {} misses",
        report.solver_stats.solves,
        report.solver_stats.conflicts,
        report.query_cache.hits,
        report.query_cache.misses
    );
    if report.truncated {
        eprintln!(
            "  note: [{label} @ limit {instr_limit}] truncated at {paths} path \
             records with {} queued jobs dropped (at least; an unexplored job \
             can fork further) — pass a larger --paths for the full space",
            report.paths_dropped
        );
    }
    Measurement {
        label: label.to_string(),
        paths,
        physical_paths: paths - report.merged_paths,
        merged_paths: report.merged_paths,
        findings: report.findings.len(),
        truncated: report.truncated,
        paths_dropped: report.paths_dropped,
        wall_ms: wall.as_millis() as u64,
        paths_per_sec: paths as f64 / wall.as_secs_f64().max(1e-9),
    }
}

fn run_engine(kind: EngineKind, max_paths: usize, instr_limit: u32) -> Measurement {
    let mut config = bench_config(opcodes::OP, max_paths, instr_limit);
    config.engine = kind;
    // Merging would let the fork engine skip solver queries the
    // re-execution engine must issue; keep the engine comparison a pure
    // replay-versus-snapshot measurement.
    config.merge = false;
    run_config(&kind.to_string(), config, instr_limit)
}

fn print_row(m: &Measurement, instr_limit: u32) {
    println!(
        "{:<9} limit {:>2} {:>6} paths ({:>6} physical)  {:>8} ms  \
         {:>10.2} paths/s{}",
        m.label,
        instr_limit,
        m.paths,
        m.physical_paths,
        m.wall_ms,
        m.paths_per_sec,
        if m.truncated { "  [truncated]" } else { "" }
    );
}

/// Runs both engines at one instruction limit and returns
/// `(reexec, fork, speedup)` after checking they explored the same space.
fn compare(max_paths: usize, instr_limit: u32) -> (Measurement, Measurement, f64) {
    let reexec = run_engine(EngineKind::Reexec, max_paths, instr_limit);
    let fork = run_engine(EngineKind::Fork, max_paths, instr_limit);
    assert_eq!(
        (reexec.paths, reexec.findings),
        (fork.paths, fork.findings),
        "the engines must explore the same path set"
    );
    for m in [&reexec, &fork] {
        print_row(m, instr_limit);
    }
    let speedup = fork.paths_per_sec / reexec.paths_per_sec.max(1e-9);
    println!("fork/reexec speedup at limit {instr_limit}: {speedup:.2}x\n");
    (reexec, fork, speedup)
}

/// Runs the fork engine over the BRANCH space with merging off and on and
/// returns `(off, on, physical_reduction)`.
fn compare_merge(max_paths: usize, instr_limit: u32) -> (Measurement, Measurement, f64) {
    let mut off_config = bench_config(opcodes::BRANCH, max_paths, instr_limit);
    off_config.engine = EngineKind::Fork;
    off_config.merge = false;
    let off = run_config("merge_off", off_config, instr_limit);
    let mut on_config = bench_config(opcodes::BRANCH, max_paths, instr_limit);
    on_config.engine = EngineKind::Fork;
    on_config.merge = true;
    let on = run_config("merge_on", on_config, instr_limit);
    // Byte-identity of the record set only holds for drained runs: under
    // a path cap, merging reaches a different prefix of the space (a
    // merged path records every arm it represents).
    if !off.truncated && !on.truncated {
        assert_eq!(
            (off.paths, off.findings),
            (on.paths, on.findings),
            "merging must reproduce the identical path-record set"
        );
    }
    for m in [&off, &on] {
        print_row(m, instr_limit);
    }
    let reduction = off.physical_paths as f64 / on.physical_paths.max(1) as f64;
    println!(
        "merge physical path reduction at limit {instr_limit}: {reduction:.2}x \
         ({} -> {} physical paths for {} records)\n",
        off.physical_paths, on.physical_paths, on.paths
    );
    (off, on, reduction)
}

fn write_measurement(w: &mut JsonWriter, name: &str, m: &Measurement) {
    w.object_field(name);
    w.number_field("paths", m.paths as u64);
    w.number_field("physical_paths", m.physical_paths as u64);
    w.number_field("merged_paths", m.merged_paths as u64);
    w.number_field("findings", m.findings as u64);
    w.bool_field("truncated", m.truncated);
    w.number_field("paths_dropped", m.paths_dropped as u64);
    w.number_field("wall_ms", m.wall_ms);
    w.float_field("paths_per_sec", m.paths_per_sec);
    w.close_object();
}

fn write_merge_row(
    w: &mut JsonWriter,
    name: &str,
    limit: u32,
    off: &Measurement,
    on: &Measurement,
    reduction: f64,
) {
    w.object_field(name);
    w.number_field("instr_limit", u64::from(limit));
    write_measurement(w, "merge_off", off);
    write_measurement(w, "merge_on", on);
    w.float_field("physical_reduction", reduction);
    w.close_object();
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let max_paths = args
        .iter()
        .position(|a| a == "--paths")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 24 } else { 40_000 });
    let instr_limit = args
        .iter()
        .position(|a| a == "--limit")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);

    println!(
        "path-engine throughput (OnlyOpcode(OP), instruction limit \
         {instr_limit}, up to {max_paths} paths per run)\n"
    );
    let (reexec, fork, speedup) = compare(max_paths, instr_limit);

    let deep = if smoke {
        None
    } else {
        let deep_limit = 4;
        let (r, f, s) = compare(max_paths, deep_limit);
        Some((deep_limit, r, f, s))
    };

    println!(
        "state merging (OnlyOpcode(BRANCH), fork engine, up to {max_paths} \
         paths per run)\n"
    );
    let merge_shallow = compare_merge(max_paths, 2);
    let merge_deep = if smoke {
        None
    } else {
        let (off, on, reduction) = compare_merge(max_paths, 4);
        Some((4u32, off, on, reduction))
    };

    let mut w = JsonWriter::new();
    w.open_object();
    json::header(&mut w, BENCH_SCHEMA);
    w.string_field("bench", "pathengine");
    w.bool_field("smoke", smoke);
    w.object_field("config");
    w.string_field("constraint", "OnlyOpcode(OP)");
    w.number_field("instr_limit", u64::from(instr_limit));
    w.number_field("max_paths", max_paths as u64);
    w.close_object();
    write_measurement(&mut w, "reexec", &reexec);
    write_measurement(&mut w, "fork", &fork);
    w.float_field("speedup", speedup);
    if let Some((limit, r, f, s)) = &deep {
        w.object_field("deep");
        w.number_field("instr_limit", u64::from(*limit));
        write_measurement(&mut w, "reexec", r);
        write_measurement(&mut w, "fork", f);
        w.float_field("speedup", *s);
        w.close_object();
    }
    w.object_field("merge");
    w.string_field("constraint", "OnlyOpcode(BRANCH)");
    {
        let (off, on, reduction) = &merge_shallow;
        write_merge_row(&mut w, "shallow", 2, off, on, *reduction);
    }
    if let Some((limit, off, on, reduction)) = &merge_deep {
        write_merge_row(&mut w, "deep", *limit, off, on, *reduction);
    }
    w.close_object();
    w.close_object();
    std::fs::write("BENCH_pathengine.json", w.finish()).expect("write BENCH_pathengine.json");
    println!("wrote BENCH_pathengine.json");
}
