//! Regenerates Table I: co-simulation results on the shipped MicroRV32
//! and RISC-V VP — every error (E), ISS error (E*) and implementation
//! mismatch (M), with a triggering example instruction.
//!
//! The catalogue is assembled from two explorations, mirroring how the
//! paper's findings accumulate over a long-running campaign:
//!
//! 1. the full RV32I+Zicsr space with instruction limit 1 (all findings
//!    observable within a single instruction), and
//! 2. a targeted sweep over the CSRs the VP implements beyond MicroRV32
//!    with instruction limit 2, surfacing the write-then-read mismatches
//!    (`mscratch`, `mcounteren`, the HPM ranges).
//!
//! Run with: `cargo run --release -p symcosim-bench --bin table1`
//! Optional: `--jobs N` explores each phase on N worker threads
//! (identical catalogue, shorter wall-clock on multi-core hosts) and
//! `--progress-json` streams structured progress events on stderr.

use std::time::Instant;

use symcosim_bench::{run_session, RunOpts};
use symcosim_core::{
    Finding, FindingClass, InstrConstraint, SessionConfig, VerifyReport, VerifySession,
};

fn run_phase(mut config: SessionConfig, opts: RunOpts) -> VerifyReport {
    opts.apply(&mut config);
    run_session(
        VerifySession::new(config).expect("valid configuration"),
        opts,
    )
}

fn main() {
    let opts = RunOpts::from_args();
    let start = Instant::now();

    // Phase 1: full instruction space, one instruction per path.
    let phase1 = run_phase(SessionConfig::table1(), opts);

    // Phase 2: extended-CSR space, two instructions per path.
    let mut config = SessionConfig::table1();
    config.instr_limit = 2;
    config.cycle_limit = 128;
    config.constraint = InstrConstraint::ExtendedCsrOnly;
    let phase2 = run_phase(config, opts);

    let elapsed = start.elapsed();

    let mut findings: Vec<Finding> = Vec::new();
    for finding in phase1.findings.iter().chain(&phase2.findings) {
        if !findings
            .iter()
            .any(|f| f.dedup_key() == finding.dedup_key())
        {
            findings.push(finding.clone());
        }
    }

    println!("Table I — co-simulation results (R): errors (E) and mismatches (M)");
    println!("DUT: MicroRV32 (shipped behaviours), reference: RISC-V VP ISS (shipped)\n");
    println!(
        "{:<18} | {:<34} | {:<36} | R",
        "Instruction & CSR", "Example", "Description"
    );
    println!("{}", "-".repeat(100));
    for finding in &findings {
        println!(
            "{:<18} | {:<34} | {:<36} | {}",
            finding.subject,
            finding.example.as_deref().unwrap_or("-"),
            finding.label,
            finding.class,
        );
    }

    let count = |class: FindingClass| findings.iter().filter(|f| f.class == class).count();
    println!("{}", "-".repeat(100));
    println!(
        "{} findings: {} RTL errors (E), {} ISS errors (E*), {} mismatches (M)",
        findings.len(),
        count(FindingClass::RtlError),
        count(FindingClass::IssError),
        count(FindingClass::ImplMismatch),
    );
    println!(
        "exploration: {} paths ({} complete, {} partial), {} executed instructions, \
         {} test vectors, {} s",
        phase1.total_paths() + phase2.total_paths(),
        phase1.paths_complete + phase2.paths_complete,
        phase1.paths_partial + phase2.paths_partial,
        phase1.instructions_executed + phase2.instructions_executed,
        phase1.test_vectors + phase2.test_vectors,
        symcosim_bench::fmt_secs(elapsed),
    );
}
