//! The core's RVFI stream satisfies the riscv-formal-style trace
//! properties over whole assembled programs.

use symcosim_isa::asm::assemble;
use symcosim_microrv32::{Core, CoreConfig};
use symcosim_rtl::{DBusResponse, IBusResponse, RvfiMonitor, RvfiRecord};
use symcosim_symex::ConcreteDomain;

/// Drives the core over `program`, returning the retirement trace.
fn run_program(config: CoreConfig, program: &[u32], max_retires: usize) -> Vec<RvfiRecord<u32>> {
    let mut dom = ConcreteDomain::new();
    let mut core = Core::new(&mut dom, config);
    let mut dmem = vec![0u32; 64];
    let mut pending_fetch: Option<u32> = None;
    let mut pending_data: Option<u32> = None;
    let mut trace = Vec::new();

    for _ in 0..max_retires * 16 {
        let ibus_rsp = IBusResponse {
            instruction_ready: pending_fetch.is_some(),
            instruction: pending_fetch.take().unwrap_or(0),
        };
        let dbus_rsp = DBusResponse {
            data_ready: pending_data.is_some(),
            read_data: pending_data.take().unwrap_or(0),
        };
        let out = core.cycle(&mut dom, ibus_rsp, dbus_rsp);
        if out.ibus.fetch_enable {
            let index = (out.ibus.address as usize / 4) % program.len();
            pending_fetch = Some(program[index]);
        }
        if out.dbus.enable {
            let index = (out.dbus.address as usize / 4) % dmem.len();
            if out.dbus.write {
                let mut word = dmem[index];
                for lane in 0..4 {
                    if out.dbus.strobe.lanes() & (1 << lane) != 0 {
                        let mask = 0xffu32 << (lane * 8);
                        word = (word & !mask) | (out.dbus.write_data & mask);
                    }
                }
                dmem[index] = word;
                pending_data = Some(0);
            } else {
                pending_data = Some(dmem[index]);
            }
        }
        if let Some(record) = out.rvfi {
            trace.push(record);
            if trace.len() >= max_retires {
                break;
            }
        }
    }
    trace
}

fn assert_trace_clean(trace: &[RvfiRecord<u32>]) {
    let mut monitor = RvfiMonitor::new();
    for record in trace {
        let violations = monitor.check(record);
        assert!(
            violations.is_empty(),
            "record {record:?} violates: {violations:?}"
        );
    }
}

#[test]
fn loop_program_trace_is_consistent() {
    let program = assemble(
        r"
        start:
            li   x1, 5
            li   x2, 0
        loop:
            add  x2, x2, x1
            addi x1, x1, -1
            bnez x1, loop
            ebreak
        ",
    )
    .expect("valid program");
    let trace = run_program(CoreConfig::fixed(), &program, 18);
    assert_eq!(trace.len(), 18, "2 setup + 5×3 loop + ebreak");
    assert_trace_clean(&trace);
    // The ebreak record traps with the breakpoint cause.
    let last = trace.last().expect("non-empty");
    assert!(last.trap);
    assert_eq!(last.trap_cause, Some(3));
}

#[test]
fn memory_program_trace_is_consistent() {
    let program = assemble(
        r"
            li   x1, 0x40
            li   x2, -2
            sw   x2, 0(x1)
            lb   x3, 1(x1)
            lhu  x4, 2(x1)
            lw   x5, 0(x1)
            ebreak
        ",
    )
    .expect("valid program");
    let trace = run_program(CoreConfig::fixed(), &program, 7);
    assert_trace_clean(&trace);
}

#[test]
fn trapping_trace_stays_consistent_across_the_trap() {
    // The shipped core traps on WFI; the monitor must accept the
    // trap-redirected PC chain (pc_wdata = mtvec = 0).
    let program = assemble("nop\nwfi\nnop\nebreak").expect("valid program");
    let trace = run_program(CoreConfig::microrv32_v1(), &program, 4);
    assert_trace_clean(&trace);
    assert!(trace[1].trap, "WFI traps on the shipped core");
    assert_eq!(trace[1].pc_wdata, 0, "redirected to the reset mtvec");
    assert_eq!(trace[2].pc_rdata, 0, "chain continues at the trap vector");
}

#[test]
fn shipped_and_fixed_cores_produce_equal_traces_on_bug_free_programs() {
    let program = assemble(
        r"
            li   x1, 7
            slli x2, x1, 4
            srai x3, x2, 2
            xor  x4, x2, x3
            sltu x5, x3, x4
            ebreak
        ",
    )
    .expect("valid program");
    let shipped = run_program(CoreConfig::microrv32_v1(), &program, 6);
    let fixed = run_program(CoreConfig::fixed(), &program, 6);
    assert_eq!(shipped, fixed, "configs only differ on the Table I surface");
}
