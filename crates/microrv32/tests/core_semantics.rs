//! Cycle-level behavioural tests for the core (concrete domain).

use symcosim_isa::{encode, BranchKind, CsrOp, Instr, LoadKind, OpKind, Reg, StoreKind, Trap};
use symcosim_microrv32::{Core, CoreConfig, InjectedError};
use symcosim_rtl::{DBusResponse, IBusResponse, RvfiRecord};
use symcosim_symex::ConcreteDomain;

type Dom = ConcreteDomain;

/// A concrete testbench: instruction ROM + strobe-aware data RAM.
struct Bench {
    dom: Dom,
    core: Core<Dom>,
    imem: Vec<u32>,
    dmem: Vec<u32>,
    pending_fetch: Option<u32>,
    pending_data: Option<u32>,
}

impl Bench {
    fn new(config: CoreConfig) -> Bench {
        let mut dom = Dom::new();
        let core = Core::new(&mut dom, config);
        Bench {
            dom,
            core,
            imem: Vec::new(),
            dmem: vec![0; 64],
            pending_fetch: None,
            pending_data: None,
        }
    }

    fn with_error(config: CoreConfig, error: InjectedError) -> Bench {
        let mut bench = Bench::new(config.clone());
        bench.core = Core::with_injected_error(&mut bench.dom, config, error);
        bench
    }

    fn load_program(&mut self, instrs: &[Instr]) {
        self.imem = instrs.iter().map(encode).collect();
    }

    /// Clocks until the next retirement (bounded).
    fn step_instruction(&mut self) -> RvfiRecord<u32> {
        for _ in 0..64 {
            let ibus_rsp = IBusResponse {
                instruction_ready: self.pending_fetch.is_some(),
                instruction: self.pending_fetch.take().unwrap_or(0),
            };
            let dbus_rsp = DBusResponse {
                data_ready: self.pending_data.is_some(),
                read_data: self.pending_data.take().unwrap_or(0),
            };
            let out = self.core.cycle(&mut self.dom, ibus_rsp, dbus_rsp);
            if out.ibus.fetch_enable {
                let index = (out.ibus.address as usize / 4) % self.imem.len().max(1);
                self.pending_fetch = Some(*self.imem.get(index).unwrap_or(&0));
            }
            if out.dbus.enable {
                let index = (out.dbus.address as usize / 4) % self.dmem.len();
                if out.dbus.write {
                    let mut word = self.dmem[index];
                    for lane in 0..4 {
                        if out.dbus.strobe.lanes() & (1 << lane) != 0 {
                            let mask = 0xffu32 << (lane * 8);
                            word = (word & !mask) | (out.dbus.write_data & mask);
                        }
                    }
                    self.dmem[index] = word;
                    self.pending_data = Some(0);
                } else {
                    self.pending_data = Some(self.dmem[index]);
                }
            }
            if let Some(rvfi) = out.rvfi {
                return rvfi;
            }
        }
        panic!("core did not retire within 64 cycles");
    }

    fn reg(&self, reg: Reg) -> u32 {
        self.core.register(reg.index())
    }

    fn set_reg(&mut self, reg: Reg, value: u32) {
        self.core.set_register(reg.index(), value);
    }
}

#[test]
fn alu_instruction_timing_and_result() {
    let mut bench = Bench::new(CoreConfig::microrv32_v1());
    bench.load_program(&[Instr::Addi {
        rd: Reg::X1,
        rs1: Reg::X0,
        imm: 42,
    }]);
    let retire = bench.step_instruction();
    assert_eq!(retire.rd_wdata, 42);
    assert_eq!(retire.pc_wdata, 4);
    assert_eq!(bench.reg(Reg::X1), 42);
    // Multi-cycle core: fetch request + fetch ready + execute = 3 cycles.
    assert_eq!(bench.core.cycles(), 3);
}

#[test]
fn aligned_loads_and_stores_round_trip() {
    let mut bench = Bench::new(CoreConfig::microrv32_v1());
    bench.set_reg(Reg::X1, 16);
    bench.set_reg(Reg::X2, 0xdead_beef);
    bench.load_program(&[
        Instr::Store {
            kind: StoreKind::Sw,
            rs1: Reg::X1,
            rs2: Reg::X2,
            imm: 0,
        },
        Instr::Load {
            kind: LoadKind::Lw,
            rd: Reg::X3,
            rs1: Reg::X1,
            imm: 0,
        },
        Instr::Load {
            kind: LoadKind::Lbu,
            rd: Reg::X4,
            rs1: Reg::X1,
            imm: 1,
        },
        Instr::Load {
            kind: LoadKind::Lb,
            rd: Reg::X5,
            rs1: Reg::X1,
            imm: 1,
        },
        Instr::Load {
            kind: LoadKind::Lhu,
            rd: Reg::X6,
            rs1: Reg::X1,
            imm: 2,
        },
        Instr::Load {
            kind: LoadKind::Lh,
            rd: Reg::X7,
            rs1: Reg::X1,
            imm: 2,
        },
    ]);
    for _ in 0..6 {
        let retire = bench.step_instruction();
        assert!(!retire.trap);
    }
    assert_eq!(bench.dmem[4], 0xdead_beef);
    assert_eq!(bench.reg(Reg::X3), 0xdead_beef);
    assert_eq!(bench.reg(Reg::X4), 0xbe);
    assert_eq!(bench.reg(Reg::X5), 0xffff_ffbe);
    assert_eq!(bench.reg(Reg::X6), 0xdead);
    assert_eq!(bench.reg(Reg::X7), 0xffff_dead);
}

#[test]
fn shipped_core_supports_misaligned_accesses() {
    let mut bench = Bench::new(CoreConfig::microrv32_v1());
    bench.set_reg(Reg::X1, 17); // word 4, offset 1
    bench.set_reg(Reg::X2, 0x1122_3344);
    bench.load_program(&[
        Instr::Store {
            kind: StoreKind::Sw,
            rs1: Reg::X1,
            rs2: Reg::X2,
            imm: 0,
        },
        Instr::Load {
            kind: LoadKind::Lw,
            rd: Reg::X3,
            rs1: Reg::X1,
            imm: 0,
        },
        Instr::Load {
            kind: LoadKind::Lhu,
            rd: Reg::X4,
            rs1: Reg::X1,
            imm: 2,
        },
    ]);
    let retire = bench.step_instruction();
    assert!(
        !retire.trap,
        "misaligned store is supported in the shipped core"
    );
    // Bytes land at 17,18,19,20: word4 = 44 33 22 at offsets 1..3, word5 byte0 = 11.
    assert_eq!(bench.dmem[4], 0x2233_4400);
    assert_eq!(bench.dmem[5], 0x0000_0011);
    let retire = bench.step_instruction();
    assert!(!retire.trap);
    assert_eq!(
        bench.reg(Reg::X3),
        0x1122_3344,
        "misaligned load reassembles"
    );
    let retire = bench.step_instruction();
    assert!(!retire.trap);
    assert_eq!(
        bench.reg(Reg::X4),
        0x1122,
        "misaligned halfword at 19 crosses words"
    );
}

#[test]
fn fixed_core_traps_on_misaligned() {
    let mut bench = Bench::new(CoreConfig::fixed());
    bench.set_reg(Reg::X1, 17);
    bench.load_program(&[Instr::Load {
        kind: LoadKind::Lw,
        rd: Reg::X3,
        rs1: Reg::X1,
        imm: 0,
    }]);
    let retire = bench.step_instruction();
    assert!(retire.trap);
    assert_eq!(retire.trap_cause, Some(Trap::LoadAddressMisaligned.cause()));
}

#[test]
fn wfi_traps_in_shipped_core_and_not_in_fixed() {
    let mut bench = Bench::new(CoreConfig::microrv32_v1());
    bench.load_program(&[Instr::Wfi]);
    let retire = bench.step_instruction();
    assert!(retire.trap, "shipped MicroRV32 misses WFI");
    assert_eq!(retire.trap_cause, Some(Trap::IllegalInstruction.cause()));

    let mut bench = Bench::new(CoreConfig::fixed());
    bench.load_program(&[Instr::Wfi]);
    let retire = bench.step_instruction();
    assert!(!retire.trap, "fixed core implements WFI as a no-op");
}

#[test]
fn csr_bugs_match_table_one() {
    // Write to read-only marchid: shipped core misses the trap.
    let mut bench = Bench::new(CoreConfig::microrv32_v1());
    bench.load_program(&[Instr::CsrImm {
        op: CsrOp::Rc,
        rd: Reg::X1,
        uimm: 1,
        csr: 0xf12,
    }]);
    let retire = bench.step_instruction();
    assert!(!retire.trap, "shipped core silently drops read-only writes");

    let mut bench = Bench::new(CoreConfig::fixed());
    bench.load_program(&[Instr::CsrImm {
        op: CsrOp::Rc,
        rd: Reg::X1,
        uimm: 1,
        csr: 0xf12,
    }]);
    let retire = bench.step_instruction();
    assert!(retire.trap, "fixed core raises the mandatory trap");

    // Write to mcycle: shipped core spuriously traps.
    let mut bench = Bench::new(CoreConfig::microrv32_v1());
    bench.load_program(&[Instr::Csr {
        op: CsrOp::Rw,
        rd: Reg::X1,
        rs1: Reg::X0,
        csr: 0xb00,
    }]);
    let retire = bench.step_instruction();
    assert!(retire.trap, "shipped core traps on counter writes");

    let mut bench = Bench::new(CoreConfig::fixed());
    bench.load_program(&[Instr::Csr {
        op: CsrOp::Rw,
        rd: Reg::X1,
        rs1: Reg::X0,
        csr: 0xb00,
    }]);
    let retire = bench.step_instruction();
    assert!(!retire.trap);
}

#[test]
fn branches_and_jumps() {
    let mut bench = Bench::new(CoreConfig::microrv32_v1());
    bench.set_reg(Reg::X1, 1);
    bench.set_reg(Reg::X2, 2);
    bench.load_program(&[
        Instr::Branch {
            kind: BranchKind::Bne,
            rs1: Reg::X1,
            rs2: Reg::X2,
            offset: 8,
        },
        Instr::Addi {
            rd: Reg::X3,
            rs1: Reg::X0,
            imm: 99,
        }, // skipped
        Instr::Jal {
            rd: Reg::X4,
            offset: -8,
        },
    ]);
    let retire = bench.step_instruction();
    assert_eq!(retire.pc_wdata, 8, "bne taken");
    let retire = bench.step_instruction();
    assert_eq!(retire.pc_wdata, 0, "jal back to start");
    assert_eq!(bench.reg(Reg::X4), 12);
    assert_eq!(bench.reg(Reg::X3), 0, "skipped instruction never ran");
}

#[test]
fn injected_errors_flip_visible_behaviour() {
    // E3: ADDI LSB stuck at zero.
    let mut bench = Bench::with_error(CoreConfig::microrv32_v1(), InjectedError::E3AddiStuckAt0Lsb);
    bench.load_program(&[Instr::Addi {
        rd: Reg::X1,
        rs1: Reg::X0,
        imm: 7,
    }]);
    bench.step_instruction();
    assert_eq!(bench.reg(Reg::X1), 6, "bit 0 forced to zero");

    // E4: SUB MSB stuck at zero.
    let mut bench = Bench::with_error(CoreConfig::microrv32_v1(), InjectedError::E4SubStuckAt0Msb);
    bench.set_reg(Reg::X1, 0);
    bench.set_reg(Reg::X2, 1);
    bench.load_program(&[Instr::Op {
        kind: OpKind::Sub,
        rd: Reg::X3,
        rs1: Reg::X1,
        rs2: Reg::X2,
    }]);
    bench.step_instruction();
    assert_eq!(bench.reg(Reg::X3), 0x7fff_ffff, "0 - 1 with MSB cleared");

    // E5: JAL falls through.
    let mut bench = Bench::with_error(CoreConfig::microrv32_v1(), InjectedError::E5JalNoPcUpdate);
    bench.load_program(&[Instr::Jal {
        rd: Reg::X1,
        offset: 16,
    }]);
    let retire = bench.step_instruction();
    assert_eq!(retire.pc_wdata, 4, "PC update lost");
    assert_eq!(bench.reg(Reg::X1), 4, "link value still written");

    // E6: BNE behaves like BEQ.
    let mut bench = Bench::with_error(
        CoreConfig::microrv32_v1(),
        InjectedError::E6BneBehavesLikeBeq,
    );
    bench.set_reg(Reg::X1, 5);
    bench.set_reg(Reg::X2, 5);
    bench.load_program(&[Instr::Branch {
        kind: BranchKind::Bne,
        rs1: Reg::X1,
        rs2: Reg::X2,
        offset: 8,
    }]);
    let retire = bench.step_instruction();
    assert_eq!(retire.pc_wdata, 8, "equal operands now take the branch");

    // E8: LB without sign extension.
    let mut bench = Bench::with_error(
        CoreConfig::microrv32_v1(),
        InjectedError::E8LbNoSignExtension,
    );
    bench.dmem[4] = 0x0000_0080;
    bench.set_reg(Reg::X1, 16);
    bench.load_program(&[Instr::Load {
        kind: LoadKind::Lb,
        rd: Reg::X2,
        rs1: Reg::X1,
        imm: 0,
    }]);
    bench.step_instruction();
    assert_eq!(bench.reg(Reg::X2), 0x80, "sign extension missing");

    // E9: LW loads only the low half.
    let mut bench = Bench::with_error(CoreConfig::microrv32_v1(), InjectedError::E9LwOnlyLow16);
    bench.dmem[4] = 0xdead_beef;
    bench.set_reg(Reg::X1, 16);
    bench.load_program(&[Instr::Load {
        kind: LoadKind::Lw,
        rd: Reg::X2,
        rs1: Reg::X1,
        imm: 0,
    }]);
    bench.step_instruction();
    assert_eq!(bench.reg(Reg::X2), 0x0000_beef);

    // E7: LBU endianness flip selects the mirrored byte lane.
    let mut bench = Bench::with_error(
        CoreConfig::microrv32_v1(),
        InjectedError::E7LbuEndiannessFlip,
    );
    bench.dmem[4] = 0x4433_2211;
    bench.set_reg(Reg::X1, 16);
    bench.load_program(&[Instr::Load {
        kind: LoadKind::Lbu,
        rd: Reg::X2,
        rs1: Reg::X1,
        imm: 0,
    }]);
    bench.step_instruction();
    assert_eq!(bench.reg(Reg::X2), 0x44, "offset 0 reads lane 3");
}

#[test]
fn decode_dont_care_faults_accept_reserved_encodings() {
    // The reserved encoding: SLLI with funct7 bit 0 set (instruction bit 25).
    let reserved_slli = encode(&Instr::Slli {
        rd: Reg::X1,
        rs1: Reg::X0,
        shamt: 1,
    }) | (1 << 25);
    let mut bench = Bench::new(CoreConfig::microrv32_v1());
    bench.imem = vec![reserved_slli];
    let retire = bench.step_instruction();
    assert!(retire.trap, "healthy core rejects the reserved encoding");

    let mut bench = Bench::with_error(
        CoreConfig::microrv32_v1(),
        InjectedError::E0SlliDecodeDontCare,
    );
    bench.imem = vec![reserved_slli];
    let retire = bench.step_instruction();
    assert!(!retire.trap, "E0 decodes the reserved encoding as SLLI");

    let reserved_srli = encode(&Instr::Srli {
        rd: Reg::X1,
        rs1: Reg::X0,
        shamt: 1,
    }) | (1 << 25);
    let mut bench = Bench::with_error(
        CoreConfig::microrv32_v1(),
        InjectedError::E1SrliDecodeDontCare,
    );
    bench.imem = vec![reserved_srli];
    let retire = bench.step_instruction();
    assert!(!retire.trap, "E1 decodes the reserved encoding as SRLI");

    let reserved_srai = encode(&Instr::Srai {
        rd: Reg::X1,
        rs1: Reg::X0,
        shamt: 1,
    }) | (1 << 25);
    let mut bench = Bench::with_error(
        CoreConfig::microrv32_v1(),
        InjectedError::E2SraiDecodeDontCare,
    );
    bench.imem = vec![reserved_srai];
    let retire = bench.step_instruction();
    assert!(!retire.trap, "E2 decodes the reserved encoding as SRAI");
}

#[test]
fn cycle_counter_counts_clocks_in_shipped_core() {
    let mut bench = Bench::new(CoreConfig::microrv32_v1());
    bench.load_program(&[
        Instr::Addi {
            rd: Reg::X1,
            rs1: Reg::X0,
            imm: 1,
        },
        Instr::Csr {
            op: CsrOp::Rs,
            rd: Reg::X2,
            rs1: Reg::X0,
            csr: 0xb00,
        },
    ]);
    bench.step_instruction();
    bench.step_instruction();
    // mcycle read during the second instruction's execute cycle; must
    // exceed the instruction count (3 cycles for the first instruction
    // plus fetch cycles of the second).
    assert!(
        bench.reg(Reg::X2) > 2,
        "PerClock counting: {}",
        bench.reg(Reg::X2)
    );

    let mut bench = Bench::new(CoreConfig::fixed());
    bench.load_program(&[
        Instr::Addi {
            rd: Reg::X1,
            rs1: Reg::X0,
            imm: 1,
        },
        Instr::Csr {
            op: CsrOp::Rs,
            rd: Reg::X2,
            rs1: Reg::X0,
            csr: 0xb00,
        },
    ]);
    bench.step_instruction();
    bench.step_instruction();
    assert_eq!(
        bench.reg(Reg::X2),
        1,
        "PerInstruction counting matches the ISS"
    );
}

#[test]
fn trap_entry_updates_machine_state() {
    let mut bench = Bench::new(CoreConfig::microrv32_v1());
    bench.set_reg(Reg::X1, 0x40);
    bench.load_program(&[
        Instr::Csr {
            op: CsrOp::Rw,
            rd: Reg::X0,
            rs1: Reg::X1,
            csr: 0x305,
        }, // mtvec = 0x40
        Instr::Ecall,
    ]);
    bench.step_instruction();
    let retire = bench.step_instruction();
    assert!(retire.trap);
    assert_eq!(retire.trap_cause, Some(Trap::EcallFromM.cause()));
    assert_eq!(retire.pc_wdata, 0x40, "redirected to mtvec");
}
