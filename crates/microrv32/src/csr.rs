//! The core's control-and-status register file.
//!
//! Independent implementation from the ISS's CSR file — deliberately so:
//! the differences between the two are the paper's Table I findings, and
//! each one is controlled by a [`CoreConfig`] switch.

use symcosim_isa::Trap;
use symcosim_symex::Domain;

use crate::CoreConfig;

/// CSR storage and dispatch for the RTL core model.
#[derive(Debug)]
pub struct CoreCsrFile<D: Domain> {
    mstatus: D::Word,
    mtvec: D::Word,
    mepc: D::Word,
    mcause: D::Word,
    mtval: D::Word,
    mie: D::Word,
    mip: D::Word,
    medeleg: D::Word,
    mideleg: D::Word,
    mscratch: D::Word,
    mcounteren: D::Word,
    mcycle: D::Word,
    mcycleh: D::Word,
    minstret: D::Word,
    minstreth: D::Word,
    /// HPM storage, only active with `implement_extended_csrs` (the fixed
    /// core mirrors the VP's plain read/write HPM registers).
    hpm: Vec<(D::Word, D::Word)>,
}

// Manual impl: `D::Word` is `Copy`, but a derived Clone would demand
// `D: Clone`, which the fork-engine executor is not.
impl<D: Domain> Clone for CoreCsrFile<D> {
    fn clone(&self) -> CoreCsrFile<D> {
        CoreCsrFile {
            mstatus: self.mstatus,
            mtvec: self.mtvec,
            mepc: self.mepc,
            mcause: self.mcause,
            mtval: self.mtval,
            mie: self.mie,
            mip: self.mip,
            medeleg: self.medeleg,
            mideleg: self.mideleg,
            mscratch: self.mscratch,
            mcounteren: self.mcounteren,
            mcycle: self.mcycle,
            mcycleh: self.mcycleh,
            minstret: self.minstret,
            minstreth: self.minstreth,
            hpm: self.hpm.clone(),
        }
    }
}

impl<D: Domain> CoreCsrFile<D> {
    /// Creates a CSR file with every register reset to zero.
    pub fn new(dom: &mut D) -> CoreCsrFile<D> {
        let zero = dom.const_word(0);
        CoreCsrFile {
            mstatus: zero,
            mtvec: zero,
            mepc: zero,
            mcause: zero,
            mtval: zero,
            mie: zero,
            mip: zero,
            medeleg: zero,
            mideleg: zero,
            mscratch: zero,
            mcounteren: zero,
            mcycle: zero,
            mcycleh: zero,
            minstret: zero,
            minstreth: zero,
            hpm: Vec::new(),
        }
    }

    /// Term-identical equality for veritesting-style state merging (see
    /// [`Core::merge_eq`](crate::Core::merge_eq)): every register must be
    /// the same hash-consed term handle, not merely semantically equal.
    pub fn merge_eq(&self, other: &CoreCsrFile<D>) -> bool
    where
        D::Word: PartialEq,
    {
        self.mstatus == other.mstatus
            && self.mtvec == other.mtvec
            && self.mepc == other.mepc
            && self.mcause == other.mcause
            && self.mtval == other.mtval
            && self.mie == other.mie
            && self.mip == other.mip
            && self.medeleg == other.medeleg
            && self.mideleg == other.mideleg
            && self.mscratch == other.mscratch
            && self.mcounteren == other.mcounteren
            && self.mcycle == other.mcycle
            && self.mcycleh == other.mcycleh
            && self.minstret == other.minstret
            && self.minstreth == other.minstreth
            && self.hpm == other.hpm
    }

    /// The trap vector base (`mtvec`).
    pub fn mtvec(&self) -> D::Word {
        self.mtvec
    }

    /// The saved exception PC (`mepc`).
    pub fn mepc(&self) -> D::Word {
        self.mepc
    }

    /// The cycle counter low half (test inspection).
    pub fn mcycle(&self) -> D::Word {
        self.mcycle
    }

    /// The retired-instruction counter low half (test inspection).
    pub fn minstret(&self) -> D::Word {
        self.minstret
    }

    /// Records trap state: `mepc`, `mcause` and `mtval`.
    pub fn enter_trap(&mut self, dom: &mut D, epc: D::Word, cause: Trap, tval: D::Word) {
        self.mepc = epc;
        self.mcause = dom.const_word(cause.cause());
        self.mtval = tval;
    }

    /// Advances `mcycle` by one (called per clock or per retirement,
    /// depending on [`CycleCountMode`](crate::CycleCountMode)).
    pub fn bump_cycle(&mut self, dom: &mut D) {
        let one = dom.const_word(1);
        let zero = dom.const_word(0);
        let new_low = dom.add(self.mcycle, one);
        let carry = dom.eq_w(new_low, zero);
        let bumped_high = dom.add(self.mcycleh, one);
        self.mcycleh = dom.ite(carry, bumped_high, self.mcycleh);
        self.mcycle = new_low;
    }

    /// Advances `minstret` by one (called on non-trapping retirement).
    pub fn bump_instret(&mut self, dom: &mut D) {
        let one = dom.const_word(1);
        let zero = dom.const_word(0);
        let new_low = dom.add(self.minstret, one);
        let carry = dom.eq_w(new_low, zero);
        let bumped_high = dom.add(self.minstreth, one);
        self.minstreth = dom.ite(carry, bumped_high, self.minstreth);
        self.minstret = new_low;
    }

    /// Reads the CSR at (possibly symbolic) address `addr`.
    ///
    /// # Errors
    ///
    /// With [`CoreConfig::trap_on_unimplemented_csr`] set, unimplemented
    /// addresses raise [`Trap::IllegalInstruction`]; the shipped MicroRV32
    /// instead silently reads zero.
    pub fn read(
        &mut self,
        dom: &mut D,
        addr: D::Word,
        config: &CoreConfig,
    ) -> Result<D::Word, Trap> {
        macro_rules! hit {
            ($address:expr, $value:expr) => {
                let c = dom.eq_const(addr, $address as u32);
                if dom.decide(c) {
                    return Ok($value);
                }
            };
        }
        hit!(0x300, self.mstatus);
        hit!(0x301, dom.const_word(config.misa));
        hit!(0x302, self.medeleg);
        hit!(0x303, self.mideleg);
        hit!(0x304, self.mie);
        hit!(0x305, self.mtvec);
        hit!(0x341, self.mepc);
        hit!(0x342, self.mcause);
        hit!(0x343, self.mtval);
        hit!(0x344, self.mip);
        hit!(0xb00, self.mcycle);
        hit!(0xb02, self.minstret);
        hit!(0xb80, self.mcycleh);
        hit!(0xb82, self.minstreth);
        hit!(0xf11, dom.const_word(config.mvendorid));
        hit!(0xf12, dom.const_word(config.marchid));
        hit!(0xf13, dom.const_word(config.mimpid));
        hit!(0xf14, dom.const_word(config.mhartid));
        if config.implement_extended_csrs {
            hit!(0x306, self.mcounteren);
            hit!(0x340, self.mscratch);
            hit!(0xc00, self.mcycle);
            hit!(0xc01, self.mcycle);
            hit!(0xc02, self.minstret);
            hit!(0xc80, self.mcycleh);
            hit!(0xc81, self.mcycleh);
            hit!(0xc82, self.minstreth);
            if self.in_hpm_range(dom, addr) {
                let mut value = dom.const_word(0);
                for (stored_addr, stored_value) in self.hpm.clone() {
                    let hit = dom.eq_w(addr, stored_addr);
                    value = dom.ite(hit, stored_value, value);
                }
                return Ok(value);
            }
        }
        if config.trap_on_unimplemented_csr {
            Err(Trap::IllegalInstruction)
        } else {
            // Shipped MicroRV32: missing trap at access — reads as zero.
            Ok(dom.const_word(0))
        }
    }

    /// Writes the CSR at (possibly symbolic) address `addr`.
    ///
    /// # Errors
    ///
    /// Depending on the configuration switches this raises
    /// [`Trap::IllegalInstruction`] for counter writes (the shipped bug),
    /// read-only writes, or unimplemented addresses.
    pub fn write(
        &mut self,
        dom: &mut D,
        addr: D::Word,
        value: D::Word,
        config: &CoreConfig,
    ) -> Result<(), Trap> {
        macro_rules! store {
            ($address:expr, $slot:expr) => {
                let c = dom.eq_const(addr, $address as u32);
                if dom.decide(c) {
                    $slot = value;
                    return Ok(());
                }
            };
        }
        store!(0x300, self.mstatus);
        {
            let c = dom.eq_const(addr, 0x301);
            if dom.decide(c) {
                return Ok(()); // misa is WARL and hardwired
            }
        }
        store!(0x302, self.medeleg);
        store!(0x303, self.mideleg);
        store!(0x304, self.mie);
        store!(0x305, self.mtvec);
        store!(0x341, self.mepc);
        store!(0x342, self.mcause);
        store!(0x343, self.mtval);
        // mip and the machine counters are architecturally writable; the
        // shipped core spuriously traps on them (Table I "Trap at write
        // access" errors).
        for (address, trap_bug) in [
            (0x344u32, true),
            (0xb00, true),
            (0xb02, true),
            (0xb80, true),
            (0xb82, true),
        ] {
            let c = dom.eq_const(addr, address);
            if dom.decide(c) {
                if trap_bug && config.trap_on_counter_write {
                    return Err(Trap::IllegalInstruction);
                }
                match address {
                    0x344 => self.mip = value,
                    0xb00 => self.mcycle = value,
                    0xb02 => self.minstret = value,
                    0xb80 => self.mcycleh = value,
                    _ => self.minstreth = value,
                }
                return Ok(());
            }
        }
        // Read-only machine information registers.
        for address in [0xf11u32, 0xf12, 0xf13, 0xf14] {
            let c = dom.eq_const(addr, address);
            if dom.decide(c) {
                if config.trap_on_readonly_csr_write {
                    return Err(Trap::IllegalInstruction);
                }
                return Ok(()); // shipped core silently drops the write
            }
        }
        if config.implement_extended_csrs {
            store!(0x306, self.mcounteren);
            store!(0x340, self.mscratch);
            // Unprivileged counter shadows are read-only addresses.
            for address in [0xc00u32, 0xc01, 0xc02, 0xc80, 0xc81, 0xc82] {
                let c = dom.eq_const(addr, address);
                if dom.decide(c) {
                    if config.trap_on_readonly_csr_write {
                        return Err(Trap::IllegalInstruction);
                    }
                    return Ok(());
                }
            }
            if self.in_hpm_range(dom, addr) {
                self.hpm.push((addr, value));
                return Ok(());
            }
        }
        if config.trap_on_unimplemented_csr {
            Err(Trap::IllegalInstruction)
        } else {
            Ok(()) // shipped MicroRV32: write silently dropped
        }
    }

    fn in_hpm_range(&self, dom: &mut D, addr: D::Word) -> bool {
        for (lo, hi) in [(0xb03u32, 0xb1f), (0xb83, 0xb9f), (0x323, 0x33f)] {
            let lo_w = dom.const_word(lo);
            let hi_w = dom.const_word(hi);
            let ge = dom.uge(addr, lo_w);
            let le = {
                let gt = dom.ult(hi_w, addr);
                dom.not_b(gt)
            };
            let within = dom.and_b(ge, le);
            if dom.decide(within) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symcosim_symex::ConcreteDomain;

    type Dom = ConcreteDomain;

    #[test]
    fn shipped_core_misses_traps() {
        let mut dom = Dom::new();
        let mut csr = CoreCsrFile::new(&mut dom);
        let v1 = CoreConfig::microrv32_v1();
        // Unimplemented CSR: silently reads zero, accepts writes.
        assert_eq!(csr.read(&mut dom, 0x400, &v1), Ok(0));
        assert_eq!(csr.write(&mut dom, 0x400, 7, &v1), Ok(()));
        // Read-only ID write silently dropped.
        assert_eq!(csr.write(&mut dom, 0xf12, 7, &v1), Ok(()));
        assert_eq!(csr.read(&mut dom, 0xf12, &v1), Ok(0));
        // Counter writes spuriously trap.
        assert_eq!(
            csr.write(&mut dom, 0xb00, 7, &v1),
            Err(Trap::IllegalInstruction)
        );
        assert_eq!(
            csr.write(&mut dom, 0x344, 7, &v1),
            Err(Trap::IllegalInstruction)
        );
        // mscratch is not implemented: reads zero.
        assert_eq!(csr.write(&mut dom, 0x340, 9, &v1), Ok(()));
        assert_eq!(csr.read(&mut dom, 0x340, &v1), Ok(0));
    }

    #[test]
    fn fixed_core_matches_the_specification() {
        let mut dom = Dom::new();
        let mut csr = CoreCsrFile::new(&mut dom);
        let fixed = CoreConfig::fixed();
        assert_eq!(
            csr.read(&mut dom, 0x400, &fixed),
            Err(Trap::IllegalInstruction)
        );
        assert_eq!(
            csr.write(&mut dom, 0x400, 7, &fixed),
            Err(Trap::IllegalInstruction)
        );
        assert_eq!(
            csr.write(&mut dom, 0xf12, 7, &fixed),
            Err(Trap::IllegalInstruction)
        );
        assert_eq!(csr.write(&mut dom, 0xb00, 7, &fixed), Ok(()));
        assert_eq!(csr.read(&mut dom, 0xb00, &fixed), Ok(7));
        assert_eq!(csr.write(&mut dom, 0x340, 9, &fixed), Ok(()));
        assert_eq!(csr.read(&mut dom, 0x340, &fixed), Ok(9));
        assert_eq!(
            csr.read(&mut dom, 0xc00, &fixed),
            Ok(7),
            "cycle shadows mcycle"
        );
        assert_eq!(
            csr.write(&mut dom, 0xc00, 1, &fixed),
            Err(Trap::IllegalInstruction)
        );
        assert_eq!(csr.read(&mut dom, 0xb10, &fixed), Ok(0), "hpm reads zero");
        assert_eq!(csr.write(&mut dom, 0xb10, 3, &fixed), Ok(()));
    }

    #[test]
    fn medeleg_mideleg_read_fine_in_the_core() {
        // Unlike the VP, the core has no read-trap bug here.
        let mut dom = Dom::new();
        for config in [CoreConfig::microrv32_v1(), CoreConfig::fixed()] {
            let mut csr = CoreCsrFile::new(&mut dom);
            assert_eq!(csr.read(&mut dom, 0x302, &config), Ok(0));
            assert_eq!(csr.read(&mut dom, 0x303, &config), Ok(0));
            assert_eq!(csr.write(&mut dom, 0x302, 5, &config), Ok(()));
            assert_eq!(csr.read(&mut dom, 0x302, &config), Ok(5));
        }
    }

    #[test]
    fn counters_tick_independently() {
        let mut dom = Dom::new();
        let mut csr = CoreCsrFile::new(&mut dom);
        for _ in 0..7 {
            csr.bump_cycle(&mut dom);
        }
        csr.bump_instret(&mut dom);
        assert_eq!(csr.mcycle(), 7);
        assert_eq!(csr.minstret(), 1);
    }
}
