//! The multi-cycle core: FSM, decoder, ALU, load/store unit.

use symcosim_isa::{opcodes, Trap};
use symcosim_rtl::{DBusRequest, DBusResponse, IBusRequest, IBusResponse, RvfiRecord, Strobe};
use symcosim_symex::Domain;

use crate::{CoreConfig, CoreCsrFile, CycleCountMode, InjectedError};

/// The core's control FSM state (concrete; control flow is forked until
/// it is).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsmState {
    /// Driving the IBus, waiting for `instruction_ready`.
    Fetch,
    /// Decoding and executing the latched instruction.
    Execute,
    /// Waiting on the DBus for the current memory sub-access.
    Mem,
}

/// One word-aligned DBus sub-access of a (possibly misaligned) load/store.
#[derive(Debug)]
struct SubAccess<D: Domain> {
    /// Word-aligned bus address.
    word_addr: D::Word,
    /// Byte-lane strobe.
    strobe: Strobe,
    /// Bit offset of the selected lanes within the bus word.
    bus_shift: u32,
    /// Bit offset of these bytes within the assembled value.
    val_shift: u32,
    /// Number of bytes moved by this sub-access.
    bytes: u32,
    /// Positioned write data (stores only).
    store_data: D::Word,
}

// Clone is implemented by hand on the generic model structs: `D::Word` is
// always `Copy`, but a derived impl would demand `D: Clone`, and the
// fork-engine executor that snapshots these models is not cloneable.
impl<D: Domain> Clone for SubAccess<D> {
    fn clone(&self) -> SubAccess<D> {
        SubAccess {
            word_addr: self.word_addr,
            strobe: self.strobe,
            bus_shift: self.bus_shift,
            val_shift: self.val_shift,
            bytes: self.bytes,
            store_data: self.store_data,
        }
    }
}

impl<D: Domain> SubAccess<D>
where
    D::Word: PartialEq,
{
    /// Field-by-field equality (see [`Core::merge_eq`]).
    fn merge_eq(&self, other: &SubAccess<D>) -> bool {
        self.word_addr == other.word_addr
            && self.strobe == other.strobe
            && self.bus_shift == other.bus_shift
            && self.val_shift == other.val_shift
            && self.bytes == other.bytes
            && self.store_data == other.store_data
    }
}

/// Load flavour, for final extension and fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoadFlavour {
    Lb,
    Lbu,
    Lh,
    Lhu,
    Lw,
}

#[derive(Debug)]
struct MemPlan<D: Domain> {
    is_store: bool,
    subs: Vec<SubAccess<D>>,
    current: usize,
    assembled: D::Word,
    flavour: LoadFlavour,
    rd: D::Word,
}

impl<D: Domain> Clone for MemPlan<D> {
    fn clone(&self) -> MemPlan<D> {
        MemPlan {
            is_store: self.is_store,
            subs: self.subs.clone(),
            current: self.current,
            assembled: self.assembled,
            flavour: self.flavour,
            rd: self.rd,
        }
    }
}

impl<D: Domain> MemPlan<D>
where
    D::Word: PartialEq,
{
    /// Field-by-field equality (see [`Core::merge_eq`]).
    fn merge_eq(&self, other: &MemPlan<D>) -> bool {
        self.is_store == other.is_store
            && self.current == other.current
            && self.assembled == other.assembled
            && self.flavour == other.flavour
            && self.rd == other.rd
            && self.subs.len() == other.subs.len()
            && self
                .subs
                .iter()
                .zip(&other.subs)
                .all(|(a, b)| a.merge_eq(b))
    }
}

/// What the decode/execute stage concluded.
enum ExecResult<D: Domain> {
    /// Retire this cycle (ALU, jumps, CSR, system).
    Retire {
        pc_target: Option<D::Word>,
        rd: Option<(D::Word, D::Word)>,
    },
    /// Start a memory plan (loads/stores).
    Memory(MemPlan<D>),
    /// Raise a synchronous exception.
    Trap(Trap, D::Word),
}

/// Per-cycle outputs of the core.
#[derive(Debug, Clone, Copy)]
pub struct CoreOutputs<W> {
    /// Instruction bus request.
    pub ibus: IBusRequest<W>,
    /// Data bus request.
    pub dbus: DBusRequest<W>,
    /// Retirement record, present in the cycle an instruction retires.
    pub rvfi: Option<RvfiRecord<W>>,
}

/// The cycle-accurate MicroRV32-equivalent core.
///
/// Drive it by calling [`Core::cycle`] once per clock with the bus
/// responses to the *previous* cycle's requests; see the
/// [crate documentation](crate) for an example.
#[derive(Debug)]
pub struct Core<D: Domain> {
    config: CoreConfig,
    inject: Option<InjectedError>,
    state: FsmState,
    pc: D::Word,
    regs: [D::Word; 32],
    csr: CoreCsrFile<D>,
    latched_instr: D::Word,
    mem_plan: Option<MemPlan<D>>,
    retired: u64,
    cycles: u64,
}

// Manual impl: snapshotting engines clone the core mid-exploration, and a
// derived Clone would require `D: Clone` (see `SubAccess`).
impl<D: Domain> Clone for Core<D> {
    fn clone(&self) -> Core<D> {
        Core {
            config: self.config.clone(),
            inject: self.inject,
            state: self.state,
            pc: self.pc,
            regs: self.regs,
            csr: self.csr.clone(),
            latched_instr: self.latched_instr,
            mem_plan: self.mem_plan.clone(),
            retired: self.retired,
            cycles: self.cycles,
        }
    }
}

impl<D: Domain> Core<D> {
    /// Creates a reset core (PC 0, zero registers, reset CSRs).
    pub fn new(dom: &mut D, config: CoreConfig) -> Core<D> {
        let zero = dom.const_word(0);
        Core {
            config,
            inject: None,
            state: FsmState::Fetch,
            pc: zero,
            regs: [zero; 32],
            csr: CoreCsrFile::new(dom),
            latched_instr: zero,
            mem_plan: None,
            retired: 0,
            cycles: 0,
        }
    }

    /// Creates a core with an injected error from the Table II catalogue.
    pub fn with_injected_error(dom: &mut D, config: CoreConfig, error: InjectedError) -> Core<D> {
        let mut core = Core::new(dom, config);
        core.inject = Some(error);
        core
    }

    /// The current FSM state.
    pub fn state(&self) -> FsmState {
        self.state
    }

    /// The current program counter.
    pub fn pc(&self) -> D::Word {
        self.pc
    }

    /// Overrides the program counter (testbench initialisation).
    pub fn set_pc(&mut self, pc: D::Word) {
        self.pc = pc;
    }

    /// The architectural register file.
    pub fn registers(&self) -> &[D::Word; 32] {
        &self.regs
    }

    /// Reads register `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn register(&self, index: usize) -> D::Word {
        self.regs[index]
    }

    /// Sets register `index`; `x0` writes are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn set_register(&mut self, index: usize, value: D::Word) {
        if index != 0 {
            self.regs[index] = value;
        }
    }

    /// The CSR file (test inspection).
    pub fn csr_file(&self) -> &CoreCsrFile<D> {
        &self.csr
    }

    /// Instructions retired so far (including trapped ones).
    pub fn instructions_executed(&self) -> u64 {
        self.retired
    }

    /// Clock cycles elapsed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Term-identical equality for veritesting-style state merging: true
    /// when every symbolic component is the *same* hash-consed term handle
    /// and every concrete component is equal, so the continuation from
    /// either state performs literally identical domain operations. Never
    /// a semantic equivalence check — two distinct terms with equal values
    /// compare unequal, which is sound (the engine just keeps the paths
    /// apart).
    pub fn merge_eq(&self, other: &Core<D>) -> bool
    where
        D::Word: PartialEq,
    {
        self.config == other.config
            && self.inject == other.inject
            && self.state == other.state
            && self.pc == other.pc
            && self.regs == other.regs
            && self.csr.merge_eq(&other.csr)
            && self.latched_instr == other.latched_instr
            && match (&self.mem_plan, &other.mem_plan) {
                (None, None) => true,
                (Some(a), Some(b)) => a.merge_eq(b),
                _ => false,
            }
            && self.retired == other.retired
            && self.cycles == other.cycles
    }

    fn read_reg(&self, dom: &mut D, index: D::Word) -> D::Word {
        if let Some(i) = dom.word_value(index) {
            return self.regs[(i & 0x1f) as usize];
        }
        let mut value = dom.const_word(0);
        for i in 1..32 {
            let hit = dom.eq_const(index, i as u32);
            value = dom.ite(hit, self.regs[i], value);
        }
        value
    }

    /// Writes a register selected by a (possibly symbolic) index word;
    /// `x0` stays hardwired to zero.
    ///
    /// The single architectural choke point for register writes: every rd
    /// update in [`Core::retire`] funnels through here (the testbench-only
    /// [`Core::set_register`] carries the same guard), so the x0 invariant
    /// holds by construction. `symcosim-lint --ir` re-checks it executably
    /// against both models.
    fn write_reg(&mut self, dom: &mut D, index: D::Word, value: D::Word) {
        if let Some(i) = dom.word_value(index) {
            if i & 0x1f != 0 {
                self.regs[(i & 0x1f) as usize] = value;
            }
            return;
        }
        for i in 1..32 {
            let hit = dom.eq_const(index, i as u32);
            self.regs[i] = dom.ite(hit, value, self.regs[i]);
        }
    }

    /// Advances the core by one clock cycle.
    ///
    /// `ibus_rsp` and `dbus_rsp` answer the requests issued in the
    /// previous cycle's [`CoreOutputs`].
    pub fn cycle(
        &mut self,
        dom: &mut D,
        ibus_rsp: IBusResponse<D::Word>,
        dbus_rsp: DBusResponse<D::Word>,
    ) -> CoreOutputs<D::Word> {
        self.cycles += 1;
        if self.config.cycle_count_mode == CycleCountMode::PerClock {
            self.csr.bump_cycle(dom);
        }
        let zero = dom.const_word(0);
        let mut outputs = CoreOutputs {
            ibus: IBusRequest {
                fetch_enable: false,
                address: zero,
            },
            dbus: DBusRequest {
                enable: false,
                write: false,
                address: zero,
                write_data: zero,
                strobe: Strobe::WORD,
            },
            rvfi: None,
        };

        match self.state {
            FsmState::Fetch => {
                if ibus_rsp.instruction_ready {
                    self.latched_instr = ibus_rsp.instruction;
                    self.state = FsmState::Execute;
                } else {
                    outputs.ibus = IBusRequest {
                        fetch_enable: true,
                        address: self.pc,
                    };
                }
            }
            FsmState::Execute => {
                let instr = self.latched_instr;
                match self.execute_instr(dom, instr) {
                    ExecResult::Retire { pc_target, rd } => {
                        outputs.rvfi = Some(self.retire(dom, instr, pc_target, rd));
                    }
                    ExecResult::Trap(trap, tval) => {
                        outputs.rvfi = Some(self.take_trap(dom, instr, trap, tval));
                    }
                    ExecResult::Memory(plan) => {
                        outputs.dbus = Self::sub_request(&plan);
                        self.mem_plan = Some(plan);
                        self.state = FsmState::Mem;
                    }
                }
            }
            FsmState::Mem => {
                let mut plan = self.mem_plan.take().expect("Mem state has a plan");
                if dbus_rsp.data_ready {
                    if !plan.is_store {
                        let sub = &plan.subs[plan.current];
                        let lane_mask = ((1u64 << (sub.bytes * 8)) - 1) as u32;
                        let shifted = dom.lshr_const(dbus_rsp.read_data, sub.bus_shift);
                        let masked = dom.and_const(shifted, lane_mask);
                        let positioned = dom.shl_const(masked, sub.val_shift);
                        plan.assembled = dom.or(plan.assembled, positioned);
                    }
                    plan.current += 1;
                    if plan.current == plan.subs.len() {
                        // Plan complete: write back and retire.
                        let instr = self.latched_instr;
                        let rd = if plan.is_store {
                            None
                        } else {
                            let value = self.finish_load(dom, &plan);
                            Some((plan.rd, value))
                        };
                        outputs.rvfi = Some(self.retire(dom, instr, None, rd));
                    } else {
                        outputs.dbus = Self::sub_request(&plan);
                        self.mem_plan = Some(plan);
                    }
                } else {
                    outputs.dbus = Self::sub_request(&plan);
                    self.mem_plan = Some(plan);
                }
            }
        }
        outputs
    }

    fn sub_request(plan: &MemPlan<D>) -> DBusRequest<D::Word> {
        let sub = &plan.subs[plan.current];
        DBusRequest {
            enable: true,
            write: plan.is_store,
            address: sub.word_addr,
            write_data: sub.store_data,
            strobe: sub.strobe,
        }
    }

    /// Applies final extension (and the E8/E9 load faults) to an
    /// assembled load value.
    fn finish_load(&mut self, dom: &mut D, plan: &MemPlan<D>) -> D::Word {
        match plan.flavour {
            LoadFlavour::Lb => {
                if self.inject == Some(InjectedError::E8LbNoSignExtension) {
                    plan.assembled
                } else {
                    dom.sext(plan.assembled, 8)
                }
            }
            LoadFlavour::Lbu => plan.assembled,
            LoadFlavour::Lh => dom.sext(plan.assembled, 16),
            LoadFlavour::Lhu => plan.assembled,
            LoadFlavour::Lw => {
                if self.inject == Some(InjectedError::E9LwOnlyLow16) {
                    dom.zext_w(plan.assembled, 16)
                } else {
                    plan.assembled
                }
            }
        }
    }

    fn retire(
        &mut self,
        dom: &mut D,
        instr: D::Word,
        pc_target: Option<D::Word>,
        rd: Option<(D::Word, D::Word)>,
    ) -> RvfiRecord<D::Word> {
        let zero = dom.const_word(0);
        let pc_rdata = self.pc;
        let four = dom.const_word(4);
        let fall_through = dom.add(pc_rdata, four);
        let pc_wdata = pc_target.unwrap_or(fall_through);
        let (rd_addr, rd_wdata) = match rd {
            Some((index, value)) => {
                self.write_reg(dom, index, value);
                let rd_is_zero = dom.eq_const(index, 0);
                let reported = dom.ite(rd_is_zero, zero, value);
                (index, reported)
            }
            None => (zero, zero),
        };
        self.pc = pc_wdata;
        self.finish_instruction(dom, true);
        RvfiRecord {
            valid: true,
            order: self.retired - 1,
            insn: instr,
            trap: false,
            trap_cause: None,
            pc_rdata,
            pc_wdata,
            rd_addr,
            rd_wdata,
        }
    }

    fn take_trap(
        &mut self,
        dom: &mut D,
        instr: D::Word,
        trap: Trap,
        tval: D::Word,
    ) -> RvfiRecord<D::Word> {
        let zero = dom.const_word(0);
        let pc_rdata = self.pc;
        self.csr.enter_trap(dom, pc_rdata, trap, tval);
        let target = {
            let mask = dom.const_word(!0x3);
            let mtvec = self.csr.mtvec();
            dom.and(mtvec, mask)
        };
        self.pc = target;
        self.finish_instruction(dom, false);
        RvfiRecord {
            valid: true,
            order: self.retired - 1,
            insn: instr,
            trap: true,
            trap_cause: Some(trap.cause()),
            pc_rdata,
            pc_wdata: target,
            rd_addr: zero,
            rd_wdata: zero,
        }
    }

    fn finish_instruction(&mut self, dom: &mut D, retired_ok: bool) {
        if self.config.cycle_count_mode == CycleCountMode::PerInstruction {
            self.csr.bump_cycle(dom);
        }
        if retired_ok || self.config.count_trapped_in_instret {
            self.csr.bump_instret(dom);
        }
        self.retired += 1;
        self.state = FsmState::Fetch;
    }

    // ------------------------------------------------------------------
    // Decode & execute
    // ------------------------------------------------------------------

    fn execute_instr(&mut self, dom: &mut D, instr: D::Word) -> ExecResult<D> {
        let opcode = dom.field(instr, 6, 0);
        let rd = dom.field(instr, 11, 7);
        let rs1_idx = dom.field(instr, 19, 15);
        let rs2_idx = dom.field(instr, 24, 20);
        let funct3 = dom.field(instr, 14, 12);
        let funct7 = dom.field(instr, 31, 25);

        macro_rules! opcode_is {
            ($value:expr) => {{
                let c = dom.eq_const(opcode, $value);
                dom.decide(c)
            }};
        }

        if opcode_is!(opcodes::LUI) {
            let imm = dom.and_const(instr, 0xffff_f000);
            return ExecResult::Retire {
                pc_target: None,
                rd: Some((rd, imm)),
            };
        }
        if opcode_is!(opcodes::AUIPC) {
            let imm = dom.and_const(instr, 0xffff_f000);
            let value = dom.add(self.pc, imm);
            return ExecResult::Retire {
                pc_target: None,
                rd: Some((rd, value)),
            };
        }
        if opcode_is!(opcodes::JAL) {
            let four = dom.const_word(4);
            let link = dom.add(self.pc, four);
            if self.inject == Some(InjectedError::E5JalNoPcUpdate) {
                // Fault: the PC update is lost; the link value still writes.
                return ExecResult::Retire {
                    pc_target: None,
                    rd: Some((rd, link)),
                };
            }
            let imm = self.j_imm(dom, instr);
            let target = dom.add(self.pc, imm);
            return self.control_transfer(dom, target, Some((rd, link)));
        }
        if opcode_is!(opcodes::JALR) {
            let f3_ok = dom.eq_const(funct3, 0);
            if !dom.decide(f3_ok) {
                return ExecResult::Trap(Trap::IllegalInstruction, instr);
            }
            let base = self.read_reg(dom, rs1_idx);
            let imm = self.i_imm(dom, instr);
            let sum = dom.add(base, imm);
            let target = dom.and_const(sum, !1);
            let four = dom.const_word(4);
            let link = dom.add(self.pc, four);
            return self.control_transfer(dom, target, Some((rd, link)));
        }
        if opcode_is!(opcodes::BRANCH) {
            return self.execute_branch(dom, instr, funct3, rs1_idx, rs2_idx);
        }
        if opcode_is!(opcodes::LOAD) {
            return self.execute_load(dom, instr, funct3, rd, rs1_idx);
        }
        if opcode_is!(opcodes::STORE) {
            return self.execute_store(dom, instr, funct3, rs1_idx, rs2_idx);
        }
        if opcode_is!(opcodes::OP_IMM) {
            return self.execute_op_imm(dom, instr, funct3, funct7, rd, rs1_idx);
        }
        if opcode_is!(opcodes::OP) {
            return self.execute_op(dom, instr, funct3, funct7, rd, rs1_idx, rs2_idx);
        }
        if opcode_is!(opcodes::MISC_MEM) {
            let is_fence = dom.eq_const(funct3, 0);
            if dom.decide(is_fence) {
                return ExecResult::Retire {
                    pc_target: None,
                    rd: None,
                };
            }
            let is_fence_i = dom.eq_const(funct3, 1);
            if dom.decide(is_fence_i) {
                return ExecResult::Retire {
                    pc_target: None,
                    rd: None,
                };
            }
            return ExecResult::Trap(Trap::IllegalInstruction, instr);
        }
        if opcode_is!(opcodes::SYSTEM) {
            return self.execute_system(dom, instr, funct3, rd, rs1_idx);
        }
        ExecResult::Trap(Trap::IllegalInstruction, instr)
    }

    fn control_transfer(
        &mut self,
        dom: &mut D,
        target: D::Word,
        rd: Option<(D::Word, D::Word)>,
    ) -> ExecResult<D> {
        if self.config.trap_on_misaligned_fetch {
            let low = dom.and_const(target, 0x3);
            let zero = dom.const_word(0);
            let misaligned = dom.ne_w(low, zero);
            if dom.decide(misaligned) {
                return ExecResult::Trap(Trap::InstructionAddressMisaligned, target);
            }
        }
        ExecResult::Retire {
            pc_target: Some(target),
            rd,
        }
    }

    fn execute_branch(
        &mut self,
        dom: &mut D,
        instr: D::Word,
        funct3: D::Word,
        rs1_idx: D::Word,
        rs2_idx: D::Word,
    ) -> ExecResult<D> {
        let a = self.read_reg(dom, rs1_idx);
        let b = self.read_reg(dom, rs2_idx);
        let eq = dom.eq_w(a, b);
        macro_rules! f3_is {
            ($value:expr) => {{
                let c = dom.eq_const(funct3, $value);
                dom.decide(c)
            }};
        }
        let cond = if f3_is!(0b000) {
            eq
        } else if f3_is!(0b001) {
            if self.inject == Some(InjectedError::E6BneBehavesLikeBeq) {
                eq // fault: the polarity inversion is lost
            } else {
                dom.not_b(eq)
            }
        } else if f3_is!(0b100) {
            dom.slt(a, b)
        } else if f3_is!(0b101) {
            dom.sge(a, b)
        } else if f3_is!(0b110) {
            dom.ult(a, b)
        } else if f3_is!(0b111) {
            dom.uge(a, b)
        } else {
            return ExecResult::Trap(Trap::IllegalInstruction, instr);
        };
        if dom.decide(cond) {
            let imm = self.b_imm(dom, instr);
            let target = dom.add(self.pc, imm);
            self.control_transfer(dom, target, None)
        } else {
            ExecResult::Retire {
                pc_target: None,
                rd: None,
            }
        }
    }

    /// Concretises the low two address bits (the strobe is a concrete
    /// control signal, as in the verilated core).
    fn decide_offset(&mut self, dom: &mut D, addr: D::Word) -> u32 {
        let low = dom.and_const(addr, 0x3);
        for offset in 0..3 {
            let hit = dom.eq_const(low, offset);
            if dom.decide(hit) {
                return offset;
            }
        }
        3
    }

    fn execute_load(
        &mut self,
        dom: &mut D,
        instr: D::Word,
        funct3: D::Word,
        rd: D::Word,
        rs1_idx: D::Word,
    ) -> ExecResult<D> {
        macro_rules! f3_is {
            ($value:expr) => {{
                let c = dom.eq_const(funct3, $value);
                dom.decide(c)
            }};
        }
        let flavour = if f3_is!(0b000) {
            LoadFlavour::Lb
        } else if f3_is!(0b001) {
            LoadFlavour::Lh
        } else if f3_is!(0b010) {
            LoadFlavour::Lw
        } else if f3_is!(0b100) {
            LoadFlavour::Lbu
        } else if f3_is!(0b101) {
            LoadFlavour::Lhu
        } else {
            return ExecResult::Trap(Trap::IllegalInstruction, instr);
        };
        let width = match flavour {
            LoadFlavour::Lb | LoadFlavour::Lbu => 1,
            LoadFlavour::Lh | LoadFlavour::Lhu => 2,
            LoadFlavour::Lw => 4,
        };
        let base = self.read_reg(dom, rs1_idx);
        let imm = self.i_imm(dom, instr);
        let addr = dom.add(base, imm);
        let offset = self.decide_offset(dom, addr);
        if width > 1 && !offset.is_multiple_of(width) && !self.config.support_misaligned_data {
            return ExecResult::Trap(Trap::LoadAddressMisaligned, addr);
        }
        let plan = self.build_plan(dom, addr, offset, width, flavour, rd, None);
        ExecResult::Memory(plan)
    }

    fn execute_store(
        &mut self,
        dom: &mut D,
        instr: D::Word,
        funct3: D::Word,
        rs1_idx: D::Word,
        rs2_idx: D::Word,
    ) -> ExecResult<D> {
        macro_rules! f3_is {
            ($value:expr) => {{
                let c = dom.eq_const(funct3, $value);
                dom.decide(c)
            }};
        }
        let width = if f3_is!(0b000) {
            1
        } else if f3_is!(0b001) {
            2
        } else if f3_is!(0b010) {
            4
        } else {
            return ExecResult::Trap(Trap::IllegalInstruction, instr);
        };
        let base = self.read_reg(dom, rs1_idx);
        let imm = self.s_imm(dom, instr);
        let addr = dom.add(base, imm);
        let offset = self.decide_offset(dom, addr);
        if width > 1 && !offset.is_multiple_of(width) && !self.config.support_misaligned_data {
            return ExecResult::Trap(Trap::StoreAddressMisaligned, addr);
        }
        let value = self.read_reg(dom, rs2_idx);
        let zero = dom.const_word(0);
        let plan = self.build_plan(dom, addr, offset, width, LoadFlavour::Lw, zero, Some(value));
        ExecResult::Memory(plan)
    }

    /// Builds the DBus sub-access plan for an access of `width` bytes at
    /// concrete word offset `offset`. Aligned accesses are a single
    /// transaction; misaligned ones (when supported) go byte by byte.
    #[allow(clippy::too_many_arguments)]
    fn build_plan(
        &mut self,
        dom: &mut D,
        addr: D::Word,
        offset: u32,
        width: u32,
        flavour: LoadFlavour,
        rd: D::Word,
        store_value: Option<D::Word>,
    ) -> MemPlan<D> {
        let is_store = store_value.is_some();
        let zero = dom.const_word(0);
        let aligned_base = dom.and_const(addr, !0x3);
        let mut subs = Vec::new();

        // Fault E7 flips the byte-lane endianness of LBU accesses.
        let lbu_flip = !is_store
            && flavour == LoadFlavour::Lbu
            && self.inject == Some(InjectedError::E7LbuEndiannessFlip);

        if offset.is_multiple_of(width) && width <= 4 && !lbu_flip {
            // Naturally aligned: one transaction.
            let strobe = Strobe::for_access(width, offset).expect("aligned access");
            let store_data = match store_value {
                Some(value) => dom.shl_const(value, offset * 8),
                None => zero,
            };
            subs.push(SubAccess {
                word_addr: aligned_base,
                strobe,
                bus_shift: offset * 8,
                val_shift: 0,
                bytes: width,
                store_data,
            });
        } else {
            // Misaligned (or lane-flipped byte): byte-by-byte transactions.
            for i in 0..width {
                let mut lane = (offset + i) % 4;
                if lbu_flip {
                    lane ^= 3;
                }
                let word_index = (offset + i) / 4;
                let word_addr = if word_index == 0 {
                    aligned_base
                } else {
                    let four = dom.const_word(4);
                    dom.add(aligned_base, four)
                };
                let strobe = Strobe::for_access(1, lane).expect("byte lane");
                let store_data = match store_value {
                    Some(value) => {
                        let byte = dom.lshr_const(value, i * 8);
                        let masked = dom.and_const(byte, 0xff);
                        dom.shl_const(masked, lane * 8)
                    }
                    None => zero,
                };
                subs.push(SubAccess {
                    word_addr,
                    strobe,
                    bus_shift: lane * 8,
                    val_shift: i * 8,
                    bytes: 1,
                    store_data,
                });
            }
        }
        MemPlan {
            is_store,
            subs,
            current: 0,
            assembled: zero,
            flavour,
            rd,
        }
    }

    fn execute_op_imm(
        &mut self,
        dom: &mut D,
        instr: D::Word,
        funct3: D::Word,
        funct7: D::Word,
        rd: D::Word,
        rs1_idx: D::Word,
    ) -> ExecResult<D> {
        let a = self.read_reg(dom, rs1_idx);
        let imm = self.i_imm(dom, instr);
        macro_rules! f3_is {
            ($value:expr) => {{
                let c = dom.eq_const(funct3, $value);
                dom.decide(c)
            }};
        }
        macro_rules! retire_rd {
            ($value:expr) => {
                ExecResult::Retire {
                    pc_target: None,
                    rd: Some((rd, $value)),
                }
            };
        }
        if f3_is!(0b000) {
            let mut value = dom.add(a, imm);
            if self.inject == Some(InjectedError::E3AddiStuckAt0Lsb) {
                value = dom.and_const(value, !1);
            }
            return retire_rd!(value);
        }
        if f3_is!(0b010) {
            let lt = dom.slt(a, imm);
            let value = dom.bool_to_word(lt);
            return retire_rd!(value);
        }
        if f3_is!(0b011) {
            let lt = dom.ult(a, imm);
            let value = dom.bool_to_word(lt);
            return retire_rd!(value);
        }
        if f3_is!(0b100) {
            let value = dom.xor(a, imm);
            return retire_rd!(value);
        }
        if f3_is!(0b110) {
            let value = dom.or(a, imm);
            return retire_rd!(value);
        }
        if f3_is!(0b111) {
            let value = dom.and(a, imm);
            return retire_rd!(value);
        }
        let shamt = dom.and_const(imm, 0x1f);
        if f3_is!(0b001) {
            // Decode-table entry for SLLI: funct7 must be 0000000. Faults
            // E0/E1/E2 mark instruction bit 25 (funct7 bit 0) don't-care.
            let checked = if self.inject == Some(InjectedError::E0SlliDecodeDontCare) {
                dom.and_const(funct7, 0b111_1110)
            } else {
                funct7
            };
            let legal = dom.eq_const(checked, 0);
            if !dom.decide(legal) {
                return ExecResult::Trap(Trap::IllegalInstruction, instr);
            }
            let value = dom.shl(a, shamt);
            return retire_rd!(value);
        }
        // funct3 == 101: SRLI or SRAI by funct7.
        let srli_checked = if self.inject == Some(InjectedError::E1SrliDecodeDontCare) {
            dom.and_const(funct7, 0b111_1110)
        } else {
            funct7
        };
        let is_srli = dom.eq_const(srli_checked, 0);
        if dom.decide(is_srli) {
            let value = dom.lshr(a, shamt);
            return retire_rd!(value);
        }
        let srai_checked = if self.inject == Some(InjectedError::E2SraiDecodeDontCare) {
            dom.and_const(funct7, 0b111_1110)
        } else {
            funct7
        };
        let is_srai = dom.eq_const(srai_checked, 0b010_0000);
        if dom.decide(is_srai) {
            let value = dom.ashr(a, shamt);
            return retire_rd!(value);
        }
        ExecResult::Trap(Trap::IllegalInstruction, instr)
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_op(
        &mut self,
        dom: &mut D,
        instr: D::Word,
        funct3: D::Word,
        funct7: D::Word,
        rd: D::Word,
        rs1_idx: D::Word,
        rs2_idx: D::Word,
    ) -> ExecResult<D> {
        let a = self.read_reg(dom, rs1_idx);
        let b = self.read_reg(dom, rs2_idx);
        let f7_zero = dom.eq_const(funct7, 0);
        let f7_alt = dom.eq_const(funct7, 0b010_0000);
        macro_rules! f3_is {
            ($value:expr) => {{
                let c = dom.eq_const(funct3, $value);
                dom.decide(c)
            }};
        }
        macro_rules! retire_rd {
            ($value:expr) => {
                ExecResult::Retire {
                    pc_target: None,
                    rd: Some((rd, $value)),
                }
            };
        }
        let shamt = dom.and_const(b, 0x1f);
        if f3_is!(0b000) {
            if dom.decide(f7_zero) {
                let value = dom.add(a, b);
                return retire_rd!(value);
            }
            if dom.decide(f7_alt) {
                let mut value = dom.sub(a, b);
                if self.inject == Some(InjectedError::E4SubStuckAt0Msb) {
                    value = dom.and_const(value, 0x7fff_ffff);
                }
                return retire_rd!(value);
            }
            return ExecResult::Trap(Trap::IllegalInstruction, instr);
        }
        if f3_is!(0b001) {
            if dom.decide(f7_zero) {
                let value = dom.shl(a, shamt);
                return retire_rd!(value);
            }
            return ExecResult::Trap(Trap::IllegalInstruction, instr);
        }
        if f3_is!(0b010) {
            if dom.decide(f7_zero) {
                let lt = dom.slt(a, b);
                let value = dom.bool_to_word(lt);
                return retire_rd!(value);
            }
            return ExecResult::Trap(Trap::IllegalInstruction, instr);
        }
        if f3_is!(0b011) {
            if dom.decide(f7_zero) {
                let lt = dom.ult(a, b);
                let value = dom.bool_to_word(lt);
                return retire_rd!(value);
            }
            return ExecResult::Trap(Trap::IllegalInstruction, instr);
        }
        if f3_is!(0b100) {
            if dom.decide(f7_zero) {
                let value = dom.xor(a, b);
                return retire_rd!(value);
            }
            return ExecResult::Trap(Trap::IllegalInstruction, instr);
        }
        if f3_is!(0b101) {
            if dom.decide(f7_zero) {
                let value = dom.lshr(a, shamt);
                return retire_rd!(value);
            }
            if dom.decide(f7_alt) {
                let value = dom.ashr(a, shamt);
                return retire_rd!(value);
            }
            return ExecResult::Trap(Trap::IllegalInstruction, instr);
        }
        if f3_is!(0b110) {
            if dom.decide(f7_zero) {
                let value = dom.or(a, b);
                return retire_rd!(value);
            }
            return ExecResult::Trap(Trap::IllegalInstruction, instr);
        }
        if f3_is!(0b111) {
            if dom.decide(f7_zero) {
                let value = dom.and(a, b);
                return retire_rd!(value);
            }
            return ExecResult::Trap(Trap::IllegalInstruction, instr);
        }
        ExecResult::Trap(Trap::IllegalInstruction, instr)
    }

    fn execute_system(
        &mut self,
        dom: &mut D,
        instr: D::Word,
        funct3: D::Word,
        rd: D::Word,
        rs1_idx: D::Word,
    ) -> ExecResult<D> {
        let f3_zero = dom.eq_const(funct3, 0);
        if dom.decide(f3_zero) {
            let is_ecall = dom.eq_const(instr, 0x0000_0073);
            if dom.decide(is_ecall) {
                let zero = dom.const_word(0);
                return ExecResult::Trap(Trap::EcallFromM, zero);
            }
            let is_ebreak = dom.eq_const(instr, 0x0010_0073);
            if dom.decide(is_ebreak) {
                return ExecResult::Trap(Trap::Breakpoint, self.pc);
            }
            let is_mret = dom.eq_const(instr, 0x3020_0073);
            if dom.decide(is_mret) {
                let target = self.csr.mepc();
                return self.control_transfer(dom, target, None);
            }
            let is_wfi = dom.eq_const(instr, 0x1050_0073);
            if dom.decide(is_wfi) {
                if self.config.implement_wfi {
                    return ExecResult::Retire {
                        pc_target: None,
                        rd: None,
                    };
                }
                // Shipped MicroRV32: WFI is simply missing from the decoder
                // and falls into the illegal-instruction trap.
                return ExecResult::Trap(Trap::IllegalInstruction, instr);
            }
            return ExecResult::Trap(Trap::IllegalInstruction, instr);
        }

        let csr_addr = dom.field(instr, 31, 20);
        let uimm = rs1_idx;
        macro_rules! f3_is {
            ($value:expr) => {{
                let c = dom.eq_const(funct3, $value);
                dom.decide(c)
            }};
        }
        let (op_write, op_set, src) = if f3_is!(0b001) {
            (true, false, self.read_reg(dom, rs1_idx))
        } else if f3_is!(0b010) {
            (false, true, self.read_reg(dom, rs1_idx))
        } else if f3_is!(0b011) {
            (false, false, self.read_reg(dom, rs1_idx))
        } else if f3_is!(0b101) {
            (true, false, uimm)
        } else if f3_is!(0b110) {
            (false, true, uimm)
        } else if f3_is!(0b111) {
            (false, false, uimm)
        } else {
            return ExecResult::Trap(Trap::IllegalInstruction, instr);
        };

        let config = self.config.clone();
        if op_write {
            let rd_zero = {
                let c = dom.eq_const(rd, 0);
                dom.decide(c)
            };
            let old = if rd_zero {
                dom.const_word(0)
            } else {
                match self.csr.read(dom, csr_addr, &config) {
                    Ok(value) => value,
                    Err(trap) => return ExecResult::Trap(trap, instr),
                }
            };
            if let Err(trap) = self.csr.write(dom, csr_addr, src, &config) {
                return ExecResult::Trap(trap, instr);
            }
            return ExecResult::Retire {
                pc_target: None,
                rd: Some((rd, old)),
            };
        }
        let old = match self.csr.read(dom, csr_addr, &config) {
            Ok(value) => value,
            Err(trap) => return ExecResult::Trap(trap, instr),
        };
        let src_zero = {
            let c = dom.eq_const(rs1_idx, 0);
            dom.decide(c)
        };
        if !src_zero {
            let new_value = if op_set {
                dom.or(old, src)
            } else {
                let inverted = dom.not_w(src);
                dom.and(old, inverted)
            };
            if let Err(trap) = self.csr.write(dom, csr_addr, new_value, &config) {
                return ExecResult::Trap(trap, instr);
            }
        }
        ExecResult::Retire {
            pc_target: None,
            rd: Some((rd, old)),
        }
    }

    // Immediate extractors (pure word arithmetic).

    fn i_imm(&self, dom: &mut D, instr: D::Word) -> D::Word {
        let raw = dom.field(instr, 31, 20);
        dom.sext(raw, 12)
    }

    fn s_imm(&self, dom: &mut D, instr: D::Word) -> D::Word {
        let high = dom.field(instr, 31, 25);
        let low = dom.field(instr, 11, 7);
        let shifted = dom.shl_const(high, 5);
        let raw = dom.or(shifted, low);
        dom.sext(raw, 12)
    }

    fn b_imm(&self, dom: &mut D, instr: D::Word) -> D::Word {
        let bit12 = dom.field(instr, 31, 31);
        let bit11 = dom.field(instr, 7, 7);
        let bits10_5 = dom.field(instr, 30, 25);
        let bits4_1 = dom.field(instr, 11, 8);
        let p12 = dom.shl_const(bit12, 12);
        let p11 = dom.shl_const(bit11, 11);
        let p10_5 = dom.shl_const(bits10_5, 5);
        let p4_1 = dom.shl_const(bits4_1, 1);
        let a = dom.or(p12, p11);
        let b = dom.or(p10_5, p4_1);
        let raw = dom.or(a, b);
        dom.sext(raw, 13)
    }

    fn j_imm(&self, dom: &mut D, instr: D::Word) -> D::Word {
        let bit20 = dom.field(instr, 31, 31);
        let bits19_12 = dom.field(instr, 19, 12);
        let bit11 = dom.field(instr, 20, 20);
        let bits10_1 = dom.field(instr, 30, 21);
        let p20 = dom.shl_const(bit20, 20);
        let p19_12 = dom.shl_const(bits19_12, 12);
        let p11 = dom.shl_const(bit11, 11);
        let p10_1 = dom.shl_const(bits10_1, 1);
        let a = dom.or(p20, p19_12);
        let b = dom.or(p11, p10_1);
        let raw = dom.or(a, b);
        dom.sext(raw, 21)
    }
}
