//! The injected error catalogue E0–E9 (Table II of the paper).

use std::fmt;

/// A seeded RTL fault for the error-injection performance evaluation.
///
/// Each variant corresponds to one row of Table II and is wired into the
/// core's decoder, ALU, PC update logic or load unit. The faults cover a
/// broad range of functionality: decoding (E0–E2), arithmetic (E3–E4),
/// control flow (E5–E6) and memory access (E7–E9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectedError {
    /// E0: the `SLLI` decode entry marks instruction bit 25 (the lowest
    /// `funct7` bit) as don't-care, so the reserved RV64 encoding with
    /// that bit set erroneously decodes to `SLLI` instead of trapping.
    E0SlliDecodeDontCare,
    /// E1: the same don't-care bit in the `SRLI` decode entry.
    E1SrliDecodeDontCare,
    /// E2: the same don't-care bit in the `SRAI` decode entry.
    E2SraiDecodeDontCare,
    /// E3: stuck-at-0 fault on the lowest result bit of `ADDI`.
    E3AddiStuckAt0Lsb,
    /// E4: stuck-at-0 fault on the highest result bit of `SUB`.
    E4SubStuckAt0Msb,
    /// E5: `JAL` fails to update the PC (falls through to PC+4).
    E5JalNoPcUpdate,
    /// E6: `BNE` behaves like `BEQ`.
    E6BneBehavesLikeBeq,
    /// E7: the `LBU` byte-lane selection has flipped endianness
    /// (byte offset XOR 3).
    E7LbuEndiannessFlip,
    /// E8: `LB` misses the 8-to-32-bit sign extension.
    E8LbNoSignExtension,
    /// E9: `LW` only loads the lower 16 bits from memory.
    E9LwOnlyLow16,
}

impl InjectedError {
    /// All ten injected errors, in Table II order.
    pub const ALL: [InjectedError; 10] = [
        InjectedError::E0SlliDecodeDontCare,
        InjectedError::E1SrliDecodeDontCare,
        InjectedError::E2SraiDecodeDontCare,
        InjectedError::E3AddiStuckAt0Lsb,
        InjectedError::E4SubStuckAt0Msb,
        InjectedError::E5JalNoPcUpdate,
        InjectedError::E6BneBehavesLikeBeq,
        InjectedError::E7LbuEndiannessFlip,
        InjectedError::E8LbNoSignExtension,
        InjectedError::E9LwOnlyLow16,
    ];

    /// The paper's short identifier (`"E0"` … `"E9"`).
    pub fn id(self) -> &'static str {
        match self {
            InjectedError::E0SlliDecodeDontCare => "E0",
            InjectedError::E1SrliDecodeDontCare => "E1",
            InjectedError::E2SraiDecodeDontCare => "E2",
            InjectedError::E3AddiStuckAt0Lsb => "E3",
            InjectedError::E4SubStuckAt0Msb => "E4",
            InjectedError::E5JalNoPcUpdate => "E5",
            InjectedError::E6BneBehavesLikeBeq => "E6",
            InjectedError::E7LbuEndiannessFlip => "E7",
            InjectedError::E8LbNoSignExtension => "E8",
            InjectedError::E9LwOnlyLow16 => "E9",
        }
    }

    /// One-line description matching Section V-B of the paper.
    pub fn description(self) -> &'static str {
        match self {
            InjectedError::E0SlliDecodeDontCare => "don't-care bit in SLLI decode table",
            InjectedError::E1SrliDecodeDontCare => "don't-care bit in SRLI decode table",
            InjectedError::E2SraiDecodeDontCare => "don't-care bit in SRAI decode table",
            InjectedError::E3AddiStuckAt0Lsb => "stuck-at-0 fault on ADDI result bit 0",
            InjectedError::E4SubStuckAt0Msb => "stuck-at-0 fault on SUB result bit 31",
            InjectedError::E5JalNoPcUpdate => "JAL does not change the PC",
            InjectedError::E6BneBehavesLikeBeq => "BNE behaves like BEQ",
            InjectedError::E7LbuEndiannessFlip => "LBU byte lane endianness flipped",
            InjectedError::E8LbNoSignExtension => "LB missing 8-to-32-bit sign extension",
            InjectedError::E9LwOnlyLow16 => "LW loads only the lower 16 bits",
        }
    }
}

impl fmt::Display for InjectedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.id(), self.description())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_complete_and_ordered() {
        assert_eq!(InjectedError::ALL.len(), 10);
        for (i, error) in InjectedError::ALL.iter().enumerate() {
            assert_eq!(error.id(), format!("E{i}"));
            assert!(!error.description().is_empty());
        }
    }

    #[test]
    fn display_concatenates_id_and_description() {
        assert_eq!(
            InjectedError::E5JalNoPcUpdate.to_string(),
            "E5: JAL does not change the PC"
        );
    }
}
