//! Cycle-accurate MicroRV32-equivalent RV32I+Zicsr core model (the DUT).
//!
//! This crate plays the role of the verilated MicroRV32 core in the paper's
//! co-simulation: a multi-cycle RV32I+Zicsr processor driven through an
//! instruction bus (`fetch_enable`/`instruction_ready` handshake), a
//! strobe-based data bus, and observed through an RVFI retirement port.
//! Like the ISS it is generic over the [`Domain`](symcosim_symex::Domain)
//! abstraction, so the identical "RTL" runs concretely and symbolically.
//!
//! Two independent bug mechanisms reproduce the paper's evaluation:
//!
//! * [`CoreConfig`] encodes the *shipped* MicroRV32 behaviours that Table I
//!   reports as errors/mismatches against the VP — full misaligned
//!   load/store support, missing `WFI`, missing illegal-instruction traps
//!   on CSR misuse, spurious traps on counter writes, and a real
//!   clock-cycle counter. [`CoreConfig::microrv32_v1`] has all of them;
//!   [`CoreConfig::fixed`] is the corrected core for clean runs.
//! * [`InjectedError`] implements the ten seeded faults E0–E9 of the
//!   paper's performance evaluation (Table II), wired into the decoder,
//!   ALU, PC logic and load unit.
//!
//! # Example
//!
//! ```
//! use symcosim_microrv32::{Core, CoreConfig};
//! use symcosim_rtl::{DBusResponse, IBusResponse};
//! use symcosim_symex::ConcreteDomain;
//!
//! let mut dom = ConcreteDomain::new();
//! let mut core = Core::new(&mut dom, CoreConfig::microrv32_v1());
//! // Drive the clock: answer the fetch with `addi x1, x0, 5`.
//! let idle_d = DBusResponse { data_ready: false, read_data: 0 };
//! let out = core.cycle(&mut dom, IBusResponse { instruction_ready: false, instruction: 0 }, idle_d);
//! assert!(out.ibus.fetch_enable);
//! let out = core.cycle(&mut dom, IBusResponse { instruction_ready: true, instruction: 0x0050_0093 }, idle_d);
//! assert!(out.rvfi.is_none());
//! let out = core.cycle(&mut dom, IBusResponse { instruction_ready: false, instruction: 0 }, idle_d);
//! let retire = out.rvfi.expect("ALU instruction retires in the execute cycle");
//! assert_eq!(retire.rd_wdata, 5);
//! assert_eq!(core.register(1), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod core;
mod csr;
mod inject;

pub use crate::core::{Core, CoreOutputs, FsmState};
pub use config::{CoreConfig, CycleCountMode};
pub use csr::CoreCsrFile;
pub use inject::InjectedError;
