//! Core behaviour configuration (the Table I bug switches).

/// How the core's `mcycle` counter advances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleCountMode {
    /// Count real clock cycles (the RTL core's behaviour; deviates from
    /// the ISS's abstract timing — the paper's *cycle count mismatch*).
    PerClock,
    /// Count one per retired instruction (matches the abstract ISS; used
    /// by the corrected configuration for clean regression runs).
    PerInstruction,
}

/// Configurable behaviours of the core.
///
/// [`CoreConfig::microrv32_v1`] reproduces the shipped MicroRV32 exactly as
/// Table I of the paper characterises it; every deviation it lists is one
/// field here, so individual findings can be toggled in isolation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreConfig {
    /// Support misaligned loads/stores by splitting them into byte
    /// transactions (MicroRV32 does; the VP traps instead — Table I
    /// rows LW/LH/LHU/SW/SH/SHU, classified as a *mismatch*).
    /// When `false`, the core raises the architectural misaligned traps.
    pub support_misaligned_data: bool,
    /// Implement `WFI`. MicroRV32 omits it entirely and raises an illegal
    /// instruction trap (Table I row WFI, an RTL *error*).
    pub implement_wfi: bool,
    /// Raise an illegal-instruction trap when accessing a CSR the core
    /// does not implement. MicroRV32 silently reads zero / drops writes
    /// (Table I rows "Missing trap at access", RTL *errors*).
    pub trap_on_unimplemented_csr: bool,
    /// Raise an illegal-instruction trap on writes to the read-only ID
    /// CSRs (`mvendorid`, `marchid`, `mhartid`). MicroRV32 silently drops
    /// the write (Table I, RTL *errors*).
    pub trap_on_readonly_csr_write: bool,
    /// Spuriously trap on *writes* to `mip`, `mcycle`, `minstret`,
    /// `mcycleh`, `minstreth` — MicroRV32 does (Table I "Trap at write
    /// access", RTL *errors*); the specification says these are writable.
    pub trap_on_counter_write: bool,
    /// Implement the wider CSR surface the VP has (`mscratch`,
    /// `mcounteren`, unprivileged counters, HPM ranges). MicroRV32 does
    /// not (Table I "unimpl. CSR" rows, *mismatches*).
    pub implement_extended_csrs: bool,
    /// `mcycle` advance policy.
    pub cycle_count_mode: CycleCountMode,
    /// Count trapped instructions in `minstret` too — MicroRV32's
    /// deviating counting logic (part of Table I's "Cycle Count Mismatch"
    /// rows). The specification counts *retired* instructions only.
    pub count_trapped_in_instret: bool,
    /// Trap when a taken control transfer targets a misaligned address.
    pub trap_on_misaligned_fetch: bool,
    /// `marchid` value reported by the core.
    pub marchid: u32,
    /// `mvendorid` value reported by the core.
    pub mvendorid: u32,
    /// `mimpid` value reported by the core.
    pub mimpid: u32,
    /// `mhartid` value reported by the core.
    pub mhartid: u32,
    /// `misa` value reported by the core.
    pub misa: u32,
}

impl CoreConfig {
    /// The shipped MicroRV32 as evaluated in the paper — all Table I
    /// behaviours present.
    pub fn microrv32_v1() -> CoreConfig {
        CoreConfig {
            support_misaligned_data: true,
            implement_wfi: false,
            trap_on_unimplemented_csr: false,
            trap_on_readonly_csr_write: false,
            trap_on_counter_write: true,
            implement_extended_csrs: false,
            cycle_count_mode: CycleCountMode::PerClock,
            count_trapped_in_instret: true,
            trap_on_misaligned_fetch: true,
            marchid: 0,
            mvendorid: 0,
            mimpid: 0,
            mhartid: 0,
            misa: (1 << 30) | (1 << 8),
        }
    }

    /// The corrected core: behaves exactly like the corrected ISS
    /// ([`IssConfig::fixed`](../symcosim_iss/struct.IssConfig.html)), so a
    /// co-simulation of the two finds no mismatches — the pipeline's clean
    /// regression configuration.
    pub fn fixed() -> CoreConfig {
        CoreConfig {
            support_misaligned_data: false,
            implement_wfi: true,
            trap_on_unimplemented_csr: true,
            trap_on_readonly_csr_write: true,
            trap_on_counter_write: false,
            implement_extended_csrs: true,
            cycle_count_mode: CycleCountMode::PerInstruction,
            count_trapped_in_instret: false,
            ..CoreConfig::microrv32_v1()
        }
    }
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig::microrv32_v1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v1_has_all_table_one_behaviours() {
        let config = CoreConfig::microrv32_v1();
        assert!(config.support_misaligned_data);
        assert!(!config.implement_wfi);
        assert!(!config.trap_on_unimplemented_csr);
        assert!(!config.trap_on_readonly_csr_write);
        assert!(config.trap_on_counter_write);
        assert!(!config.implement_extended_csrs);
        assert_eq!(config.cycle_count_mode, CycleCountMode::PerClock);
    }

    #[test]
    fn fixed_inverts_every_bug_switch() {
        let fixed = CoreConfig::fixed();
        assert!(!fixed.support_misaligned_data);
        assert!(fixed.implement_wfi);
        assert!(fixed.trap_on_unimplemented_csr);
        assert!(fixed.trap_on_readonly_csr_write);
        assert!(!fixed.trap_on_counter_write);
        assert!(fixed.implement_extended_csrs);
        assert_eq!(fixed.cycle_count_mode, CycleCountMode::PerInstruction);
    }
}
