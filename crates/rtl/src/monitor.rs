//! An RVFI self-consistency monitor.
//!
//! riscv-formal couples its bounded model checking to per-record sanity
//! properties on the RVFI port; this monitor implements the subset that is
//! meaningful for a trace observed at simulation time, independently of
//! any reference model. The co-simulation voter compares two models
//! against *each other*; this monitor catches records that are internally
//! broken even when both models agree (e.g. a harness wiring bug).

use std::fmt;

use crate::RvfiRecord;

/// A violated RVFI trace property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RvfiViolation {
    /// `rvfi_order` did not increase by one.
    OrderNotMonotonic {
        /// Order of the previous record.
        previous: u64,
        /// Order of the offending record.
        current: u64,
    },
    /// A trapping record reported a destination-register write.
    TrapWithRegisterWrite,
    /// A trapping record carried no cause.
    TrapWithoutCause,
    /// A non-trapping record carried a trap cause.
    CauseWithoutTrap,
    /// `rd_addr == 0` but `rd_wdata != 0` (x0 must read as zero).
    NonZeroX0Write,
    /// The next record's `pc_rdata` differs from this record's `pc_wdata`.
    PcChainBroken {
        /// Promised next PC.
        expected: u32,
        /// Observed next PC.
        found: u32,
    },
    /// An invalid record was submitted.
    InvalidRecord,
}

impl fmt::Display for RvfiViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RvfiViolation::OrderNotMonotonic { previous, current } => {
                write!(f, "rvfi_order not monotonic: {previous} then {current}")
            }
            RvfiViolation::TrapWithRegisterWrite => {
                f.write_str("trapping instruction reported a register write")
            }
            RvfiViolation::TrapWithoutCause => f.write_str("trap without a cause"),
            RvfiViolation::CauseWithoutTrap => f.write_str("cause reported without a trap"),
            RvfiViolation::NonZeroX0Write => f.write_str("non-zero write data reported for x0"),
            RvfiViolation::PcChainBroken { expected, found } => {
                write!(
                    f,
                    "pc chain broken: expected {expected:#010x}, found {found:#010x}"
                )
            }
            RvfiViolation::InvalidRecord => f.write_str("invalid record submitted"),
        }
    }
}

/// Checks a stream of concrete RVFI records for internal consistency.
///
/// # Example
///
/// ```
/// use symcosim_rtl::{RvfiMonitor, RvfiRecord};
///
/// let mut monitor = RvfiMonitor::new();
/// let record = RvfiRecord::<u32> {
///     valid: true,
///     order: 0,
///     insn: 0x13,
///     trap: false,
///     trap_cause: None,
///     pc_rdata: 0,
///     pc_wdata: 4,
///     rd_addr: 0,
///     rd_wdata: 0,
/// };
/// assert!(monitor.check(&record).is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct RvfiMonitor {
    previous: Option<RvfiRecord<u32>>,
}

impl RvfiMonitor {
    /// Creates a monitor expecting the first record of a trace.
    pub fn new() -> RvfiMonitor {
        RvfiMonitor::default()
    }

    /// Checks the next record of the trace; returns all violations.
    pub fn check(&mut self, record: &RvfiRecord<u32>) -> Vec<RvfiViolation> {
        let mut violations = Vec::new();
        if !record.valid {
            violations.push(RvfiViolation::InvalidRecord);
        }
        if record.trap {
            if record.trap_cause.is_none() {
                violations.push(RvfiViolation::TrapWithoutCause);
            }
            if record.rd_addr != 0 || record.rd_wdata != 0 {
                violations.push(RvfiViolation::TrapWithRegisterWrite);
            }
        } else if record.trap_cause.is_some() {
            violations.push(RvfiViolation::CauseWithoutTrap);
        }
        if record.rd_addr == 0 && record.rd_wdata != 0 {
            violations.push(RvfiViolation::NonZeroX0Write);
        }
        if let Some(previous) = &self.previous {
            if record.order != previous.order + 1 {
                violations.push(RvfiViolation::OrderNotMonotonic {
                    previous: previous.order,
                    current: record.order,
                });
            }
            if record.pc_rdata != previous.pc_wdata {
                violations.push(RvfiViolation::PcChainBroken {
                    expected: previous.pc_wdata,
                    found: record.pc_rdata,
                });
            }
        }
        self.previous = Some(*record);
        violations
    }

    /// Forgets the trace history (e.g. after a testbench reset).
    pub fn reset(&mut self) {
        self.previous = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good(order: u64, pc: u32) -> RvfiRecord<u32> {
        RvfiRecord {
            valid: true,
            order,
            insn: 0x13,
            trap: false,
            trap_cause: None,
            pc_rdata: pc,
            pc_wdata: pc + 4,
            rd_addr: 1,
            rd_wdata: 7,
        }
    }

    #[test]
    fn clean_chain_passes() {
        let mut monitor = RvfiMonitor::new();
        assert!(monitor.check(&good(0, 0)).is_empty());
        assert!(monitor.check(&good(1, 4)).is_empty());
        assert!(monitor.check(&good(2, 8)).is_empty());
    }

    #[test]
    fn broken_pc_chain_detected() {
        let mut monitor = RvfiMonitor::new();
        monitor.check(&good(0, 0));
        let violations = monitor.check(&good(1, 12));
        assert!(violations.iter().any(|v| matches!(
            v,
            RvfiViolation::PcChainBroken {
                expected: 4,
                found: 12
            }
        )));
    }

    #[test]
    fn order_must_increment() {
        let mut monitor = RvfiMonitor::new();
        monitor.check(&good(0, 0));
        let violations = monitor.check(&good(5, 4));
        assert!(violations.iter().any(|v| matches!(
            v,
            RvfiViolation::OrderNotMonotonic {
                previous: 0,
                current: 5
            }
        )));
    }

    #[test]
    fn trap_rules() {
        let mut monitor = RvfiMonitor::new();
        let mut record = good(0, 0);
        record.trap = true;
        record.trap_cause = None;
        let violations = monitor.check(&record);
        assert!(violations.contains(&RvfiViolation::TrapWithoutCause));
        assert!(violations.contains(&RvfiViolation::TrapWithRegisterWrite));

        monitor.reset();
        let mut record = good(0, 0);
        record.trap_cause = Some(2);
        assert!(monitor
            .check(&record)
            .contains(&RvfiViolation::CauseWithoutTrap));
    }

    #[test]
    fn x0_write_data_must_be_zero() {
        let mut monitor = RvfiMonitor::new();
        let mut record = good(0, 0);
        record.rd_addr = 0;
        record.rd_wdata = 9;
        assert!(monitor
            .check(&record)
            .contains(&RvfiViolation::NonZeroX0Write));
    }

    #[test]
    fn reset_clears_chain_state() {
        let mut monitor = RvfiMonitor::new();
        monitor.check(&good(0, 0));
        monitor.reset();
        // Fresh trace at a different PC: no chain violation.
        assert!(monitor.check(&good(0, 0x100)).is_empty());
    }
}
