//! Instruction- and data-bus protocol types.
//!
//! MicroRV32 separates the instruction bus (IBus) and data bus (DBus). The
//! IBus uses a `fetch_enable` / `instruction_ready` handshake; the DBus is
//! strobe-based, the byte-lane scheme used by AXI write strobes, the
//! Wishbone `SEL` lines and PicoRV32's native memory interface.

use std::fmt;

/// DBus byte-lane strobe.
///
/// Valid values select a naturally aligned byte (`0001`, `0010`, `0100`,
/// `1000`), half-word (`0011`, `1100`) or the full word (`1111`) within the
/// addressed 32-bit location.
///
/// # Example
///
/// ```
/// use symcosim_rtl::Strobe;
///
/// let strobe = Strobe::for_access(1, 1).expect("byte at offset 1");
/// assert_eq!(strobe.lanes(), 0b0010);
/// assert_eq!(strobe.width_bytes(), 1);
/// assert_eq!(strobe.offset(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Strobe(u8);

impl Strobe {
    /// Full-word access.
    pub const WORD: Strobe = Strobe(0b1111);

    /// Creates a strobe from raw lane bits.
    ///
    /// Returns `None` unless the pattern is one of the seven legal values.
    pub fn from_lanes(lanes: u8) -> Option<Strobe> {
        match lanes {
            0b0001 | 0b0010 | 0b0100 | 0b1000 | 0b0011 | 0b1100 | 0b1111 => Some(Strobe(lanes)),
            _ => None,
        }
    }

    /// Builds the strobe for an access of `width_bytes` (1, 2 or 4) at
    /// byte offset `offset` within the word.
    ///
    /// Returns `None` for misaligned or out-of-range combinations — the
    /// combinations a core that *traps* on misalignment never produces.
    pub fn for_access(width_bytes: u32, offset: u32) -> Option<Strobe> {
        let lanes = match (width_bytes, offset) {
            (1, 0..=3) => 0b0001 << offset,
            (2, 0) => 0b0011,
            (2, 2) => 0b1100,
            (4, 0) => 0b1111,
            _ => return None,
        };
        Some(Strobe(lanes))
    }

    /// The raw lane bits.
    #[inline]
    pub fn lanes(self) -> u8 {
        self.0
    }

    /// Access width in bytes (1, 2 or 4).
    pub fn width_bytes(self) -> u32 {
        self.0.count_ones()
    }

    /// Byte offset of the lowest selected lane.
    pub fn offset(self) -> u32 {
        self.0.trailing_zeros()
    }
}

impl fmt::Display for Strobe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04b}", self.0)
    }
}

/// IBus request driven by the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IBusRequest<W> {
    /// The core wants to fetch this cycle.
    pub fetch_enable: bool,
    /// Fetch address (`IMem_address`).
    pub address: W,
}

/// IBus response driven by the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IBusResponse<W> {
    /// The instruction word is valid this cycle (`IMem_instructionReady`).
    pub instruction_ready: bool,
    /// The fetched instruction (`IMem_instruction`).
    pub instruction: W,
}

/// DBus request driven by the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DBusRequest<W> {
    /// A data access is requested this cycle (`DMem_enable`).
    pub enable: bool,
    /// `true` for a store, `false` for a load.
    pub write: bool,
    /// Word-aligned access address (`DMem_address`).
    pub address: W,
    /// Store data, positioned in the selected lanes (`DMem_writeData`).
    pub write_data: W,
    /// Byte-lane selection (`DMem_wrStrobe`).
    pub strobe: Strobe,
}

/// DBus response driven by the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DBusResponse<W> {
    /// Load data is valid this cycle (`DMem_dataReady`).
    pub data_ready: bool,
    /// Loaded word, lanes positioned as stored (`DMem_readData`).
    pub read_data: W,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legal_strobes_only() {
        let legal = [0b0001, 0b0010, 0b0100, 0b1000, 0b0011, 0b1100, 0b1111];
        for lanes in 0u8..16 {
            assert_eq!(
                Strobe::from_lanes(lanes).is_some(),
                legal.contains(&lanes),
                "lanes {lanes:04b}"
            );
        }
    }

    #[test]
    fn access_construction_covers_alignments() {
        assert_eq!(Strobe::for_access(1, 3).map(Strobe::lanes), Some(0b1000));
        assert_eq!(Strobe::for_access(2, 0).map(Strobe::lanes), Some(0b0011));
        assert_eq!(Strobe::for_access(2, 2).map(Strobe::lanes), Some(0b1100));
        assert_eq!(Strobe::for_access(4, 0).map(Strobe::lanes), Some(0b1111));
        assert_eq!(Strobe::for_access(2, 1), None);
        assert_eq!(Strobe::for_access(4, 2), None);
        assert_eq!(Strobe::for_access(1, 4), None);
        assert_eq!(Strobe::for_access(3, 0), None);
    }

    #[test]
    fn width_and_offset_round_trip() {
        for width in [1u32, 2, 4] {
            for offset in 0..4 {
                if let Some(strobe) = Strobe::for_access(width, offset) {
                    assert_eq!(strobe.width_bytes(), width);
                    assert_eq!(strobe.offset(), offset);
                }
            }
        }
    }

    #[test]
    fn display_is_binary() {
        assert_eq!(Strobe::WORD.to_string(), "1111");
        assert_eq!(
            Strobe::from_lanes(0b0010).expect("legal").to_string(),
            "0010"
        );
    }
}
