//! Two-phase clocked register primitive.

/// A clocked register with verilator-style two-phase update.
///
/// Combinational logic reads [`Reg::get`] and schedules the next value with
/// [`Reg::set_next`]; the testbench advances the clock by calling
/// [`Reg::tick`] on every register (usually via [`Clocked::tick`] on the
/// containing module). Until `tick`, reads keep returning the old value —
/// this reproduces non-blocking assignment semantics and makes the model
/// insensitive to evaluation order within a cycle.
///
/// # Example
///
/// ```
/// use symcosim_rtl::Reg;
///
/// let mut q = Reg::new(0u32);
/// q.set_next(5);
/// assert_eq!(q.get(), 0); // not yet clocked
/// q.tick();
/// assert_eq!(q.get(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reg<T: Copy> {
    current: T,
    next: T,
}

impl<T: Copy> Reg<T> {
    /// Creates a register holding `init` (also the pending next value).
    pub fn new(init: T) -> Reg<T> {
        Reg {
            current: init,
            next: init,
        }
    }

    /// The registered (pre-edge) value.
    #[inline]
    pub fn get(&self) -> T {
        self.current
    }

    /// Schedules `value` to be latched at the next clock edge.
    #[inline]
    pub fn set_next(&mut self, value: T) {
        self.next = value;
    }

    /// The currently scheduled next value (for debug inspection).
    #[inline]
    pub fn peek_next(&self) -> T {
        self.next
    }

    /// Advances the clock edge: the scheduled value becomes current.
    #[inline]
    pub fn tick(&mut self) {
        self.current = self.next;
    }

    /// Resets both phases to `value` immediately (asynchronous reset).
    pub fn reset(&mut self, value: T) {
        self.current = value;
        self.next = value;
    }
}

impl<T: Copy + Default> Default for Reg<T> {
    fn default() -> Reg<T> {
        Reg::new(T::default())
    }
}

/// A module with clocked state.
///
/// Implementors propagate [`Reg::tick`] to every register they own.
pub trait Clocked {
    /// Advances one clock edge.
    fn tick(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_phase_semantics() {
        let mut r = Reg::new(1u32);
        r.set_next(2);
        r.set_next(3); // last write wins
        assert_eq!(r.get(), 1);
        assert_eq!(r.peek_next(), 3);
        r.tick();
        assert_eq!(r.get(), 3);
        // Without a new set_next, the value holds.
        r.tick();
        assert_eq!(r.get(), 3);
    }

    #[test]
    fn reset_clears_both_phases() {
        let mut r = Reg::new(7u32);
        r.set_next(9);
        r.reset(0);
        r.tick();
        assert_eq!(r.get(), 0);
    }

    #[test]
    fn order_insensitivity_within_a_cycle() {
        // Swap two registers — the classic non-blocking assignment test.
        let mut a = Reg::new(1u32);
        let mut b = Reg::new(2u32);
        a.set_next(b.get());
        b.set_next(a.get());
        a.tick();
        b.tick();
        assert_eq!((a.get(), b.get()), (2, 1));
    }
}
