//! RTL modelling substrate.
//!
//! The paper's device under test is a Verilog core translated to C++ by
//! verilator. This crate provides the primitives to write the equivalent
//! cycle-accurate model directly in Rust — in effect a "hand-verilated"
//! style: two-phase clocked registers ([`Reg`]), the bus protocol types the
//! MicroRV32 environment uses (an instruction bus with a
//! `fetch_enable`/`instruction_ready` handshake, and a strobe-based data
//! bus as used by AXI/Wishbone/PicoRV32), and the RISC-V Formal Interface
//! (RVFI) retirement record the voter observes.
//!
//! Data-path values are generic over the word type `W` so that the same
//! core model runs concretely (`u32`) and symbolically (term handles);
//! control-path signals (handshakes, FSM states) stay concrete `bool`s,
//! mirroring how the symbolic co-simulation in the paper concretises
//! control flow through forking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod monitor;
mod reg;
mod rvfi;

pub use bus::{DBusRequest, DBusResponse, IBusRequest, IBusResponse, Strobe};
pub use monitor::{RvfiMonitor, RvfiViolation};
pub use reg::{Clocked, Reg};
pub use rvfi::RvfiRecord;
