//! RISC-V Formal Interface (RVFI) retirement records.

/// One retired instruction as observed through the RVFI port.
///
/// This is the subset of RVFI the paper's voter consumes: instruction
/// identity, trap outcome, old/new PC and the destination-register write.
/// Handshake metadata (`valid`, `order`, `trap`) is concrete — the
/// symbolic executor forks until control flow is — while data-path values,
/// including the destination-register *index*, carry the domain's word
/// type `W` so they can stay symbolic within a path.
///
/// # Example
///
/// ```
/// use symcosim_rtl::RvfiRecord;
///
/// let record = RvfiRecord::<u32> {
///     valid: true,
///     order: 0,
///     insn: 0x0000_0013,
///     trap: false,
///     trap_cause: None,
///     pc_rdata: 0x0,
///     pc_wdata: 0x4,
///     rd_addr: 0,
///     rd_wdata: 0,
/// };
/// assert!(record.valid && !record.trap);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RvfiRecord<W> {
    /// The record describes a retired instruction (`rvfi_valid`).
    pub valid: bool,
    /// Retirement index, starting at zero (`rvfi_order`).
    pub order: u64,
    /// The retired instruction word (`rvfi_insn`).
    pub insn: W,
    /// The instruction trapped (`rvfi_trap`).
    pub trap: bool,
    /// Synchronous exception cause if `trap` (architectural `mcause`).
    pub trap_cause: Option<u32>,
    /// PC before the instruction (`rvfi_pc_rdata`).
    pub pc_rdata: W,
    /// PC after the instruction (`rvfi_pc_wdata`).
    pub pc_wdata: W,
    /// Destination register index; 0 when no register is written
    /// (`rvfi_rd_addr`).
    pub rd_addr: W,
    /// Value written to the destination register (`rvfi_rd_wdata`);
    /// must read as zero when `rd_addr == 0`, per the RVFI convention.
    pub rd_wdata: W,
}

impl<W> RvfiRecord<W> {
    /// Maps the word-typed fields through `f`, keeping control metadata.
    ///
    /// Used to concretise a symbolic record once a solver model is known.
    pub fn map_words<V>(self, mut f: impl FnMut(W) -> V) -> RvfiRecord<V> {
        RvfiRecord {
            valid: self.valid,
            order: self.order,
            insn: f(self.insn),
            trap: self.trap,
            trap_cause: self.trap_cause,
            pc_rdata: f(self.pc_rdata),
            pc_wdata: f(self.pc_wdata),
            rd_addr: f(self.rd_addr),
            rd_wdata: f(self.rd_wdata),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_words_preserves_metadata() {
        let record = RvfiRecord::<u32> {
            valid: true,
            order: 3,
            insn: 0x13,
            trap: true,
            trap_cause: Some(2),
            pc_rdata: 0x100,
            pc_wdata: 0x104,
            rd_addr: 5,
            rd_wdata: 42,
        };
        let mapped = record.map_words(|w| w as u64 * 2);
        assert!(mapped.valid);
        assert_eq!(mapped.order, 3);
        assert_eq!(mapped.trap_cause, Some(2));
        assert_eq!(mapped.rd_addr, 10);
        assert_eq!(mapped.rd_wdata, 84);
        assert_eq!(mapped.pc_wdata, 0x208);
    }
}
