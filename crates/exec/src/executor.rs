//! The worker pool: spawn, explore, merge deterministically.

use std::sync::mpsc::Sender;
use std::thread;
use std::time::{Duration, Instant};

use symcosim_symex::{Engine, EngineConfig, PathResult, PathStatus, SolverStats, SymExec};

use crate::budget::Budget;
use crate::frontier::ShardedFrontier;
use crate::progress::ProgressEvent;

/// Configuration of one parallel exploration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Worker thread count (clamped to at least 1).
    pub jobs: usize,
    /// Per-worker engine configuration. `max_paths` is interpreted as the
    /// *global* path budget across all workers; `seed` is perturbed per
    /// worker so random-path popping decorrelates.
    pub engine: EngineConfig,
    /// Optional wall-clock budget for the whole exploration.
    pub deadline: Option<Duration>,
}

impl ExecConfig {
    /// `jobs` workers with the given engine configuration, no deadline.
    pub fn new(jobs: usize, engine: EngineConfig) -> ExecConfig {
        ExecConfig {
            jobs,
            engine,
            deadline: None,
        }
    }
}

/// Per-worker accounting of one exploration.
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// Worker index.
    pub worker: usize,
    /// Paths this worker ran.
    pub paths: usize,
    /// Time spent executing paths (excludes queue waits).
    pub busy: Duration,
    /// Its private SAT solver's cumulative statistics.
    pub stats: SolverStats,
}

/// Aggregate result of an [`explore_parallel`] call.
///
/// `paths` is in **canonical order** (lexicographic by decision vector),
/// not completion order — the order is a pure function of the exploration,
/// independent of worker count and scheduling.
#[derive(Debug, Clone)]
pub struct ParallelOutcome<R> {
    /// All explored paths in canonical (decision-vector) order.
    pub paths: Vec<PathResult<R>>,
    /// Paths that ran to completion.
    pub complete_paths: usize,
    /// Paths cut short (infeasible assumes or decision limits).
    pub partial_paths: usize,
    /// `true` if exploration stopped with work left (path budget,
    /// deadline, or stop predicate).
    pub frontier_exhausted: bool,
    /// Per-worker accounting, indexed by worker.
    pub workers: Vec<WorkerReport>,
    /// Wall-clock duration of the whole exploration.
    pub wall: Duration,
}

impl<R> ParallelOutcome<R> {
    /// Iterates over the values of complete paths (canonical order).
    pub fn complete_values(&self) -> impl Iterator<Item = &R> {
        self.paths
            .iter()
            .filter(|p| p.status == PathStatus::Complete)
            .map(|p| &p.value)
    }
}

/// Explores every feasible path through `task` using `config.jobs` worker
/// threads, stopping early when `stop` returns true for a finished path.
///
/// `task` must satisfy the same determinism contract as
/// [`Engine::explore`]; additionally it is shared by all workers, so it
/// must be `Sync` (it is re-invoked, never mutated). Progress events are
/// emitted on `progress` if given; a dropped receiver is tolerated.
///
/// For a frontier-drained run the returned outcome is identical whatever
/// `config.jobs` is — see the crate documentation for the argument.
pub fn explore_parallel<R, F, P>(
    config: &ExecConfig,
    task: F,
    stop: P,
    progress: Option<Sender<ProgressEvent>>,
) -> ParallelOutcome<R>
where
    R: Send,
    F: Fn(&mut SymExec<'_>) -> R + Sync,
    P: Fn(&PathResult<R>) -> bool + Sync,
{
    let jobs = config.jobs.max(1);
    let start = Instant::now();
    let budget = Budget::new(config.engine.max_paths, config.deadline);
    let frontier = ShardedFrontier::new(jobs);
    frontier.push(0, Vec::new());
    if let Some(tx) = &progress {
        let _ = tx.send(ProgressEvent::Started { jobs });
    }

    let (mut paths, workers) = thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|worker| {
                let tx = progress.clone();
                let (frontier, budget, task, stop) = (&frontier, &budget, &task, &stop);
                let mut engine_config = config.engine.clone();
                engine_config.seed ^= (worker as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                scope.spawn(move || {
                    let strategy = engine_config.strategy;
                    let mut rng = engine_config.seed | 1;
                    let mut engine = Engine::new(engine_config);
                    let mut local: Vec<PathResult<R>> = Vec::new();
                    let mut busy = Duration::ZERO;
                    while let Some(prefix) = frontier.acquire(worker, strategy, &mut rng, budget) {
                        if !budget.claim() {
                            // Path budget spent: retire the job unrun and
                            // bring the whole exploration down.
                            frontier.finish(worker, Vec::new());
                            budget.cancel();
                            break;
                        }
                        let t0 = Instant::now();
                        let outcome = engine.run_prefix(prefix, task);
                        busy += t0.elapsed();
                        if stop(&outcome.result) {
                            budget.cancel();
                        }
                        frontier.finish(worker, outcome.forks);
                        if let Some(tx) = &tx {
                            let _ = tx.send(ProgressEvent::PathDone {
                                worker,
                                depth: outcome.result.decisions.len(),
                                paths_done: budget.claimed(),
                                queued: frontier.pending(),
                                elapsed_ms: start.elapsed().as_millis() as u64,
                            });
                        }
                        local.push(outcome.result);
                    }
                    let stats = engine.backend().stats();
                    if let Some(tx) = &tx {
                        let _ = tx.send(ProgressEvent::WorkerDone {
                            worker,
                            paths: local.len(),
                            busy_ms: busy.as_millis() as u64,
                            solver: stats,
                        });
                    }
                    let report = WorkerReport {
                        worker,
                        paths: local.len(),
                        busy,
                        stats,
                    };
                    (local, report)
                })
            })
            .collect();
        let mut paths = Vec::new();
        let mut workers = Vec::new();
        for handle in handles {
            let (local, report) = handle.join().expect("worker panicked");
            paths.extend(local);
            workers.push(report);
        }
        (paths, workers)
    });

    // Canonical merge: explored decision vectors are pairwise prefix-free,
    // so their lexicographic order is total and schedule-independent.
    paths.sort_by(|a, b| a.decisions.cmp(&b.decisions));
    let complete = paths
        .iter()
        .filter(|p| p.status == PathStatus::Complete)
        .count();
    let truncated = budget.cancelled() || frontier.pending() > 0;
    if let Some(tx) = &progress {
        let _ = tx.send(ProgressEvent::Finished {
            paths: paths.len(),
            wall_ms: start.elapsed().as_millis() as u64,
            truncated,
        });
    }
    ParallelOutcome {
        complete_paths: complete,
        partial_paths: paths.len() - complete,
        frontier_exhausted: truncated,
        workers,
        wall: start.elapsed(),
        paths,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use symcosim_symex::{Domain, SearchStrategy};

    /// Four decisions over distinct bits of one symbol: 16 feasible paths.
    fn four_bit_task(exec: &mut SymExec<'_>) -> u32 {
        let x = exec.fresh_word("x");
        let mut value = 0u32;
        for bit in 0..4 {
            let field = exec.field(x, bit, bit);
            let one = exec.const_word(1);
            let set = exec.eq_w(field, one);
            if exec.decide(set) {
                value |= 1 << bit;
            }
        }
        value
    }

    fn config(jobs: usize) -> ExecConfig {
        ExecConfig::new(jobs, EngineConfig::default())
    }

    /// A printable fingerprint of everything a merged report is built from.
    fn fingerprint(outcome: &ParallelOutcome<u32>) -> Vec<String> {
        outcome
            .paths
            .iter()
            .map(|p| {
                format!(
                    "{:?} value={} status={:?} vector={:?}",
                    p.decisions,
                    p.value,
                    p.status,
                    p.test_vector.as_ref().map(|v| v.to_string())
                )
            })
            .collect()
    }

    #[test]
    fn drained_runs_are_identical_across_worker_counts() {
        let baseline = explore_parallel(&config(1), four_bit_task, |_| false, None);
        assert_eq!(baseline.paths.len(), 16);
        assert!(!baseline.frontier_exhausted);
        let mut values: Vec<u32> = baseline.complete_values().copied().collect();
        values.sort_unstable();
        assert_eq!(values, (0..16).collect::<Vec<u32>>());

        for jobs in [2, 4] {
            let outcome = explore_parallel(&config(jobs), four_bit_task, |_| false, None);
            assert_eq!(fingerprint(&outcome), fingerprint(&baseline), "jobs={jobs}");
            assert_eq!(outcome.workers.len(), jobs);
        }
    }

    #[test]
    fn all_strategies_drain_to_the_same_merge() {
        let baseline = explore_parallel(&config(1), four_bit_task, |_| false, None);
        for strategy in [SearchStrategy::Bfs, SearchStrategy::RandomPath] {
            let mut cfg = config(3);
            cfg.engine.strategy = strategy;
            let outcome = explore_parallel(&cfg, four_bit_task, |_| false, None);
            assert_eq!(
                fingerprint(&outcome),
                fingerprint(&baseline),
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn repeated_runs_are_identical() {
        let first = explore_parallel(&config(4), four_bit_task, |_| false, None);
        let second = explore_parallel(&config(4), four_bit_task, |_| false, None);
        assert_eq!(fingerprint(&first), fingerprint(&second));
    }

    #[test]
    fn stop_predicate_cancels_the_run() {
        let outcome = explore_parallel(&config(2), four_bit_task, |p| p.value == 5, None);
        assert!(outcome.paths.iter().any(|p| p.value == 5));
        assert!(outcome.frontier_exhausted, "forks were left unexplored");
    }

    #[test]
    fn path_budget_truncates() {
        let mut cfg = config(2);
        cfg.engine.max_paths = 5;
        let outcome = explore_parallel(&cfg, four_bit_task, |_| false, None);
        assert!(outcome.paths.len() <= 5, "{} paths", outcome.paths.len());
        assert!(outcome.frontier_exhausted);
    }

    #[test]
    fn expired_deadline_stops_immediately() {
        let mut cfg = config(2);
        cfg.deadline = Some(Duration::ZERO);
        let outcome = explore_parallel(&cfg, four_bit_task, |_| false, None);
        assert!(outcome.paths.is_empty());
        assert!(outcome.frontier_exhausted);
    }

    #[test]
    fn progress_events_bracket_the_run() {
        let (tx, rx) = mpsc::channel();
        let outcome = explore_parallel(&config(2), four_bit_task, |_| false, Some(tx));
        let events: Vec<ProgressEvent> = rx.iter().collect();
        assert!(matches!(
            events.first(),
            Some(ProgressEvent::Started { jobs: 2 })
        ));
        assert!(matches!(
            events.last(),
            Some(ProgressEvent::Finished {
                paths: 16,
                truncated: false,
                ..
            })
        ));
        let path_events = events
            .iter()
            .filter(|e| matches!(e, ProgressEvent::PathDone { .. }))
            .count();
        assert_eq!(path_events, outcome.paths.len());
        let worker_events = events
            .iter()
            .filter(|e| matches!(e, ProgressEvent::WorkerDone { .. }))
            .count();
        assert_eq!(worker_events, 2);
    }

    #[test]
    fn infeasible_paths_survive_the_merge() {
        // assume() kills one branch; parallel and sequential agree on the
        // partial-path accounting.
        let task = |exec: &mut SymExec<'_>| {
            let x = exec.fresh_word("x");
            let ten = exec.const_word(10);
            let lt = exec.ult(x, ten);
            let five = exec.const_word(5);
            let big = exec.ult(five, x);
            if exec.decide(lt) {
                // x < 10: now require x > 5 and x < 3 — contradiction on
                // the sub-branch that also decided x < 3.
                exec.assume(big);
                let three = exec.const_word(3);
                let small = exec.ult(x, three);
                exec.assume(small);
                1
            } else {
                0
            }
        };
        let seq = explore_parallel(&config(1), task, |_| false, None);
        let par = explore_parallel(&config(4), task, |_| false, None);
        assert_eq!(seq.complete_paths, par.complete_paths);
        assert_eq!(seq.partial_paths, par.partial_paths);
        assert!(seq.partial_paths >= 1, "the contradiction must show up");
    }
}
