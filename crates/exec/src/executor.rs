//! The worker pool: spawn, explore, merge deterministically.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::thread;
use std::time::{Duration, Instant};

use symcosim_symex::{
    CoreReplayUnit, Engine, EngineConfig, ForkEngine, ForkJob, ForkTask, PathResult, PathStatus,
    ProofAuditStats, QueryCacheStats, SolverChainStats, SolverStats, SymExec,
};

use crate::budget::Budget;
use crate::frontier::ShardedFrontier;
use crate::progress::ProgressEvent;

/// Configuration of one parallel exploration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Worker thread count (clamped to at least 1).
    pub jobs: usize,
    /// Per-worker engine configuration. `max_paths` is interpreted as the
    /// *global* path budget across all workers; `seed` is perturbed per
    /// worker so random-path popping decorrelates.
    pub engine: EngineConfig,
    /// Optional wall-clock budget for the whole exploration.
    pub deadline: Option<Duration>,
}

impl ExecConfig {
    /// `jobs` workers with the given engine configuration, no deadline.
    pub fn new(jobs: usize, engine: EngineConfig) -> ExecConfig {
        ExecConfig {
            jobs,
            engine,
            deadline: None,
        }
    }
}

/// Per-worker accounting of one exploration.
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// Worker index.
    pub worker: usize,
    /// Path records this worker produced.
    pub paths: usize,
    /// Of those, records recovered from merged physical paths (a merged
    /// path representing *k* arms contributes *k − 1*; always zero when
    /// state merging is off).
    pub merged_paths: usize,
    /// Time spent executing paths (excludes queue waits).
    pub busy: Duration,
    /// Its private SAT solver's cumulative statistics.
    pub stats: SolverStats,
    /// Its feasibility-query cache's hit/miss counters.
    pub cache: QueryCacheStats,
    /// Its solver chain's slicing and caching counters.
    pub chain: SolverChainStats,
    /// Its proof auditor's certification counters (all zero when
    /// auditing is off).
    pub audit: ProofAuditStats,
    /// The first answer its auditor refused to certify, if any.
    pub audit_failure: Option<String>,
    /// Conflict cones its auditor certified, for the offline audit
    /// artifact. Empty when auditing is off.
    pub audit_units: Vec<CoreReplayUnit>,
}

/// Aggregate result of an [`explore_parallel`] call.
///
/// `paths` is in **canonical order** (lexicographic by decision vector),
/// not completion order — the order is a pure function of the exploration,
/// independent of worker count and scheduling.
#[derive(Debug, Clone)]
pub struct ParallelOutcome<R> {
    /// All explored paths in canonical (decision-vector) order.
    pub paths: Vec<PathResult<R>>,
    /// Paths that ran to completion.
    pub complete_paths: usize,
    /// Paths cut short (infeasible assumes or decision limits).
    pub partial_paths: usize,
    /// `true` if exploration stopped with work left (path budget,
    /// deadline, or stop predicate).
    pub frontier_exhausted: bool,
    /// Path records recovered from merged physical paths across all
    /// workers (see [`EngineConfig::merge`]); zero when merging is off.
    pub merged_paths: usize,
    /// Frontier jobs still queued when exploration stopped — a lower
    /// bound on the paths the truncation dropped. Zero when the
    /// frontier drained.
    pub paths_dropped: usize,
    /// Per-worker accounting, indexed by worker.
    pub workers: Vec<WorkerReport>,
    /// Wall-clock duration of the whole exploration.
    pub wall: Duration,
}

impl<R> ParallelOutcome<R> {
    /// Iterates over the values of complete paths (canonical order).
    pub fn complete_values(&self) -> impl Iterator<Item = &R> {
        self.paths
            .iter()
            .filter(|p| p.status == PathStatus::Complete)
            .map(|p| &p.value)
    }
}

/// Explores every feasible path through `task` using `config.jobs` worker
/// threads, stopping early when `stop` returns true for a finished path.
///
/// `task` must satisfy the same determinism contract as
/// [`Engine::explore`]; additionally it is shared by all workers, so it
/// must be `Sync` (it is re-invoked, never mutated). Progress events are
/// emitted on `progress` if given; a dropped receiver is tolerated.
///
/// For a frontier-drained run the returned outcome is identical whatever
/// `config.jobs` is — see the crate documentation for the argument.
pub fn explore_parallel<R, F, P>(
    config: &ExecConfig,
    task: F,
    stop: P,
    progress: Option<Sender<ProgressEvent>>,
) -> ParallelOutcome<R>
where
    R: Send,
    F: Fn(&mut SymExec<'_>) -> R + Sync,
    P: Fn(&PathResult<R>) -> bool + Sync,
{
    let jobs = config.jobs.max(1);
    let start = Instant::now();
    let budget = Budget::new(config.engine.max_paths, config.deadline);
    let frontier = ShardedFrontier::new(jobs);
    frontier.push(0, Vec::new());
    if let Some(tx) = &progress {
        let _ = tx.send(ProgressEvent::Started { jobs });
    }

    let (mut paths, workers) = thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|worker| {
                let tx = progress.clone();
                let (frontier, budget, task, stop) = (&frontier, &budget, &task, &stop);
                let mut engine_config = config.engine.clone();
                engine_config.seed ^= (worker as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                scope.spawn(move || {
                    let strategy = engine_config.strategy;
                    let mut rng = engine_config.seed | 1;
                    let mut engine = Engine::new(engine_config);
                    let mut local: Vec<PathResult<R>> = Vec::new();
                    let mut busy = Duration::ZERO;
                    while let Some(prefix) = frontier.acquire(worker, strategy, &mut rng, budget) {
                        if !budget.claim() {
                            // Path budget spent: retire the job unrun and
                            // bring the whole exploration down.
                            frontier.finish(worker, Vec::new());
                            budget.cancel();
                            break;
                        }
                        let t0 = Instant::now();
                        let outcome = engine.run_prefix(prefix, task);
                        busy += t0.elapsed();
                        if stop(&outcome.result) {
                            budget.cancel();
                        }
                        frontier.finish(worker, outcome.forks);
                        if let Some(tx) = &tx {
                            let _ = tx.send(ProgressEvent::PathDone {
                                worker,
                                depth: outcome.result.decisions.len(),
                                paths_done: budget.claimed(),
                                queued: frontier.pending(),
                                elapsed_ms: start.elapsed().as_millis() as u64,
                            });
                        }
                        local.push(outcome.result);
                    }
                    let stats = engine.backend().stats();
                    let cache = engine.backend().query_cache_stats();
                    let chain = engine.backend().solver_chain_stats();
                    let audit = engine.backend().proof_audit_stats();
                    let audit_failure = engine.backend().proof_audit_failure().map(String::from);
                    let audit_units = engine.take_audit_units();
                    if let Some(tx) = &tx {
                        let _ = tx.send(ProgressEvent::WorkerDone {
                            worker,
                            paths: local.len(),
                            merged: 0,
                            busy_ms: busy.as_millis() as u64,
                            solver: stats,
                            cache,
                            chain,
                            audit,
                        });
                    }
                    let report = WorkerReport {
                        worker,
                        paths: local.len(),
                        merged_paths: 0,
                        busy,
                        stats,
                        cache,
                        chain,
                        audit,
                        audit_failure,
                        audit_units,
                    };
                    (local, report)
                })
            })
            .collect();
        let mut paths = Vec::new();
        let mut workers = Vec::new();
        for handle in handles {
            let (local, report) = handle.join().expect("worker panicked");
            paths.extend(local);
            workers.push(report);
        }
        (paths, workers)
    });

    // Canonical merge: explored decision vectors are pairwise prefix-free,
    // so their lexicographic order is total and schedule-independent.
    paths.sort_by(|a, b| a.decisions.cmp(&b.decisions));
    let complete = paths
        .iter()
        .filter(|p| p.status == PathStatus::Complete)
        .count();
    let truncated = budget.cancelled() || frontier.pending() > 0;
    if let Some(tx) = &progress {
        let _ = tx.send(ProgressEvent::Finished {
            paths: paths.len(),
            merged: 0,
            wall_ms: start.elapsed().as_millis() as u64,
            truncated,
        });
    }
    ParallelOutcome {
        complete_paths: complete,
        partial_paths: paths.len() - complete,
        frontier_exhausted: truncated,
        merged_paths: 0,
        paths_dropped: frontier.pending(),
        workers,
        wall: start.elapsed(),
        paths,
    }
}

/// One frontier entry of a fork-engine exploration: the job plus the
/// worker whose engine produced it.
///
/// A snapshot embeds `TermId`s and task state minted by the owner's
/// private term context, so it is only meaningful inside that worker's
/// engine. A stolen entry is degraded to its recorded decision prefixes
/// ([`ForkJob::split_on_spill`] — a merged job re-splits into one replay
/// per arm) and replayed from the root — stealing trades the snapshot
/// for load balance.
struct ForkEntry<S> {
    owner: usize,
    job: ForkJob<S>,
}

/// [`explore_parallel`] for a [`ForkTask`]: every worker owns a private
/// [`ForkEngine`] and resumes sibling paths from copy-on-write snapshots
/// instead of re-executing decision prefixes.
///
/// Snapshots are worker-affine (see [`ForkEntry`]); jobs that cross
/// workers through stealing, and forks past the global
/// [`EngineConfig::max_resident_snapshots`] bound, fall back to prefix
/// replay. Both fallbacks change performance only — the per-path results,
/// and therefore the canonical merge, are identical either way.
pub fn explore_parallel_fork<T, P>(
    config: &ExecConfig,
    task: &T,
    stop: P,
    progress: Option<Sender<ProgressEvent>>,
) -> ParallelOutcome<T::Out>
where
    T: ForkTask + Sync,
    T::State: Send + Sync,
    T::Out: Send,
    P: Fn(&PathResult<T::Out>) -> bool + Sync,
{
    let jobs = config.jobs.max(1);
    let start = Instant::now();
    let budget = Budget::new(config.engine.max_paths, config.deadline);
    let frontier: ShardedFrontier<ForkEntry<T::State>> = ShardedFrontier::new(jobs);
    let resident = AtomicUsize::new(0);
    let max_resident = config.engine.max_resident_snapshots;
    frontier.push(
        0,
        ForkEntry {
            owner: 0,
            job: ForkJob::root(),
        },
    );
    if let Some(tx) = &progress {
        let _ = tx.send(ProgressEvent::Started { jobs });
    }

    let (mut paths, workers) = thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|worker| {
                let tx = progress.clone();
                let (frontier, budget, resident, stop) = (&frontier, &budget, &resident, &stop);
                let mut engine_config = config.engine.clone();
                engine_config.seed ^= (worker as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                scope.spawn(move || {
                    let strategy = engine_config.strategy;
                    let mut rng = engine_config.seed | 1;
                    let mut engine = ForkEngine::new(engine_config);
                    let mut local: Vec<PathResult<T::Out>> = Vec::new();
                    let mut merged = 0usize;
                    let mut busy = Duration::ZERO;
                    while let Some(entry) = frontier.acquire(worker, strategy, &mut rng, budget) {
                        let mut job = entry.job;
                        let mut entries: Vec<ForkEntry<T::State>> = Vec::new();
                        if job.has_snapshot() {
                            resident.fetch_sub(1, Ordering::Relaxed);
                            if entry.owner != worker {
                                // Stolen: the snapshot is meaningless in
                                // this worker's engine. A merged job
                                // re-splits into per-arm prefix replays;
                                // the extra arms rejoin the frontier.
                                let mut split = job.split_on_spill().into_iter();
                                job = split.next().expect("split yields the primary");
                                entries.extend(split.map(|job| ForkEntry { owner: worker, job }));
                            }
                        }
                        if !budget.claim() {
                            // Path budget spent: retire the job unrun and
                            // bring the whole exploration down.
                            frontier.finish(worker, Vec::new());
                            budget.cancel();
                            break;
                        }
                        let t0 = Instant::now();
                        // Bound the merge lookahead by the slots the global
                        // budget still admits beyond the queued jobs (the
                        // claim above already covers this job). Advisory
                        // under concurrency, but merge decisions never
                        // change the record set — only physical-path
                        // accounting.
                        engine.set_merge_headroom(
                            budget.remaining().saturating_sub(frontier.pending()),
                        );
                        let (results, forks) = engine.run_job(job, task);
                        busy += t0.elapsed();
                        merged += results.len().saturating_sub(1);
                        if results.iter().any(&stop) {
                            budget.cancel();
                        }
                        entries.extend(
                            forks
                                .into_iter()
                                .flat_map(|fork| {
                                    let fork = if fork.has_snapshot() {
                                        let admitted = resident
                                            .fetch_update(
                                                Ordering::Relaxed,
                                                Ordering::Relaxed,
                                                |n| (n < max_resident).then_some(n + 1),
                                            )
                                            .is_ok();
                                        if admitted {
                                            vec![fork]
                                        } else {
                                            // Over the resident bound: a merged
                                            // job re-splits rather than spills.
                                            fork.split_on_spill()
                                        }
                                    } else {
                                        vec![fork]
                                    };
                                    fork.into_iter()
                                })
                                .map(|job| ForkEntry { owner: worker, job }),
                        );
                        frontier.finish(worker, entries);
                        if let Some(tx) = &tx {
                            for result in &results {
                                let _ = tx.send(ProgressEvent::PathDone {
                                    worker,
                                    depth: result.decisions.len(),
                                    paths_done: budget.claimed(),
                                    queued: frontier.pending(),
                                    elapsed_ms: start.elapsed().as_millis() as u64,
                                });
                            }
                        }
                        local.extend(results);
                    }
                    let stats = engine.backend().stats();
                    let cache = engine.backend().query_cache_stats();
                    let chain = engine.backend().solver_chain_stats();
                    let audit = engine.backend().proof_audit_stats();
                    let audit_failure = engine.backend().proof_audit_failure().map(String::from);
                    let audit_units = engine.take_audit_units();
                    if let Some(tx) = &tx {
                        let _ = tx.send(ProgressEvent::WorkerDone {
                            worker,
                            paths: local.len(),
                            merged,
                            busy_ms: busy.as_millis() as u64,
                            solver: stats,
                            cache,
                            chain,
                            audit,
                        });
                    }
                    let report = WorkerReport {
                        worker,
                        paths: local.len(),
                        merged_paths: merged,
                        busy,
                        stats,
                        cache,
                        chain,
                        audit,
                        audit_failure,
                        audit_units,
                    };
                    (local, report)
                })
            })
            .collect();
        let mut paths = Vec::new();
        let mut workers = Vec::new();
        for handle in handles {
            let (local, report) = handle.join().expect("worker panicked");
            paths.extend(local);
            workers.push(report);
        }
        (paths, workers)
    });

    // Same canonical merge as `explore_parallel` (see the crate docs).
    paths.sort_by(|a, b| a.decisions.cmp(&b.decisions));
    let complete = paths
        .iter()
        .filter(|p| p.status == PathStatus::Complete)
        .count();
    let merged_paths: usize = workers.iter().map(|w| w.merged_paths).sum();
    let truncated = budget.cancelled() || frontier.pending() > 0;
    if let Some(tx) = &progress {
        let _ = tx.send(ProgressEvent::Finished {
            paths: paths.len(),
            merged: merged_paths,
            wall_ms: start.elapsed().as_millis() as u64,
            truncated,
        });
    }
    ParallelOutcome {
        complete_paths: complete,
        partial_paths: paths.len() - complete,
        frontier_exhausted: truncated,
        merged_paths,
        paths_dropped: frontier.pending(),
        workers,
        wall: start.elapsed(),
        paths,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use symcosim_symex::{Domain, ForkExec, SearchStrategy, StepResult};

    /// Four decisions over distinct bits of one symbol: 16 feasible paths.
    fn four_bit_task(exec: &mut SymExec<'_>) -> u32 {
        let x = exec.fresh_word("x");
        let mut value = 0u32;
        for bit in 0..4 {
            let field = exec.field(x, bit, bit);
            let one = exec.const_word(1);
            let set = exec.eq_w(field, one);
            if exec.decide(set) {
                value |= 1 << bit;
            }
        }
        value
    }

    fn config(jobs: usize) -> ExecConfig {
        ExecConfig::new(jobs, EngineConfig::default())
    }

    /// A printable fingerprint of everything a merged report is built from.
    fn fingerprint(outcome: &ParallelOutcome<u32>) -> Vec<String> {
        outcome
            .paths
            .iter()
            .map(|p| {
                format!(
                    "{:?} value={} status={:?} vector={:?}",
                    p.decisions,
                    p.value,
                    p.status,
                    p.test_vector.as_ref().map(|v| v.to_string())
                )
            })
            .collect()
    }

    #[test]
    fn drained_runs_are_identical_across_worker_counts() {
        let baseline = explore_parallel(&config(1), four_bit_task, |_| false, None);
        assert_eq!(baseline.paths.len(), 16);
        assert!(!baseline.frontier_exhausted);
        let mut values: Vec<u32> = baseline.complete_values().copied().collect();
        values.sort_unstable();
        assert_eq!(values, (0..16).collect::<Vec<u32>>());

        for jobs in [2, 4] {
            let outcome = explore_parallel(&config(jobs), four_bit_task, |_| false, None);
            assert_eq!(fingerprint(&outcome), fingerprint(&baseline), "jobs={jobs}");
            assert_eq!(outcome.workers.len(), jobs);
        }
    }

    #[test]
    fn all_strategies_drain_to_the_same_merge() {
        let baseline = explore_parallel(&config(1), four_bit_task, |_| false, None);
        for strategy in [SearchStrategy::Bfs, SearchStrategy::RandomPath] {
            let mut cfg = config(3);
            cfg.engine.strategy = strategy;
            let outcome = explore_parallel(&cfg, four_bit_task, |_| false, None);
            assert_eq!(
                fingerprint(&outcome),
                fingerprint(&baseline),
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn repeated_runs_are_identical() {
        let first = explore_parallel(&config(4), four_bit_task, |_| false, None);
        let second = explore_parallel(&config(4), four_bit_task, |_| false, None);
        assert_eq!(fingerprint(&first), fingerprint(&second));
    }

    #[test]
    fn stop_predicate_cancels_the_run() {
        let outcome = explore_parallel(&config(2), four_bit_task, |p| p.value == 5, None);
        assert!(outcome.paths.iter().any(|p| p.value == 5));
        assert!(outcome.frontier_exhausted, "forks were left unexplored");
    }

    #[test]
    fn path_budget_truncates() {
        let mut cfg = config(2);
        cfg.engine.max_paths = 5;
        let outcome = explore_parallel(&cfg, four_bit_task, |_| false, None);
        assert!(outcome.paths.len() <= 5, "{} paths", outcome.paths.len());
        assert!(outcome.frontier_exhausted);
    }

    #[test]
    fn expired_deadline_stops_immediately() {
        let mut cfg = config(2);
        cfg.deadline = Some(Duration::ZERO);
        let outcome = explore_parallel(&cfg, four_bit_task, |_| false, None);
        assert!(outcome.paths.is_empty());
        assert!(outcome.frontier_exhausted);
    }

    #[test]
    fn progress_events_bracket_the_run() {
        let (tx, rx) = mpsc::channel();
        let outcome = explore_parallel(&config(2), four_bit_task, |_| false, Some(tx));
        let events: Vec<ProgressEvent> = rx.iter().collect();
        assert!(matches!(
            events.first(),
            Some(ProgressEvent::Started { jobs: 2 })
        ));
        assert!(matches!(
            events.last(),
            Some(ProgressEvent::Finished {
                paths: 16,
                truncated: false,
                ..
            })
        ));
        let path_events = events
            .iter()
            .filter(|e| matches!(e, ProgressEvent::PathDone { .. }))
            .count();
        assert_eq!(path_events, outcome.paths.len());
        let worker_events = events
            .iter()
            .filter(|e| matches!(e, ProgressEvent::WorkerDone { .. }))
            .count();
        assert_eq!(worker_events, 2);
    }

    /// [`four_bit_task`] as a [`ForkTask`]: one decision per step, so the
    /// fork engine snapshots between bits.
    struct ForkBits;

    #[derive(Clone)]
    struct ForkBitsState {
        value: u32,
        bit: u32,
    }

    impl ForkTask for ForkBits {
        type State = ForkBitsState;
        type Out = u32;

        fn start(&self, _exec: &mut ForkExec) -> ForkBitsState {
            ForkBitsState { value: 0, bit: 0 }
        }

        fn step(&self, state: &mut ForkBitsState, exec: &mut ForkExec) -> StepResult<u32> {
            if state.bit == 4 {
                return StepResult::Done(state.value);
            }
            let x = exec.fresh_word("x");
            let field = exec.field(x, state.bit, state.bit);
            let one = exec.const_word(1);
            let set = exec.eq_w(field, one);
            if exec.decide(set) {
                state.value |= 1 << state.bit;
            }
            state.bit += 1;
            StepResult::Continue
        }
    }

    #[test]
    fn fork_executor_matches_reexec_executor() {
        let baseline = explore_parallel(&config(1), four_bit_task, |_| false, None);
        for jobs in [1, 3] {
            let outcome = explore_parallel_fork(&config(jobs), &ForkBits, |_| false, None);
            assert_eq!(fingerprint(&outcome), fingerprint(&baseline), "jobs={jobs}");
            assert_eq!(outcome.workers.len(), jobs);
        }
    }

    #[test]
    fn snapshot_bound_zero_degrades_to_replay() {
        let baseline = explore_parallel(&config(1), four_bit_task, |_| false, None);
        let mut cfg = config(2);
        cfg.engine.max_resident_snapshots = 0;
        let outcome = explore_parallel_fork(&cfg, &ForkBits, |_| false, None);
        assert_eq!(fingerprint(&outcome), fingerprint(&baseline));
    }

    #[test]
    fn infeasible_paths_survive_the_merge() {
        // assume() kills one branch; parallel and sequential agree on the
        // partial-path accounting.
        let task = |exec: &mut SymExec<'_>| {
            let x = exec.fresh_word("x");
            let ten = exec.const_word(10);
            let lt = exec.ult(x, ten);
            let five = exec.const_word(5);
            let big = exec.ult(five, x);
            if exec.decide(lt) {
                // x < 10: now require x > 5 and x < 3 — contradiction on
                // the sub-branch that also decided x < 3.
                exec.assume(big);
                let three = exec.const_word(3);
                let small = exec.ult(x, three);
                exec.assume(small);
                1
            } else {
                0
            }
        };
        let seq = explore_parallel(&config(1), task, |_| false, None);
        let par = explore_parallel(&config(4), task, |_| false, None);
        assert_eq!(seq.complete_paths, par.complete_paths);
        assert_eq!(seq.partial_paths, par.partial_paths);
        assert!(seq.partial_paths >= 1, "the contradiction must show up");
    }
}
