//! Sharded work queue of path-exploration jobs with work stealing.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use symcosim_symex::SearchStrategy;

use crate::budget::Budget;

/// One queue of pending jobs per worker, plus the termination protocol.
///
/// The payload `T` is whatever identifies one unit of path work — a bare
/// decision prefix (`Vec<bool>`) for the re-execution engine, a
/// [`ForkJob`](symcosim_symex::ForkJob) wrapper carrying an optional state
/// snapshot for the fork engine.
///
/// Workers pop from their own shard using the configured
/// [`SearchStrategy`] and steal from siblings' *front* when they run dry —
/// the shallowest queued job heads the largest unexplored subtree, so
/// stealing it moves the most work.
///
/// Termination tracks two counters under one lock: `pending` (queued, not
/// yet acquired) and `in_flight` (acquired, not yet retired). Forks are
/// queued *before* their parent is retired, so `pending + in_flight`
/// reaching zero proves the exploration is drained — a job can never be
/// in limbo.
#[derive(Debug)]
pub struct ShardedFrontier<T> {
    shards: Vec<Mutex<VecDeque<T>>>,
    sync: Mutex<Counters>,
    wakeup: Condvar,
}

#[derive(Debug, Default)]
struct Counters {
    pending: usize,
    in_flight: usize,
}

impl<T> ShardedFrontier<T> {
    /// An empty frontier with one shard per worker.
    pub fn new(shards: usize) -> ShardedFrontier<T> {
        assert!(shards > 0, "at least one shard");
        ShardedFrontier {
            shards: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            sync: Mutex::new(Counters::default()),
            wakeup: Condvar::new(),
        }
    }

    /// Queues `job` on `shard`.
    pub fn push(&self, shard: usize, job: T) {
        self.sync.lock().expect("frontier lock").pending += 1;
        self.shards[shard]
            .lock()
            .expect("shard lock")
            .push_back(job);
        self.wakeup.notify_one();
    }

    /// Number of queued (not yet acquired) jobs right now.
    pub fn pending(&self) -> usize {
        self.sync.lock().expect("frontier lock").pending
    }

    /// Blocks until a job is available (returns it), the exploration is
    /// drained, or `budget` is cancelled (both return `None`).
    ///
    /// Every acquired job must be retired with [`ShardedFrontier::finish`].
    pub fn acquire(
        &self,
        worker: usize,
        strategy: SearchStrategy,
        rng: &mut u64,
        budget: &Budget,
    ) -> Option<T> {
        loop {
            if budget.cancelled() {
                return None;
            }
            if let Some(job) = self.try_pop(worker, strategy, rng) {
                let mut sync = self.sync.lock().expect("frontier lock");
                sync.pending -= 1;
                sync.in_flight += 1;
                return Some(job);
            }
            let sync = self.sync.lock().expect("frontier lock");
            if sync.pending == 0 && sync.in_flight == 0 {
                return None;
            }
            // Bounded wait, then re-scan: a push can land between the
            // failed scan and taking the lock, and cancellation must be
            // noticed promptly even with no traffic.
            let _ = self
                .wakeup
                .wait_timeout(sync, Duration::from_millis(2))
                .expect("frontier lock");
        }
    }

    /// Retires an acquired job, queueing the `forks` it produced on the
    /// worker's own shard first (see the type-level invariant).
    pub fn finish(&self, worker: usize, forks: Vec<T>) {
        for fork in forks {
            self.push(worker, fork);
        }
        let mut sync = self.sync.lock().expect("frontier lock");
        sync.in_flight -= 1;
        if sync.pending == 0 && sync.in_flight == 0 {
            drop(sync);
            self.wakeup.notify_all();
        }
    }

    fn try_pop(&self, worker: usize, strategy: SearchStrategy, rng: &mut u64) -> Option<T> {
        {
            let mut own = self.shards[worker].lock().expect("shard lock");
            let popped = match strategy {
                SearchStrategy::Dfs => own.pop_back(),
                SearchStrategy::Bfs => own.pop_front(),
                SearchStrategy::RandomPath => {
                    if own.is_empty() {
                        None
                    } else {
                        let index = (xorshift(rng) as usize) % own.len();
                        own.swap_remove_back(index)
                    }
                }
            };
            if popped.is_some() {
                return popped;
            }
        }
        for offset in 1..self.shards.len() {
            let victim = (worker + offset) % self.shards.len();
            if let Some(prefix) = self.shards[victim].lock().expect("shard lock").pop_front() {
                return Some(prefix);
            }
        }
        None
    }
}

/// xorshift64* step — the same deterministic in-tree generator the engine's
/// random-path strategy uses.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_acquire_finish_drains() {
        let frontier = ShardedFrontier::new(2);
        let budget = Budget::new(100, None);
        let mut rng = 1u64;
        frontier.push(0, vec![true]);
        let job = frontier
            .acquire(0, SearchStrategy::Dfs, &mut rng, &budget)
            .expect("queued job");
        assert_eq!(job, vec![true]);
        frontier.finish(0, vec![vec![true, false]]);
        assert_eq!(frontier.pending(), 1);
        let fork = frontier
            .acquire(1, SearchStrategy::Dfs, &mut rng, &budget)
            .expect("stolen fork");
        assert_eq!(fork, vec![true, false]);
        frontier.finish(1, Vec::new());
        assert!(frontier
            .acquire(0, SearchStrategy::Dfs, &mut rng, &budget)
            .is_none());
    }

    #[test]
    fn cancellation_unblocks_acquire() {
        let frontier: ShardedFrontier<Vec<bool>> = ShardedFrontier::new(1);
        let budget = Budget::new(100, None);
        let mut rng = 1u64;
        frontier.push(0, Vec::new());
        let _job = frontier.acquire(0, SearchStrategy::Dfs, &mut rng, &budget);
        budget.cancel();
        // in_flight is still 1, so only cancellation can release this.
        assert!(frontier
            .acquire(0, SearchStrategy::Dfs, &mut rng, &budget)
            .is_none());
    }
}
