//! Global exploration limits shared by all workers.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// The run-wide resource limits of one parallel exploration: a global path
/// budget, an optional wall-clock deadline, and a cooperative cancellation
/// flag (set by the stop predicate, the budget, or an external caller).
///
/// All operations are lock-free; workers poll [`Budget::cancelled`]
/// between paths, so cancellation latency is one path execution.
#[derive(Debug)]
pub struct Budget {
    max_paths: usize,
    claimed: AtomicUsize,
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl Budget {
    /// A budget of at most `max_paths` paths, optionally bounded by a
    /// wall-clock `deadline` starting now.
    pub fn new(max_paths: usize, deadline: Option<Duration>) -> Budget {
        Budget {
            max_paths,
            claimed: AtomicUsize::new(0),
            cancelled: AtomicBool::new(false),
            deadline: deadline.map(|d| Instant::now() + d),
        }
    }

    /// Claims one path slot. Returns `false` when the budget is spent or
    /// the run is cancelled — the caller must not run the path.
    pub fn claim(&self) -> bool {
        if self.cancelled() {
            return false;
        }
        self.claimed.fetch_add(1, Ordering::Relaxed) < self.max_paths
    }

    /// Paths claimed so far (capped at the budget; failed claims overshoot
    /// the raw counter).
    pub fn claimed(&self) -> usize {
        self.claimed.load(Ordering::Relaxed).min(self.max_paths)
    }

    /// Path slots not yet claimed. Advisory in the presence of concurrent
    /// claims — workers use it to bound speculative work (merge
    /// lookahead), never as permission to run a path.
    pub fn remaining(&self) -> usize {
        self.max_paths - self.claimed()
    }

    /// Requests cooperative cancellation of the whole exploration.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether the exploration should stop: cancelled explicitly, or the
    /// deadline has passed (which latches the cancellation flag).
    pub fn cancelled(&self) -> bool {
        if self.cancelled.load(Ordering::SeqCst) {
            return true;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.cancel();
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_stop_at_the_budget() {
        let budget = Budget::new(2, None);
        assert!(budget.claim());
        assert!(budget.claim());
        assert!(!budget.claim());
        assert_eq!(budget.claimed(), 2);
    }

    #[test]
    fn cancel_blocks_further_claims() {
        let budget = Budget::new(10, None);
        assert!(budget.claim());
        budget.cancel();
        assert!(budget.cancelled());
        assert!(!budget.claim());
    }

    #[test]
    fn expired_deadline_latches_cancellation() {
        let budget = Budget::new(10, Some(Duration::ZERO));
        assert!(budget.cancelled());
        assert!(!budget.claim());
    }
}
