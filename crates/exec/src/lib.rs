//! Parallel path-exploration executor.
//!
//! [`explore_parallel`] distributes the decision-prefix jobs a symbolic
//! exploration generates over a pool of worker threads, each owning a
//! private [`Engine`](symcosim_symex::Engine) (term context + SAT solver —
//! the context is not `Sync`, so sharing is not an option).
//! [`explore_parallel_fork`] is the same pool driving
//! [`ForkEngine`](symcosim_symex::ForkEngine)s: frontier entries carry
//! copy-on-write state snapshots where resident (worker-affine, under the
//! [`max_resident_snapshots`](symcosim_symex::EngineConfig::max_resident_snapshots)
//! bound) and degrade to decision-prefix replay where not. The pieces:
//!
//! * [`ShardedFrontier`] — one work queue per worker plus work stealing,
//!   so forks stay local to the worker that produced them until somebody
//!   runs dry,
//! * [`Budget`] — the global path budget, the wall-clock deadline and the
//!   cooperative cancellation flag (`stop_at_first_mismatch`),
//! * [`ProgressEvent`] — structured observability events on an optional
//!   channel (live status lines, JSON logs),
//! * a **deterministic merge**: explored paths are sorted by their decision
//!   vectors, a schedule-independent canonical order, so a drained
//!   exploration produces the same [`ParallelOutcome`] whatever the worker
//!   count or interleaving.
//!
//! # Why the merge is deterministic
//!
//! A path is identified by its decision vector. Feasibility answers are
//! objective — a prefix is SAT or UNSAT regardless of what the solver did
//! before — so the set of explored paths, each path's status and its forks
//! are pure functions of the exploration closure. Model *values* are the
//! one history-dependent quantity (CDCL phase saving and branching
//! activity), which is why the engine extracts test vectors and witnesses
//! from a fresh solver per query (see
//! [`Engine::run_prefix`](symcosim_symex::Engine::run_prefix)). Explored
//! decision vectors are pairwise prefix-free (a forked sibling always
//! extends the point where its parent diverged), so the lexicographic
//! order is total and canonical.
//!
//! Exhaustive (frontier-drained) runs are bit-for-bit reproducible. Runs
//! cut short — path budget, deadline, stop predicate — report a
//! deterministic *content* per path but a scheduling-dependent *subset* of
//! paths; they set [`ParallelOutcome::frontier_exhausted`].
//!
//! The merge is generic in the per-path payload, so anything a path
//! computes rides it unchanged: the coverage certifier (`core::certify`)
//! attaches each path's ternary-cube projection onto the instruction
//! space to the payload, and because drained runs merge canonically, the
//! resulting `symcosim-cert/1` certificate is byte-identical across
//! engines and worker counts — the certificate depends only on the
//! canonical path set, never on the schedule that produced it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod executor;
mod frontier;
mod progress;

pub use budget::Budget;
pub use executor::{
    explore_parallel, explore_parallel_fork, ExecConfig, ParallelOutcome, WorkerReport,
};
pub use frontier::ShardedFrontier;
pub use progress::ProgressEvent;
