//! Structured progress events for live status lines and JSON logs.

use symcosim_symex::{ProofAuditStats, QueryCacheStats, SolverChainStats, SolverStats};

/// One observability event from a parallel exploration.
///
/// Events are emitted on the optional channel passed to
/// [`explore_parallel`](crate::explore_parallel); delivery order between
/// workers is the real execution order, so the stream is inherently
/// non-deterministic (it reports scheduling — the merged result does not
/// depend on it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgressEvent {
    /// Exploration started with this many workers.
    Started {
        /// Worker count.
        jobs: usize,
    },
    /// A worker finished one path.
    PathDone {
        /// Worker index.
        worker: usize,
        /// Decision depth of the finished path.
        depth: usize,
        /// Paths claimed against the budget so far (run-wide).
        paths_done: usize,
        /// Prefixes queued across all shards right now.
        queued: usize,
        /// Milliseconds since exploration start.
        elapsed_ms: u64,
    },
    /// A worker drained out and exited.
    WorkerDone {
        /// Worker index.
        worker: usize,
        /// Path records this worker produced.
        paths: usize,
        /// Of those, records recovered from merged physical paths (a
        /// merged path representing *k* arms contributes *k − 1*; zero
        /// when merging is off).
        merged: usize,
        /// Milliseconds this worker spent executing paths (excludes
        /// queue waits).
        busy_ms: u64,
        /// Its private SAT solver's cumulative statistics.
        solver: SolverStats,
        /// Its feasibility-query cache's hit/miss counters.
        cache: QueryCacheStats,
        /// Its solver chain's slicing and caching counters.
        chain: SolverChainStats,
        /// Its proof auditor's certification counters (all zero when
        /// auditing is off).
        audit: ProofAuditStats,
    },
    /// The exploration finished and the merge is complete.
    Finished {
        /// Total path records explored.
        paths: usize,
        /// Records recovered from merged physical paths across all
        /// workers (zero when state merging is off).
        merged: usize,
        /// Wall-clock milliseconds for the whole exploration.
        wall_ms: u64,
        /// Whether work was left unexplored (budget, deadline or stop
        /// predicate).
        truncated: bool,
    },
}

impl ProgressEvent {
    /// The event as one line of JSON (hand-rolled; every field is numeric
    /// or boolean, so no escaping is needed).
    pub fn to_json(&self) -> String {
        match self {
            ProgressEvent::Started { jobs } => {
                format!("{{\"event\":\"started\",\"jobs\":{jobs}}}")
            }
            ProgressEvent::PathDone {
                worker,
                depth,
                paths_done,
                queued,
                elapsed_ms,
            } => format!(
                "{{\"event\":\"path\",\"worker\":{worker},\"depth\":{depth},\
                 \"paths_done\":{paths_done},\"queued\":{queued},\"elapsed_ms\":{elapsed_ms}}}"
            ),
            ProgressEvent::WorkerDone {
                worker,
                paths,
                merged,
                busy_ms,
                solver,
                cache,
                chain,
                audit,
            } => format!(
                "{{\"event\":\"worker_done\",\"worker\":{worker},\"paths\":{paths},\
                 \"merged_paths\":{merged},\"busy_ms\":{busy_ms},\"solves\":{},\"decisions\":{},\"propagations\":{},\
                 \"conflicts\":{},\"restarts\":{},\"learnt_clauses\":{},\
                 \"db_reductions\":{},\"learned_kept\":{},\
                 \"cache_hits\":{},\"cache_misses\":{},\
                 \"chain_queries\":{},\"chain_preflight_hits\":{},\"chain_slices\":{},\
                 \"chain_slice_hits\":{},\"chain_core_hits\":{},\"chain_model_hits\":{},\
                 \"chain_solves\":{},\"chain_prefix_reuse_hits\":{},\"chain_max_slice\":{},\
                 \"audit_steps\":{},\"audit_models\":{},\"audit_cores\":{},\
                 \"audit_bytes\":{},\"audit_failures\":{}}}",
                solver.solves,
                solver.decisions,
                solver.propagations,
                solver.conflicts,
                solver.restarts,
                solver.learnt_clauses,
                solver.db_reductions,
                solver.learned_kept,
                cache.hits,
                cache.misses,
                chain.queries,
                chain.preflight_hits,
                chain.slices,
                chain.slice_hits,
                chain.core_hits,
                chain.model_hits,
                chain.solves,
                chain.prefix_reuse_hits,
                chain.max_slice,
                audit.steps,
                audit.models,
                audit.cores,
                audit.bytes,
                audit.failures
            ),
            ProgressEvent::Finished {
                paths,
                merged,
                wall_ms,
                truncated,
            } => format!(
                "{{\"event\":\"finished\",\"paths\":{paths},\"merged_paths\":{merged},\
                 \"wall_ms\":{wall_ms},\"truncated\":{truncated}}}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_are_well_formed() {
        let events = [
            ProgressEvent::Started { jobs: 4 },
            ProgressEvent::PathDone {
                worker: 1,
                depth: 7,
                paths_done: 12,
                queued: 3,
                elapsed_ms: 250,
            },
            ProgressEvent::WorkerDone {
                worker: 1,
                paths: 6,
                merged: 1,
                busy_ms: 200,
                solver: SolverStats::default(),
                cache: QueryCacheStats::default(),
                chain: SolverChainStats::default(),
                audit: ProofAuditStats::default(),
            },
            ProgressEvent::Finished {
                paths: 24,
                merged: 2,
                wall_ms: 300,
                truncated: false,
            },
        ];
        for event in events {
            let json = event.to_json();
            assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
            assert_eq!(
                json.matches('{').count(),
                json.matches('}').count(),
                "{json}"
            );
            assert!(json.contains("\"event\":\""), "{json}");
        }
    }

    #[test]
    fn worker_done_json_carries_every_reported_stat_field() {
        // Every statistic the report layer *prints* (the `Display` impls
        // of the three stats structs) must also appear in the
        // `worker_done` progress event — this test is the drift guard.
        // Distinct sentinel values make a dropped or duplicated field
        // observable.
        let solver = SolverStats {
            solves: 101,
            decisions: 102,
            propagations: 103,
            conflicts: 104,
            restarts: 105,
            learnt_clauses: 106,
            db_reductions: 107,
            learned_kept: 108,
        };
        let cache = QueryCacheStats {
            hits: 201,
            misses: 202,
        };
        let chain = SolverChainStats {
            queries: 301,
            preflight_hits: 309,
            slices: 302,
            slice_hits: 303,
            core_hits: 304,
            model_hits: 305,
            solves: 306,
            prefix_reuse_hits: 308,
            max_slice: 307,
        };
        let audit = ProofAuditStats {
            steps: 401,
            models: 402,
            cores: 403,
            bytes: 404,
            failures: 405,
        };
        let json = ProgressEvent::WorkerDone {
            worker: 0,
            paths: 1,
            merged: 0,
            busy_ms: 2,
            solver,
            cache,
            chain,
            audit,
        }
        .to_json();

        let printed = format!("{solver} {cache} {chain} {audit}");
        for pair in printed.split_whitespace() {
            let (field, value) = pair.split_once('=').expect("Display emits key=value");
            assert!(
                json.contains(&format!(":{value}")),
                "stat `{field}` (value {value}) is printed in reports but \
                 missing from the worker_done event:\n{json}"
            );
        }
        // And the round-trip parsers pin the Display forms themselves to
        // the full field sets.
        assert_eq!(printed.matches('=').count(), 8 + 2 + 9 + 5);
        assert_eq!(cache.to_string().parse::<QueryCacheStats>(), Ok(cache));
        assert_eq!(chain.to_string().parse::<SolverChainStats>(), Ok(chain));
        assert_eq!(audit.to_string().parse::<ProofAuditStats>(), Ok(audit));
    }
}
