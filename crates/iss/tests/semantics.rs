//! Architectural semantics tests for the reference ISS (concrete domain).

use symcosim_isa::{encode, BranchKind, CsrOp, Instr, LoadKind, OpKind, Reg, StoreKind, Trap};
use symcosim_iss::{ArrayBus, Iss, IssConfig};
use symcosim_symex::ConcreteDomain;

type Dom = ConcreteDomain;

struct Harness {
    dom: Dom,
    iss: Iss<Dom>,
    bus: ArrayBus<Dom>,
}

impl Harness {
    fn new() -> Harness {
        Harness::with_config(IssConfig::vp_v1())
    }

    fn with_config(config: IssConfig) -> Harness {
        let mut dom = Dom::new();
        let iss = Iss::new(&mut dom, config);
        Harness {
            dom,
            iss,
            bus: ArrayBus::new(256),
        }
    }

    fn set_reg(&mut self, reg: Reg, value: u32) {
        self.iss.set_register(reg.index(), value);
    }

    fn reg(&self, reg: Reg) -> u32 {
        self.iss.register(reg.index())
    }

    fn exec(&mut self, instr: Instr) -> symcosim_rtl::RvfiRecord<u32> {
        self.iss.step(&mut self.dom, &mut self.bus, encode(&instr))
    }
}

#[test]
fn alu_immediate_semantics() {
    let mut h = Harness::new();
    h.set_reg(Reg::X1, 10);
    h.exec(Instr::Addi {
        rd: Reg::X2,
        rs1: Reg::X1,
        imm: -3,
    });
    assert_eq!(h.reg(Reg::X2), 7);
    h.exec(Instr::Slti {
        rd: Reg::X3,
        rs1: Reg::X1,
        imm: 11,
    });
    assert_eq!(h.reg(Reg::X3), 1);
    h.exec(Instr::Sltiu {
        rd: Reg::X4,
        rs1: Reg::X1,
        imm: -1,
    }); // unsigned 0xffffffff
    assert_eq!(h.reg(Reg::X4), 1);
    h.exec(Instr::Xori {
        rd: Reg::X5,
        rs1: Reg::X1,
        imm: 0xf,
    });
    assert_eq!(h.reg(Reg::X5), 5);
    h.exec(Instr::Ori {
        rd: Reg::X6,
        rs1: Reg::X1,
        imm: 0x21,
    });
    assert_eq!(h.reg(Reg::X6), 0x2b);
    h.exec(Instr::Andi {
        rd: Reg::X7,
        rs1: Reg::X1,
        imm: 6,
    });
    assert_eq!(h.reg(Reg::X7), 2);
}

#[test]
fn shift_semantics() {
    let mut h = Harness::new();
    h.set_reg(Reg::X1, 0x8000_0001);
    h.exec(Instr::Slli {
        rd: Reg::X2,
        rs1: Reg::X1,
        shamt: 1,
    });
    assert_eq!(h.reg(Reg::X2), 2);
    h.exec(Instr::Srli {
        rd: Reg::X3,
        rs1: Reg::X1,
        shamt: 31,
    });
    assert_eq!(h.reg(Reg::X3), 1);
    h.exec(Instr::Srai {
        rd: Reg::X4,
        rs1: Reg::X1,
        shamt: 31,
    });
    assert_eq!(h.reg(Reg::X4), 0xffff_ffff);
    // Register shifts mask the amount to five bits.
    h.set_reg(Reg::X5, 33);
    h.exec(Instr::Op {
        kind: OpKind::Sll,
        rd: Reg::X6,
        rs1: Reg::X1,
        rs2: Reg::X5,
    });
    assert_eq!(h.reg(Reg::X6), 2);
}

#[test]
fn register_register_semantics() {
    let mut h = Harness::new();
    h.set_reg(Reg::X1, 7);
    h.set_reg(Reg::X2, 0xffff_fffd); // -3
    h.exec(Instr::Op {
        kind: OpKind::Add,
        rd: Reg::X3,
        rs1: Reg::X1,
        rs2: Reg::X2,
    });
    assert_eq!(h.reg(Reg::X3), 4);
    h.exec(Instr::Op {
        kind: OpKind::Sub,
        rd: Reg::X4,
        rs1: Reg::X1,
        rs2: Reg::X2,
    });
    assert_eq!(h.reg(Reg::X4), 10);
    h.exec(Instr::Op {
        kind: OpKind::Slt,
        rd: Reg::X5,
        rs1: Reg::X2,
        rs2: Reg::X1,
    });
    assert_eq!(h.reg(Reg::X5), 1);
    h.exec(Instr::Op {
        kind: OpKind::Sltu,
        rd: Reg::X6,
        rs1: Reg::X2,
        rs2: Reg::X1,
    });
    assert_eq!(h.reg(Reg::X6), 0);
    h.exec(Instr::Op {
        kind: OpKind::Xor,
        rd: Reg::X7,
        rs1: Reg::X1,
        rs2: Reg::X2,
    });
    assert_eq!(h.reg(Reg::X7), 7 ^ 0xffff_fffd);
}

#[test]
fn x0_is_hardwired() {
    let mut h = Harness::new();
    let retire = h.exec(Instr::Addi {
        rd: Reg::X0,
        rs1: Reg::X0,
        imm: 123,
    });
    assert_eq!(h.reg(Reg::X0), 0);
    assert_eq!(retire.rd_addr, 0);
    assert_eq!(retire.rd_wdata, 0, "RVFI reports zero write data for x0");
}

#[test]
fn lui_auipc() {
    let mut h = Harness::new();
    h.exec(Instr::Lui {
        rd: Reg::X1,
        imm: 0x12345 << 12,
    });
    assert_eq!(h.reg(Reg::X1), 0x1234_5000);
    // PC is 4 after the first instruction.
    h.exec(Instr::Auipc {
        rd: Reg::X2,
        imm: 0x1000,
    });
    assert_eq!(h.reg(Reg::X2), 0x1004);
}

#[test]
fn jumps_and_links() {
    let mut h = Harness::new();
    let retire = h.exec(Instr::Jal {
        rd: Reg::X1,
        offset: 16,
    });
    assert_eq!(retire.pc_wdata, 16);
    assert_eq!(h.reg(Reg::X1), 4);
    h.set_reg(Reg::X2, 0x41);
    let retire = h.exec(Instr::Jalr {
        rd: Reg::X3,
        rs1: Reg::X2,
        imm: 2,
    });
    // (0x41 + 2) & !1 = 0x42... misaligned to 4 — traps. Use aligned instead.
    assert!(retire.trap);
    assert_eq!(
        retire.trap_cause,
        Some(Trap::InstructionAddressMisaligned.cause())
    );
}

#[test]
fn jalr_clears_bit_zero() {
    let mut h = Harness::new();
    h.set_reg(Reg::X2, 0x101);
    let retire = h.exec(Instr::Jalr {
        rd: Reg::X1,
        rs1: Reg::X2,
        imm: 3,
    });
    // (0x101 + 3) & !1 = 0x104: aligned, no trap.
    assert!(!retire.trap);
    assert_eq!(retire.pc_wdata, 0x104);
    assert_eq!(h.reg(Reg::X1), 4);
}

#[test]
fn branch_semantics() {
    let cases = [
        (BranchKind::Beq, 5u32, 5u32, true),
        (BranchKind::Beq, 5, 6, false),
        (BranchKind::Bne, 5, 6, true),
        (BranchKind::Blt, 0xffff_ffff, 0, true), // -1 < 0 signed
        (BranchKind::Bltu, 0xffff_ffff, 0, false), // but not unsigned
        (BranchKind::Bge, 0, 0xffff_ffff, true), // 0 >= -1 signed
        (BranchKind::Bgeu, 0, 0xffff_ffff, false),
    ];
    for (kind, a, b, taken) in cases {
        let mut h = Harness::new();
        h.set_reg(Reg::X1, a);
        h.set_reg(Reg::X2, b);
        let retire = h.exec(Instr::Branch {
            kind,
            rs1: Reg::X1,
            rs2: Reg::X2,
            offset: 32,
        });
        let expected = if taken { 32 } else { 4 };
        assert_eq!(retire.pc_wdata, expected, "{kind:?} {a:#x} {b:#x}");
    }
}

#[test]
fn load_store_sign_extension() {
    let mut h = Harness::new();
    h.set_reg(Reg::X1, 0x40);
    h.set_reg(Reg::X2, 0xffff_ff80u32);
    h.exec(Instr::Store {
        kind: StoreKind::Sb,
        rs1: Reg::X1,
        rs2: Reg::X2,
        imm: 0,
    });
    h.exec(Instr::Load {
        kind: LoadKind::Lb,
        rd: Reg::X3,
        rs1: Reg::X1,
        imm: 0,
    });
    assert_eq!(h.reg(Reg::X3), 0xffff_ff80, "lb sign-extends");
    h.exec(Instr::Load {
        kind: LoadKind::Lbu,
        rd: Reg::X4,
        rs1: Reg::X1,
        imm: 0,
    });
    assert_eq!(h.reg(Reg::X4), 0x80, "lbu zero-extends");

    h.set_reg(Reg::X5, 0x8000_1234u32);
    h.exec(Instr::Store {
        kind: StoreKind::Sh,
        rs1: Reg::X1,
        rs2: Reg::X5,
        imm: 4,
    });
    h.exec(Instr::Load {
        kind: LoadKind::Lh,
        rd: Reg::X6,
        rs1: Reg::X1,
        imm: 4,
    });
    assert_eq!(h.reg(Reg::X6), 0x1234);
    h.exec(Instr::Store {
        kind: StoreKind::Sw,
        rs1: Reg::X1,
        rs2: Reg::X5,
        imm: 8,
    });
    h.exec(Instr::Load {
        kind: LoadKind::Lw,
        rd: Reg::X7,
        rs1: Reg::X1,
        imm: 8,
    });
    assert_eq!(h.reg(Reg::X7), 0x8000_1234);
}

#[test]
fn misaligned_accesses_trap_in_the_vp() {
    let mut h = Harness::new();
    h.set_reg(Reg::X1, 0x41);
    let retire = h.exec(Instr::Load {
        kind: LoadKind::Lw,
        rd: Reg::X2,
        rs1: Reg::X1,
        imm: 0,
    });
    assert!(retire.trap);
    assert_eq!(retire.trap_cause, Some(Trap::LoadAddressMisaligned.cause()));
    let retire = h.exec(Instr::Store {
        kind: StoreKind::Sh,
        rs1: Reg::X1,
        rs2: Reg::X2,
        imm: 0,
    });
    assert!(retire.trap);
    assert_eq!(
        retire.trap_cause,
        Some(Trap::StoreAddressMisaligned.cause())
    );
    // Byte accesses are never misaligned.
    let retire = h.exec(Instr::Load {
        kind: LoadKind::Lb,
        rd: Reg::X2,
        rs1: Reg::X1,
        imm: 0,
    });
    assert!(!retire.trap);
}

#[test]
fn traps_update_csrs_and_redirect_to_mtvec() {
    let mut h = Harness::new();
    // Install a trap vector.
    h.set_reg(Reg::X1, 0x80);
    h.exec(Instr::Csr {
        op: CsrOp::Rw,
        rd: Reg::X0,
        rs1: Reg::X1,
        csr: 0x305,
    });
    // Illegal instruction (all zeros is illegal).
    let retire = h.iss.step(&mut h.dom, &mut h.bus, 0);
    assert!(retire.trap);
    assert_eq!(retire.trap_cause, Some(Trap::IllegalInstruction.cause()));
    assert_eq!(retire.pc_wdata, 0x80, "trap redirects to mtvec");
    // mepc holds the faulting PC (the second instruction at 4).
    h.exec(Instr::Csr {
        op: CsrOp::Rs,
        rd: Reg::X2,
        rs1: Reg::X0,
        csr: 0x341,
    });
    assert_eq!(h.reg(Reg::X2), 4);
    // mcause holds the cause.
    h.exec(Instr::Csr {
        op: CsrOp::Rs,
        rd: Reg::X3,
        rs1: Reg::X0,
        csr: 0x342,
    });
    assert_eq!(h.reg(Reg::X3), 2);
}

#[test]
fn ecall_ebreak_mret() {
    let mut h = Harness::new();
    let retire = h.exec(Instr::Ecall);
    assert_eq!(retire.trap_cause, Some(Trap::EcallFromM.cause()));
    assert_eq!(
        retire.pc_wdata, 0,
        "trap redirects to mtvec (reset value 0)"
    );
    // Step past the trap handler entry so mepc gets a distinctive value.
    h.exec(Instr::Addi {
        rd: Reg::X0,
        rs1: Reg::X0,
        imm: 0,
    }); // at pc 0
    let retire = h.exec(Instr::Ebreak); // at pc 4
    assert_eq!(retire.trap_cause, Some(Trap::Breakpoint.cause()));
    // mret returns to mepc (4, the PC of the ebreak).
    let retire = h.exec(Instr::Mret);
    assert!(!retire.trap);
    assert_eq!(retire.pc_wdata, 4);
}

#[test]
fn wfi_is_a_nop_in_the_vp() {
    let mut h = Harness::new();
    let retire = h.exec(Instr::Wfi);
    assert!(!retire.trap, "the VP implements WFI as a hint");
    assert_eq!(retire.pc_wdata, 4);
}

#[test]
fn csrrw_rd_x0_suppresses_the_read() {
    // The VP read-trap bug on mideleg must NOT fire when rd is x0
    // because CSRRW with rd=x0 performs no read.
    let mut h = Harness::new();
    let retire = h.exec(Instr::Csr {
        op: CsrOp::Rw,
        rd: Reg::X0,
        rs1: Reg::X1,
        csr: 0x303,
    });
    assert!(
        !retire.trap,
        "write-only access does not trigger the read bug"
    );
    let retire = h.exec(Instr::Csr {
        op: CsrOp::Rw,
        rd: Reg::X1,
        rs1: Reg::X0,
        csr: 0x303,
    });
    assert!(retire.trap, "reading mideleg trips the VP bug");
}

#[test]
fn csrrs_rs1_x0_suppresses_the_write() {
    let mut h = Harness::new();
    // Writing a read-only CSR traps…
    let retire = h.exec(Instr::Csr {
        op: CsrOp::Rs,
        rd: Reg::X1,
        rs1: Reg::X2,
        csr: 0xf12,
    });
    assert!(retire.trap, "csrrs with rs1!=x0 writes marchid");
    // …but csrrs with rs1 = x0 performs no write and reads fine.
    let retire = h.exec(Instr::Csr {
        op: CsrOp::Rs,
        rd: Reg::X1,
        rs1: Reg::X0,
        csr: 0xf12,
    });
    assert!(!retire.trap);
}

#[test]
fn csr_set_and_clear_bits() {
    let mut h = Harness::new();
    h.set_reg(Reg::X1, 0b1010);
    h.exec(Instr::Csr {
        op: CsrOp::Rw,
        rd: Reg::X0,
        rs1: Reg::X1,
        csr: 0x340,
    });
    h.set_reg(Reg::X2, 0b0110);
    h.exec(Instr::Csr {
        op: CsrOp::Rs,
        rd: Reg::X3,
        rs1: Reg::X2,
        csr: 0x340,
    });
    assert_eq!(h.reg(Reg::X3), 0b1010, "csrrs returns the old value");
    h.exec(Instr::Csr {
        op: CsrOp::Rc,
        rd: Reg::X4,
        rs1: Reg::X1,
        csr: 0x340,
    });
    assert_eq!(h.reg(Reg::X4), 0b1110, "set bits were ORed in");
    h.exec(Instr::Csr {
        op: CsrOp::Rs,
        rd: Reg::X5,
        rs1: Reg::X0,
        csr: 0x340,
    });
    assert_eq!(h.reg(Reg::X5), 0b0100, "clear removed rs1 bits");
}

#[test]
fn csr_immediate_forms_use_zimm() {
    let mut h = Harness::new();
    h.exec(Instr::CsrImm {
        op: CsrOp::Rw,
        rd: Reg::X0,
        uimm: 21,
        csr: 0x340,
    });
    h.exec(Instr::Csr {
        op: CsrOp::Rs,
        rd: Reg::X1,
        rs1: Reg::X0,
        csr: 0x340,
    });
    assert_eq!(h.reg(Reg::X1), 21);
    // csrrsi with uimm=0 performs no write.
    let retire = h.exec(Instr::CsrImm {
        op: CsrOp::Rs,
        rd: Reg::X2,
        uimm: 0,
        csr: 0xf14,
    });
    assert!(!retire.trap);
}

#[test]
fn counters_count_instructions() {
    let mut h = Harness::new();
    for _ in 0..5 {
        h.exec(Instr::Addi {
            rd: Reg::X1,
            rs1: Reg::X1,
            imm: 1,
        });
    }
    h.exec(Instr::Csr {
        op: CsrOp::Rs,
        rd: Reg::X2,
        rs1: Reg::X0,
        csr: 0xb02,
    });
    assert_eq!(h.reg(Reg::X2), 5, "minstret counted 5 retirements");
    h.exec(Instr::Csr {
        op: CsrOp::Rs,
        rd: Reg::X3,
        rs1: Reg::X0,
        csr: 0xb00,
    });
    assert_eq!(h.reg(Reg::X3), 6, "abstract mcycle = instructions so far");
    // The unprivileged shadow matches.
    h.exec(Instr::Csr {
        op: CsrOp::Rs,
        rd: Reg::X4,
        rs1: Reg::X0,
        csr: 0xc02,
    });
    assert_eq!(h.reg(Reg::X4), 7);
}

#[test]
fn fence_instructions_are_nops() {
    let mut h = Harness::new();
    let retire = h.exec(Instr::Fence {
        pred: 0xf,
        succ: 0xf,
    });
    assert!(!retire.trap);
    let retire = h.exec(Instr::FenceI);
    assert!(!retire.trap);
}

#[test]
fn rv64_only_encoding_is_illegal() {
    let mut h = Harness::new();
    // SLLI with funct7 = 0000001 (an RV64 shamt bit) is reserved in RV32I.
    let bad_slli = 0x0000_1013 | (1 << 25);
    let retire = h.iss.step(&mut h.dom, &mut h.bus, bad_slli);
    assert!(retire.trap);
    assert_eq!(retire.trap_cause, Some(Trap::IllegalInstruction.cause()));
}

/// Differential test: for random simple ALU programs, the ISS agrees with
/// an independent oracle built directly on decoded `Instr` semantics.
#[test]
fn differential_alu_against_oracle() {
    let mut state = 0xdead_beef_u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    for _ in 0..300 {
        let mut h = Harness::new();
        let mut oracle = [0u32; 32];
        for (i, slot) in oracle.iter_mut().enumerate().take(8).skip(1) {
            let value = next();
            h.set_reg(Reg::from_index(i).expect("valid"), value);
            *slot = value;
        }
        let kinds = [
            OpKind::Add,
            OpKind::Sub,
            OpKind::Sll,
            OpKind::Slt,
            OpKind::Sltu,
            OpKind::Xor,
            OpKind::Srl,
            OpKind::Sra,
            OpKind::Or,
            OpKind::And,
        ];
        let kind = kinds[(next() as usize) % kinds.len()];
        let rd = Reg::from_index(1 + (next() as usize) % 7).expect("valid");
        let rs1 = Reg::from_index((next() as usize) % 8).expect("valid");
        let rs2 = Reg::from_index((next() as usize) % 8).expect("valid");
        h.exec(Instr::Op { kind, rd, rs1, rs2 });
        let (a, b) = (oracle[rs1.index()], oracle[rs2.index()]);
        let expected = match kind {
            OpKind::Add => a.wrapping_add(b),
            OpKind::Sub => a.wrapping_sub(b),
            OpKind::Sll => a.wrapping_shl(b & 0x1f),
            OpKind::Slt => ((a as i32) < (b as i32)) as u32,
            OpKind::Sltu => (a < b) as u32,
            OpKind::Xor => a ^ b,
            OpKind::Srl => a.wrapping_shr(b & 0x1f),
            OpKind::Sra => ((a as i32).wrapping_shr(b & 0x1f)) as u32,
            OpKind::Or => a | b,
            OpKind::And => a & b,
        };
        assert_eq!(h.reg(rd), expected, "{kind:?} {rs1} {rs2} -> {rd}");
    }
}
