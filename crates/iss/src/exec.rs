//! The instruction-at-a-time execution engine.

use symcosim_isa::{opcodes, Trap};
use symcosim_rtl::RvfiRecord;
use symcosim_symex::Domain;

use crate::{IssBus, IssConfig, IssCsrFile};

/// What an instruction did, before trap redirection is applied.
struct Outcome<D: Domain> {
    /// Control transfer target (`None` ⇒ fall through to PC+4).
    pc_target: Option<D::Word>,
    /// Destination register and value (`None` ⇒ no register write).
    rd: Option<(D::Word, D::Word)>,
    /// Synchronous exception and its `mtval`.
    trap: Option<(Trap, D::Word)>,
}

impl<D: Domain> Outcome<D> {
    fn fall_through() -> Outcome<D> {
        Outcome {
            pc_target: None,
            rd: None,
            trap: None,
        }
    }

    fn write(rd: D::Word, value: D::Word) -> Outcome<D> {
        Outcome {
            pc_target: None,
            rd: Some((rd, value)),
            trap: None,
        }
    }

    fn jump(target: D::Word, rd: Option<(D::Word, D::Word)>) -> Outcome<D> {
        Outcome {
            pc_target: Some(target),
            rd,
            trap: None,
        }
    }

    fn trap(trap: Trap, tval: D::Word) -> Outcome<D> {
        Outcome {
            pc_target: None,
            rd: None,
            trap: Some((trap, tval)),
        }
    }
}

/// The reference instruction set simulator.
///
/// See the [crate documentation](crate) for an overview and example. The
/// ISS holds the architectural state (PC, register file, CSR file) as
/// domain words; [`Iss::step`] executes one instruction word and returns
/// the retirement record the voter consumes.
#[derive(Debug)]
pub struct Iss<D: Domain> {
    pc: D::Word,
    regs: [D::Word; 32],
    csr: IssCsrFile<D>,
    config: IssConfig,
    retired: u64,
}

// Manual impl: snapshotting engines clone the ISS mid-exploration, and a
// derived Clone would demand `D: Clone`, which the fork-engine executor
// is not (`D::Word` itself is always `Copy`).
impl<D: Domain> Clone for Iss<D> {
    fn clone(&self) -> Iss<D> {
        Iss {
            pc: self.pc,
            regs: self.regs,
            csr: self.csr.clone(),
            config: self.config.clone(),
            retired: self.retired,
        }
    }
}

impl<D: Domain> Iss<D> {
    /// Creates an ISS with PC 0, zeroed registers and reset CSRs.
    pub fn new(dom: &mut D, config: IssConfig) -> Iss<D> {
        let zero = dom.const_word(0);
        Iss {
            pc: zero,
            regs: [zero; 32],
            csr: IssCsrFile::new(dom),
            config,
            retired: 0,
        }
    }

    /// The current program counter.
    pub fn pc(&self) -> D::Word {
        self.pc
    }

    /// Overrides the program counter (testbench initialisation).
    pub fn set_pc(&mut self, pc: D::Word) {
        self.pc = pc;
    }

    /// The architectural register file (`x0` is slot 0 and always zero).
    pub fn registers(&self) -> &[D::Word; 32] {
        &self.regs
    }

    /// Reads register `index` (0..32).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn register(&self, index: usize) -> D::Word {
        self.regs[index]
    }

    /// Sets register `index`; writes to `x0` are ignored (testbench
    /// initialisation, e.g. installing the sliced symbolic registers).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn set_register(&mut self, index: usize, value: D::Word) {
        if index != 0 {
            self.regs[index] = value;
        }
    }

    /// The CSR file (test inspection).
    pub fn csr_file(&self) -> &IssCsrFile<D> {
        &self.csr
    }

    /// Number of [`Iss::step`] calls so far.
    pub fn instructions_executed(&self) -> u64 {
        self.retired
    }

    /// Term-identical equality for veritesting-style state merging: true
    /// when every symbolic component is the *same* hash-consed term handle
    /// and every concrete component is equal. Not a semantic equivalence
    /// check — distinct terms with equal values compare unequal, which is
    /// sound (the merging engine just keeps such paths apart).
    pub fn merge_eq(&self, other: &Iss<D>) -> bool
    where
        D::Word: PartialEq,
    {
        self.pc == other.pc
            && self.regs == other.regs
            && self.csr.merge_eq(&other.csr)
            && self.config == other.config
            && self.retired == other.retired
    }

    /// Reads a register selected by a (possibly symbolic) index word.
    fn read_reg(&self, dom: &mut D, index: D::Word) -> D::Word {
        if let Some(i) = dom.word_value(index) {
            return self.regs[(i & 0x1f) as usize];
        }
        let mut value = dom.const_word(0); // x0
        for i in 1..32 {
            let hit = dom.eq_const(index, i as u32);
            value = dom.ite(hit, self.regs[i], value);
        }
        value
    }

    /// Writes a register selected by a (possibly symbolic) index word;
    /// `x0` stays hardwired to zero.
    ///
    /// This is the single architectural choke point for register writes:
    /// every rd update in [`Iss::step`] funnels through here (the
    /// testbench-only [`Iss::set_register`] carries the same guard), so
    /// the x0 invariant holds by construction. `symcosim-lint --ir`
    /// re-checks it executably against both models.
    fn write_reg(&mut self, dom: &mut D, index: D::Word, value: D::Word) {
        if let Some(i) = dom.word_value(index) {
            if i & 0x1f != 0 {
                self.regs[(i & 0x1f) as usize] = value;
            }
            return;
        }
        for i in 1..32 {
            let hit = dom.eq_const(index, i as u32);
            self.regs[i] = dom.ite(hit, value, self.regs[i]);
        }
    }

    /// Executes one instruction and returns its retirement record.
    ///
    /// Traps are taken to `mtvec` with `mepc`/`mcause`/`mtval` updated;
    /// the record reports them through
    /// [`trap`](symcosim_rtl::RvfiRecord::trap) and
    /// [`trap_cause`](symcosim_rtl::RvfiRecord::trap_cause).
    pub fn step(
        &mut self,
        dom: &mut D,
        bus: &mut impl IssBus<D>,
        instr: D::Word,
    ) -> RvfiRecord<D::Word> {
        let pc_rdata = self.pc;
        let four = dom.const_word(4);
        let fall_through = dom.add(pc_rdata, four);
        let outcome = self.execute(dom, bus, instr);

        let zero = dom.const_word(0);
        let (pc_wdata, rd_addr, rd_wdata, trap, trap_cause) = match outcome.trap {
            Some((trap, tval)) => {
                self.csr.enter_trap(dom, pc_rdata, trap, tval);
                let target = {
                    let mask = dom.const_word(!0x3);
                    let mtvec = self.csr.mtvec();
                    dom.and(mtvec, mask)
                };
                (target, zero, zero, true, Some(trap.cause()))
            }
            None => {
                let (rd_addr, rd_wdata) = match outcome.rd {
                    Some((rd, value)) => {
                        self.write_reg(dom, rd, value);
                        // Per the RVFI convention the reported write data is
                        // zero when rd is x0.
                        let rd_is_zero = dom.eq_const(rd, 0);
                        let reported = dom.ite(rd_is_zero, zero, value);
                        (rd, reported)
                    }
                    None => (zero, zero),
                };
                (
                    outcome.pc_target.unwrap_or(fall_through),
                    rd_addr,
                    rd_wdata,
                    false,
                    None,
                )
            }
        };

        self.pc = pc_wdata;
        self.csr.bump_counters(dom, !trap);
        let order = self.retired;
        self.retired += 1;

        RvfiRecord {
            valid: true,
            order,
            insn: instr,
            trap,
            trap_cause,
            pc_rdata,
            pc_wdata,
            rd_addr,
            rd_wdata,
        }
    }

    /// Checks a taken control transfer target for word alignment.
    fn control_transfer(
        &mut self,
        dom: &mut D,
        target: D::Word,
        rd: Option<(D::Word, D::Word)>,
    ) -> Outcome<D> {
        if self.config.trap_on_misaligned_fetch {
            let low = dom.and_const(target, 0x3);
            let misaligned = {
                let zero = dom.const_word(0);
                dom.ne_w(low, zero)
            };
            if dom.decide(misaligned) {
                return Outcome::trap(Trap::InstructionAddressMisaligned, target);
            }
        }
        Outcome::jump(target, rd)
    }

    fn execute(&mut self, dom: &mut D, bus: &mut impl IssBus<D>, instr: D::Word) -> Outcome<D> {
        let opcode = dom.field(instr, 6, 0);
        let rd = dom.field(instr, 11, 7);
        let rs1_idx = dom.field(instr, 19, 15);
        let rs2_idx = dom.field(instr, 24, 20);
        let funct3 = dom.field(instr, 14, 12);
        let funct7 = dom.field(instr, 31, 25);

        macro_rules! opcode_is {
            ($value:expr) => {{
                let c = dom.eq_const(opcode, $value);
                dom.decide(c)
            }};
        }

        if opcode_is!(opcodes::LUI) {
            let imm = dom.and_const(instr, 0xffff_f000);
            return Outcome::write(rd, imm);
        }
        if opcode_is!(opcodes::AUIPC) {
            let imm = dom.and_const(instr, 0xffff_f000);
            let value = dom.add(self.pc, imm);
            return Outcome::write(rd, value);
        }
        if opcode_is!(opcodes::JAL) {
            let imm = self.j_imm(dom, instr);
            let target = dom.add(self.pc, imm);
            let four = dom.const_word(4);
            let link = dom.add(self.pc, four);
            return self.control_transfer(dom, target, Some((rd, link)));
        }
        if opcode_is!(opcodes::JALR) {
            let f3_ok = dom.eq_const(funct3, 0);
            if !dom.decide(f3_ok) {
                return Outcome::trap(Trap::IllegalInstruction, instr);
            }
            let base = self.read_reg(dom, rs1_idx);
            let imm = self.i_imm(dom, instr);
            let sum = dom.add(base, imm);
            let target = dom.and_const(sum, !1);
            let four = dom.const_word(4);
            let link = dom.add(self.pc, four);
            return self.control_transfer(dom, target, Some((rd, link)));
        }
        if opcode_is!(opcodes::BRANCH) {
            return self.execute_branch(dom, instr, funct3, rs1_idx, rs2_idx);
        }
        if opcode_is!(opcodes::LOAD) {
            return self.execute_load(dom, bus, instr, funct3, rd, rs1_idx);
        }
        if opcode_is!(opcodes::STORE) {
            return self.execute_store(dom, bus, instr, funct3, rs1_idx, rs2_idx);
        }
        if opcode_is!(opcodes::OP_IMM) {
            return self.execute_op_imm(dom, instr, funct3, funct7, rd, rs1_idx);
        }
        if opcode_is!(opcodes::OP) {
            return self.execute_op(dom, instr, funct3, funct7, rd, rs1_idx, rs2_idx);
        }
        if opcode_is!(opcodes::MISC_MEM) {
            // FENCE (funct3 0) and FENCE.I (funct3 1) are no-ops in a
            // single-hart, in-order model.
            let is_fence = dom.eq_const(funct3, 0);
            if dom.decide(is_fence) {
                return Outcome::fall_through();
            }
            let is_fence_i = dom.eq_const(funct3, 1);
            if dom.decide(is_fence_i) {
                return Outcome::fall_through();
            }
            return Outcome::trap(Trap::IllegalInstruction, instr);
        }
        if opcode_is!(opcodes::SYSTEM) {
            return self.execute_system(dom, instr, funct3, rd, rs1_idx);
        }
        Outcome::trap(Trap::IllegalInstruction, instr)
    }

    fn execute_branch(
        &mut self,
        dom: &mut D,
        instr: D::Word,
        funct3: D::Word,
        rs1_idx: D::Word,
        rs2_idx: D::Word,
    ) -> Outcome<D> {
        let a = self.read_reg(dom, rs1_idx);
        let b = self.read_reg(dom, rs2_idx);
        // (funct3 encoding, predicate) pairs; 010 and 011 are illegal.
        let eq = dom.eq_w(a, b);
        let cond = {
            let is_beq = dom.eq_const(funct3, 0b000);
            if dom.decide(is_beq) {
                eq
            } else {
                let is_bne = dom.eq_const(funct3, 0b001);
                if dom.decide(is_bne) {
                    dom.not_b(eq)
                } else {
                    let is_blt = dom.eq_const(funct3, 0b100);
                    if dom.decide(is_blt) {
                        dom.slt(a, b)
                    } else {
                        let is_bge = dom.eq_const(funct3, 0b101);
                        if dom.decide(is_bge) {
                            dom.sge(a, b)
                        } else {
                            let is_bltu = dom.eq_const(funct3, 0b110);
                            if dom.decide(is_bltu) {
                                dom.ult(a, b)
                            } else {
                                let is_bgeu = dom.eq_const(funct3, 0b111);
                                if dom.decide(is_bgeu) {
                                    dom.uge(a, b)
                                } else {
                                    return Outcome::trap(Trap::IllegalInstruction, instr);
                                }
                            }
                        }
                    }
                }
            }
        };
        if dom.decide(cond) {
            let imm = self.b_imm(dom, instr);
            let target = dom.add(self.pc, imm);
            self.control_transfer(dom, target, None)
        } else {
            Outcome::fall_through()
        }
    }

    fn execute_load(
        &mut self,
        dom: &mut D,
        bus: &mut impl IssBus<D>,
        instr: D::Word,
        funct3: D::Word,
        rd: D::Word,
        rs1_idx: D::Word,
    ) -> Outcome<D> {
        let (width, signed) = {
            let is_lb = dom.eq_const(funct3, 0b000);
            if dom.decide(is_lb) {
                (1, true)
            } else {
                let is_lh = dom.eq_const(funct3, 0b001);
                if dom.decide(is_lh) {
                    (2, true)
                } else {
                    let is_lw = dom.eq_const(funct3, 0b010);
                    if dom.decide(is_lw) {
                        (4, false)
                    } else {
                        let is_lbu = dom.eq_const(funct3, 0b100);
                        if dom.decide(is_lbu) {
                            (1, false)
                        } else {
                            let is_lhu = dom.eq_const(funct3, 0b101);
                            if dom.decide(is_lhu) {
                                (2, false)
                            } else {
                                return Outcome::trap(Trap::IllegalInstruction, instr);
                            }
                        }
                    }
                }
            }
        };
        let base = self.read_reg(dom, rs1_idx);
        let imm = self.i_imm(dom, instr);
        let addr = dom.add(base, imm);
        if self.config.trap_on_misaligned_data && width > 1 {
            let low = dom.and_const(addr, width - 1);
            let zero = dom.const_word(0);
            let misaligned = dom.ne_w(low, zero);
            if dom.decide(misaligned) {
                return Outcome::trap(Trap::LoadAddressMisaligned, addr);
            }
        }
        let raw = bus.load(dom, addr, width);
        let value = if signed {
            dom.sext(raw, width * 8)
        } else {
            raw
        };
        Outcome::write(rd, value)
    }

    fn execute_store(
        &mut self,
        dom: &mut D,
        bus: &mut impl IssBus<D>,
        instr: D::Word,
        funct3: D::Word,
        rs1_idx: D::Word,
        rs2_idx: D::Word,
    ) -> Outcome<D> {
        let width = {
            let is_sb = dom.eq_const(funct3, 0b000);
            if dom.decide(is_sb) {
                1
            } else {
                let is_sh = dom.eq_const(funct3, 0b001);
                if dom.decide(is_sh) {
                    2
                } else {
                    let is_sw = dom.eq_const(funct3, 0b010);
                    if dom.decide(is_sw) {
                        4
                    } else {
                        return Outcome::trap(Trap::IllegalInstruction, instr);
                    }
                }
            }
        };
        let base = self.read_reg(dom, rs1_idx);
        let imm = self.s_imm(dom, instr);
        let addr = dom.add(base, imm);
        if self.config.trap_on_misaligned_data && width > 1 {
            let low = dom.and_const(addr, width - 1);
            let zero = dom.const_word(0);
            let misaligned = dom.ne_w(low, zero);
            if dom.decide(misaligned) {
                return Outcome::trap(Trap::StoreAddressMisaligned, addr);
            }
        }
        let value = self.read_reg(dom, rs2_idx);
        bus.store(dom, addr, value, width);
        Outcome::fall_through()
    }

    fn execute_op_imm(
        &mut self,
        dom: &mut D,
        instr: D::Word,
        funct3: D::Word,
        funct7: D::Word,
        rd: D::Word,
        rs1_idx: D::Word,
    ) -> Outcome<D> {
        let a = self.read_reg(dom, rs1_idx);
        let imm = self.i_imm(dom, instr);
        macro_rules! f3_is {
            ($value:expr) => {{
                let c = dom.eq_const(funct3, $value);
                dom.decide(c)
            }};
        }
        if f3_is!(0b000) {
            let value = dom.add(a, imm);
            return Outcome::write(rd, value);
        }
        if f3_is!(0b010) {
            let lt = dom.slt(a, imm);
            let value = dom.bool_to_word(lt);
            return Outcome::write(rd, value);
        }
        if f3_is!(0b011) {
            let lt = dom.ult(a, imm);
            let value = dom.bool_to_word(lt);
            return Outcome::write(rd, value);
        }
        if f3_is!(0b100) {
            let value = dom.xor(a, imm);
            return Outcome::write(rd, value);
        }
        if f3_is!(0b110) {
            let value = dom.or(a, imm);
            return Outcome::write(rd, value);
        }
        if f3_is!(0b111) {
            let value = dom.and(a, imm);
            return Outcome::write(rd, value);
        }
        let shamt = dom.and_const(imm, 0x1f);
        if f3_is!(0b001) {
            // SLLI requires funct7 == 0000000 in RV32I.
            let legal = dom.eq_const(funct7, 0);
            if !dom.decide(legal) {
                return Outcome::trap(Trap::IllegalInstruction, instr);
            }
            let value = dom.shl(a, shamt);
            return Outcome::write(rd, value);
        }
        // funct3 == 0b101: SRLI (funct7 0000000) or SRAI (funct7 0100000).
        let is_srli = dom.eq_const(funct7, 0);
        if dom.decide(is_srli) {
            let value = dom.lshr(a, shamt);
            return Outcome::write(rd, value);
        }
        let is_srai = dom.eq_const(funct7, 0b010_0000);
        if dom.decide(is_srai) {
            let value = dom.ashr(a, shamt);
            return Outcome::write(rd, value);
        }
        Outcome::trap(Trap::IllegalInstruction, instr)
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_op(
        &mut self,
        dom: &mut D,
        instr: D::Word,
        funct3: D::Word,
        funct7: D::Word,
        rd: D::Word,
        rs1_idx: D::Word,
        rs2_idx: D::Word,
    ) -> Outcome<D> {
        let a = self.read_reg(dom, rs1_idx);
        let b = self.read_reg(dom, rs2_idx);
        let f7_zero = dom.eq_const(funct7, 0);
        let f7_alt = dom.eq_const(funct7, 0b010_0000);
        macro_rules! f3_is {
            ($value:expr) => {{
                let c = dom.eq_const(funct3, $value);
                dom.decide(c)
            }};
        }
        if f3_is!(0b000) {
            if dom.decide(f7_zero) {
                let value = dom.add(a, b);
                return Outcome::write(rd, value);
            }
            if dom.decide(f7_alt) {
                let value = dom.sub(a, b);
                return Outcome::write(rd, value);
            }
            return Outcome::trap(Trap::IllegalInstruction, instr);
        }
        let shamt = dom.and_const(b, 0x1f);
        if f3_is!(0b001) {
            if dom.decide(f7_zero) {
                let value = dom.shl(a, shamt);
                return Outcome::write(rd, value);
            }
            return Outcome::trap(Trap::IllegalInstruction, instr);
        }
        if f3_is!(0b010) {
            if dom.decide(f7_zero) {
                let lt = dom.slt(a, b);
                let value = dom.bool_to_word(lt);
                return Outcome::write(rd, value);
            }
            return Outcome::trap(Trap::IllegalInstruction, instr);
        }
        if f3_is!(0b011) {
            if dom.decide(f7_zero) {
                let lt = dom.ult(a, b);
                let value = dom.bool_to_word(lt);
                return Outcome::write(rd, value);
            }
            return Outcome::trap(Trap::IllegalInstruction, instr);
        }
        if f3_is!(0b100) {
            if dom.decide(f7_zero) {
                let value = dom.xor(a, b);
                return Outcome::write(rd, value);
            }
            return Outcome::trap(Trap::IllegalInstruction, instr);
        }
        if f3_is!(0b101) {
            if dom.decide(f7_zero) {
                let value = dom.lshr(a, shamt);
                return Outcome::write(rd, value);
            }
            if dom.decide(f7_alt) {
                let value = dom.ashr(a, shamt);
                return Outcome::write(rd, value);
            }
            return Outcome::trap(Trap::IllegalInstruction, instr);
        }
        if f3_is!(0b110) {
            if dom.decide(f7_zero) {
                let value = dom.or(a, b);
                return Outcome::write(rd, value);
            }
            return Outcome::trap(Trap::IllegalInstruction, instr);
        }
        if f3_is!(0b111) {
            if dom.decide(f7_zero) {
                let value = dom.and(a, b);
                return Outcome::write(rd, value);
            }
            return Outcome::trap(Trap::IllegalInstruction, instr);
        }
        Outcome::trap(Trap::IllegalInstruction, instr)
    }

    fn execute_system(
        &mut self,
        dom: &mut D,
        instr: D::Word,
        funct3: D::Word,
        rd: D::Word,
        rs1_idx: D::Word,
    ) -> Outcome<D> {
        let f3_zero = dom.eq_const(funct3, 0);
        if dom.decide(f3_zero) {
            // Bare system instructions are full-word encodings.
            let is_ecall = dom.eq_const(instr, 0x0000_0073);
            if dom.decide(is_ecall) {
                let zero = dom.const_word(0);
                return Outcome::trap(Trap::EcallFromM, zero);
            }
            let is_ebreak = dom.eq_const(instr, 0x0010_0073);
            if dom.decide(is_ebreak) {
                return Outcome::trap(Trap::Breakpoint, self.pc);
            }
            let is_mret = dom.eq_const(instr, 0x3020_0073);
            if dom.decide(is_mret) {
                let target = self.csr.mepc();
                return self.control_transfer(dom, target, None);
            }
            let is_wfi = dom.eq_const(instr, 0x1050_0073);
            if dom.decide(is_wfi) {
                if self.config.wfi_is_nop {
                    return Outcome::fall_through();
                }
                return Outcome::trap(Trap::IllegalInstruction, instr);
            }
            return Outcome::trap(Trap::IllegalInstruction, instr);
        }

        // Zicsr instructions.
        let csr_addr = dom.field(instr, 31, 20);
        let uimm = rs1_idx; // the zimm field occupies the rs1 bits
        macro_rules! f3_is {
            ($value:expr) => {{
                let c = dom.eq_const(funct3, $value);
                dom.decide(c)
            }};
        }
        let (op_write, op_set, src) = if f3_is!(0b001) {
            (true, false, self.read_reg(dom, rs1_idx))
        } else if f3_is!(0b010) {
            (false, true, self.read_reg(dom, rs1_idx))
        } else if f3_is!(0b011) {
            (false, false, self.read_reg(dom, rs1_idx))
        } else if f3_is!(0b101) {
            (true, false, uimm)
        } else if f3_is!(0b110) {
            (false, true, uimm)
        } else if f3_is!(0b111) {
            (false, false, uimm)
        } else {
            return Outcome::trap(Trap::IllegalInstruction, instr);
        };

        if op_write {
            // CSRRW/CSRRWI: rd == x0 suppresses the read (and its side
            // effects, including the VP's read-trap bug).
            let rd_zero = {
                let c = dom.eq_const(rd, 0);
                dom.decide(c)
            };
            let old = if rd_zero {
                dom.const_word(0)
            } else {
                match self.csr.read(dom, csr_addr, &self.config) {
                    Ok(value) => value,
                    Err(trap) => return Outcome::trap(trap, instr),
                }
            };
            if let Err(trap) = self.csr.write(dom, csr_addr, src, &self.config) {
                return Outcome::trap(trap, instr);
            }
            return Outcome::write(rd, old);
        }

        // CSRRS/CSRRC (and immediate forms): always read; write only when
        // the source field is non-zero.
        let old = match self.csr.read(dom, csr_addr, &self.config) {
            Ok(value) => value,
            Err(trap) => return Outcome::trap(trap, instr),
        };
        let src_zero = {
            let c = dom.eq_const(rs1_idx, 0);
            dom.decide(c)
        };
        if !src_zero {
            let new_value = if op_set {
                dom.or(old, src)
            } else {
                let inverted = dom.not_w(src);
                dom.and(old, inverted)
            };
            if let Err(trap) = self.csr.write(dom, csr_addr, new_value, &self.config) {
                return Outcome::trap(trap, instr);
            }
        }
        Outcome::write(rd, old)
    }

    // ------------------------------------------------------------------
    // Immediate decoders (pure word arithmetic; no forking).
    // ------------------------------------------------------------------

    fn i_imm(&self, dom: &mut D, instr: D::Word) -> D::Word {
        let raw = dom.field(instr, 31, 20);
        dom.sext(raw, 12)
    }

    fn s_imm(&self, dom: &mut D, instr: D::Word) -> D::Word {
        let high = dom.field(instr, 31, 25);
        let low = dom.field(instr, 11, 7);
        let shifted = dom.shl_const(high, 5);
        let raw = dom.or(shifted, low);
        dom.sext(raw, 12)
    }

    fn b_imm(&self, dom: &mut D, instr: D::Word) -> D::Word {
        let bit12 = dom.field(instr, 31, 31);
        let bit11 = dom.field(instr, 7, 7);
        let bits10_5 = dom.field(instr, 30, 25);
        let bits4_1 = dom.field(instr, 11, 8);
        let p12 = dom.shl_const(bit12, 12);
        let p11 = dom.shl_const(bit11, 11);
        let p10_5 = dom.shl_const(bits10_5, 5);
        let p4_1 = dom.shl_const(bits4_1, 1);
        let a = dom.or(p12, p11);
        let b = dom.or(p10_5, p4_1);
        let raw = dom.or(a, b);
        dom.sext(raw, 13)
    }

    fn j_imm(&self, dom: &mut D, instr: D::Word) -> D::Word {
        let bit20 = dom.field(instr, 31, 31);
        let bits19_12 = dom.field(instr, 19, 12);
        let bit11 = dom.field(instr, 20, 20);
        let bits10_1 = dom.field(instr, 30, 21);
        let p20 = dom.shl_const(bit20, 20);
        let p19_12 = dom.shl_const(bits19_12, 12);
        let p11 = dom.shl_const(bit11, 11);
        let p10_1 = dom.shl_const(bits10_1, 1);
        let a = dom.or(p20, p19_12);
        let b = dom.or(p11, p10_1);
        let raw = dom.or(a, b);
        dom.sext(raw, 21)
    }
}
