//! ISS behaviour configuration.

/// Configurable behaviours of the reference ISS.
///
/// [`IssConfig::vp_v1`] reproduces the RISC-V VP as evaluated in the paper,
/// *including its two real bugs*; [`IssConfig::fixed`] is the corrected
/// model used for clean regression runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IssConfig {
    /// Raise `LoadAddressMisaligned`/`StoreAddressMisaligned` on misaligned
    /// data accesses (the VP does; MicroRV32 instead supports them —
    /// a permitted-implementation *mismatch*, Table I rows LW…SHU).
    pub trap_on_misaligned_data: bool,
    /// Raise `InstructionAddressMisaligned` when a taken control transfer
    /// targets a non-word-aligned address.
    pub trap_on_misaligned_fetch: bool,
    /// Execute `WFI` as a legal hint/no-op (the VP does; MicroRV32 omits
    /// the instruction and traps — RTL error, Table I row WFI).
    pub wfi_is_nop: bool,
    /// **VP bug**: trap on *reads* of `medeleg`/`mideleg` (Table I rows
    /// marked E*). `false` restores the specified read-write behaviour.
    pub medeleg_mideleg_read_trap: bool,
    /// Value reported by the read-only `marchid` CSR.
    pub marchid: u32,
    /// Value reported by the read-only `mvendorid` CSR.
    pub mvendorid: u32,
    /// Value reported by the read-only `mimpid` CSR.
    pub mimpid: u32,
    /// Value reported by the read-only `mhartid` CSR.
    pub mhartid: u32,
    /// Value reported by the read-only `misa` CSR (RV32I ⇒ bit 8, MXL=1).
    pub misa: u32,
}

impl IssConfig {
    /// The RISC-V VP ISS as evaluated in the paper — including its two
    /// bugs (traps at `medeleg`/`mideleg` reads).
    pub fn vp_v1() -> IssConfig {
        IssConfig {
            trap_on_misaligned_data: true,
            trap_on_misaligned_fetch: true,
            wfi_is_nop: true,
            medeleg_mideleg_read_trap: true,
            marchid: 0,
            mvendorid: 0,
            mimpid: 0,
            mhartid: 0,
            misa: (1 << 30) | (1 << 8), // MXL=32-bit, extension I
        }
    }

    /// The VP with its two bugs fixed.
    pub fn fixed() -> IssConfig {
        IssConfig {
            medeleg_mideleg_read_trap: false,
            ..IssConfig::vp_v1()
        }
    }
}

impl Default for IssConfig {
    fn default() -> IssConfig {
        IssConfig::vp_v1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vp_v1_carries_the_paper_bugs() {
        let config = IssConfig::vp_v1();
        assert!(config.medeleg_mideleg_read_trap);
        assert!(config.trap_on_misaligned_data);
        assert!(config.wfi_is_nop);
    }

    #[test]
    fn fixed_differs_only_in_the_bugs() {
        let fixed = IssConfig::fixed();
        assert!(!fixed.medeleg_mideleg_read_trap);
        assert_eq!(
            IssConfig {
                medeleg_mideleg_read_trap: true,
                ..fixed
            },
            IssConfig::vp_v1()
        );
    }
}
