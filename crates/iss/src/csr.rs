//! The ISS control-and-status register file.
//!
//! Implements the VP's CSR surface: the machine trap-setup and
//! trap-handling registers, the machine counters, the full HPM counter
//! range (reads as zero, writes accepted), and the unprivileged counter
//! shadows. Addresses arrive as (possibly symbolic) words; dispatch is a
//! chain of [`decide`](Domain::decide)s, so symbolic CSR instructions fork
//! into one path per implemented CSR (plus one per unimplemented range) —
//! exactly the path structure KLEE extracts from the VP's `switch`.

use symcosim_isa::Trap;
use symcosim_symex::Domain;

use crate::IssConfig;

/// CSR storage and dispatch for the reference ISS.
#[derive(Debug)]
pub struct IssCsrFile<D: Domain> {
    mstatus: D::Word,
    mtvec: D::Word,
    mepc: D::Word,
    mcause: D::Word,
    mtval: D::Word,
    mie: D::Word,
    mip: D::Word,
    mscratch: D::Word,
    mcounteren: D::Word,
    medeleg: D::Word,
    mideleg: D::Word,
    mcycle: D::Word,
    mcycleh: D::Word,
    minstret: D::Word,
    minstreth: D::Word,
    /// HPM counter/event storage, associative on the (possibly symbolic)
    /// CSR address; later entries shadow earlier ones.
    hpm: Vec<(D::Word, D::Word)>,
}

// Manual impl: a derived Clone would demand `D: Clone`, which the
// fork-engine executor is not (`D::Word` itself is always `Copy`).
impl<D: Domain> Clone for IssCsrFile<D> {
    fn clone(&self) -> IssCsrFile<D> {
        IssCsrFile {
            mstatus: self.mstatus,
            mtvec: self.mtvec,
            mepc: self.mepc,
            mcause: self.mcause,
            mtval: self.mtval,
            mie: self.mie,
            mip: self.mip,
            mscratch: self.mscratch,
            mcounteren: self.mcounteren,
            medeleg: self.medeleg,
            mideleg: self.mideleg,
            mcycle: self.mcycle,
            mcycleh: self.mcycleh,
            minstret: self.minstret,
            minstreth: self.minstreth,
            hpm: self.hpm.clone(),
        }
    }
}

impl<D: Domain> IssCsrFile<D> {
    /// Creates a CSR file with all registers reset to zero.
    pub fn new(dom: &mut D) -> IssCsrFile<D> {
        let zero = dom.const_word(0);
        IssCsrFile {
            mstatus: zero,
            mtvec: zero,
            mepc: zero,
            mcause: zero,
            mtval: zero,
            mie: zero,
            mip: zero,
            mscratch: zero,
            mcounteren: zero,
            medeleg: zero,
            mideleg: zero,
            mcycle: zero,
            mcycleh: zero,
            minstret: zero,
            minstreth: zero,
            hpm: Vec::new(),
        }
    }

    /// Term-identical equality for veritesting-style state merging (see
    /// [`Iss::merge_eq`](crate::Iss::merge_eq)): every register must be
    /// the same hash-consed term handle, not merely semantically equal.
    pub fn merge_eq(&self, other: &IssCsrFile<D>) -> bool
    where
        D::Word: PartialEq,
    {
        self.mstatus == other.mstatus
            && self.mtvec == other.mtvec
            && self.mepc == other.mepc
            && self.mcause == other.mcause
            && self.mtval == other.mtval
            && self.mie == other.mie
            && self.mip == other.mip
            && self.mscratch == other.mscratch
            && self.mcounteren == other.mcounteren
            && self.medeleg == other.medeleg
            && self.mideleg == other.mideleg
            && self.mcycle == other.mcycle
            && self.mcycleh == other.mcycleh
            && self.minstret == other.minstret
            && self.minstreth == other.minstreth
            && self.hpm == other.hpm
    }

    /// The trap vector base (`mtvec`).
    pub fn mtvec(&self) -> D::Word {
        self.mtvec
    }

    /// The saved exception PC (`mepc`).
    pub fn mepc(&self) -> D::Word {
        self.mepc
    }

    /// The cycle counter low half (`mcycle`), for test inspection.
    pub fn mcycle(&self) -> D::Word {
        self.mcycle
    }

    /// The retired-instruction counter low half (`minstret`).
    pub fn minstret(&self) -> D::Word {
        self.minstret
    }

    /// Records trap state: `mepc`, `mcause` and `mtval`.
    pub fn enter_trap(&mut self, dom: &mut D, epc: D::Word, cause: Trap, tval: D::Word) {
        self.mepc = epc;
        self.mcause = dom.const_word(cause.cause());
        self.mtval = tval;
    }

    /// Advances the abstract timing model by one instruction: `mcycle`
    /// always increments; `minstret` increments only when the instruction
    /// retired without trapping.
    pub fn bump_counters(&mut self, dom: &mut D, retired: bool) {
        let one = dom.const_word(1);
        let zero = dom.const_word(0);
        let new_cycle = dom.add(self.mcycle, one);
        let carry = dom.eq_w(new_cycle, zero);
        let bumped_high = dom.add(self.mcycleh, one);
        self.mcycleh = dom.ite(carry, bumped_high, self.mcycleh);
        self.mcycle = new_cycle;
        if retired {
            let new_instret = dom.add(self.minstret, one);
            let carry = dom.eq_w(new_instret, zero);
            let bumped_high = dom.add(self.minstreth, one);
            self.minstreth = dom.ite(carry, bumped_high, self.minstreth);
            self.minstret = new_instret;
        }
    }

    /// Reads the CSR at (possibly symbolic) address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::IllegalInstruction`] for unimplemented addresses —
    /// and, when [`IssConfig::medeleg_mideleg_read_trap`] is set (the VP
    /// bug), for reads of `medeleg`/`mideleg`.
    pub fn read(
        &mut self,
        dom: &mut D,
        addr: D::Word,
        config: &IssConfig,
    ) -> Result<D::Word, Trap> {
        macro_rules! hit {
            ($address:expr, $value:expr) => {
                let c = dom.eq_const(addr, $address as u32);
                if dom.decide(c) {
                    return Ok($value);
                }
            };
        }
        hit!(0x300, self.mstatus);
        hit!(0x301, dom.const_word(config.misa));
        hit!(0x304, self.mie);
        hit!(0x305, self.mtvec);
        hit!(0x306, self.mcounteren);
        hit!(0x340, self.mscratch);
        hit!(0x341, self.mepc);
        hit!(0x342, self.mcause);
        hit!(0x343, self.mtval);
        hit!(0x344, self.mip);
        // medeleg/mideleg: the VP bug is to trap on *reads*.
        for delegated in [0x302u32, 0x303] {
            let c = dom.eq_const(addr, delegated);
            if dom.decide(c) {
                if config.medeleg_mideleg_read_trap {
                    return Err(Trap::IllegalInstruction);
                }
                return Ok(if delegated == 0x302 {
                    self.medeleg
                } else {
                    self.mideleg
                });
            }
        }
        hit!(0xb00, self.mcycle);
        hit!(0xb02, self.minstret);
        hit!(0xb80, self.mcycleh);
        hit!(0xb82, self.minstreth);
        // Unprivileged shadows; the VP's abstract timing makes time == cycle.
        hit!(0xc00, self.mcycle);
        hit!(0xc01, self.mcycle);
        hit!(0xc02, self.minstret);
        hit!(0xc80, self.mcycleh);
        hit!(0xc81, self.mcycleh);
        hit!(0xc82, self.minstreth);
        hit!(0xf11, dom.const_word(config.mvendorid));
        hit!(0xf12, dom.const_word(config.marchid));
        hit!(0xf13, dom.const_word(config.mimpid));
        hit!(0xf14, dom.const_word(config.mhartid));
        // HPM counters and event selectors: the VP implements them as
        // plain read/write registers (reset value zero).
        if self.in_hpm_range(dom, addr) {
            let mut value = dom.const_word(0);
            for (stored_addr, stored_value) in self.hpm.clone() {
                let hit = dom.eq_w(addr, stored_addr);
                value = dom.ite(hit, stored_value, value);
            }
            return Ok(value);
        }
        Err(Trap::IllegalInstruction)
    }

    /// Writes the CSR at (possibly symbolic) address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::IllegalInstruction`] for unimplemented addresses and
    /// for writes to architecturally read-only CSRs (the machine
    /// information registers and the unprivileged counters).
    pub fn write(
        &mut self,
        dom: &mut D,
        addr: D::Word,
        value: D::Word,
        config: &IssConfig,
    ) -> Result<(), Trap> {
        let _ = config;
        macro_rules! store {
            ($address:expr, $slot:expr) => {
                let c = dom.eq_const(addr, $address as u32);
                if dom.decide(c) {
                    $slot = value;
                    return Ok(());
                }
            };
        }
        store!(0x300, self.mstatus);
        {
            // misa is WARL and hardwired: writes are accepted and ignored.
            let c = dom.eq_const(addr, 0x301);
            if dom.decide(c) {
                return Ok(());
            }
        }
        store!(0x302, self.medeleg);
        store!(0x303, self.mideleg);
        store!(0x304, self.mie);
        store!(0x305, self.mtvec);
        store!(0x306, self.mcounteren);
        store!(0x340, self.mscratch);
        store!(0x341, self.mepc);
        store!(0x342, self.mcause);
        store!(0x343, self.mtval);
        store!(0x344, self.mip);
        store!(0xb00, self.mcycle);
        store!(0xb02, self.minstret);
        store!(0xb80, self.mcycleh);
        store!(0xb82, self.minstreth);
        // HPM counters/events: plain read/write registers in the VP.
        if self.in_hpm_range(dom, addr) {
            self.hpm.push((addr, value));
            return Ok(());
        }
        // Everything else that exists is read-only (0xC00/0xF11 blocks);
        // writes must raise an illegal-instruction exception. Unimplemented
        // addresses raise the same exception, so one check suffices.
        Err(Trap::IllegalInstruction)
    }

    /// One decision per HPM block: `mhpmcounter3..=31`,
    /// `mhpmcounter3h..=31h` and `mhpmevent3..=31`.
    fn in_hpm_range(&self, dom: &mut D, addr: D::Word) -> bool {
        for (lo, hi) in [(0xb03u32, 0xb1f), (0xb83, 0xb9f), (0x323, 0x33f)] {
            let lo_w = dom.const_word(lo);
            let hi_w = dom.const_word(hi);
            let ge = dom.uge(addr, lo_w);
            let le = {
                let gt = dom.ult(hi_w, addr);
                dom.not_b(gt)
            };
            let within = dom.and_b(ge, le);
            if dom.decide(within) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symcosim_symex::ConcreteDomain;

    fn file(dom: &mut ConcreteDomain) -> IssCsrFile<ConcreteDomain> {
        IssCsrFile::new(dom)
    }

    #[test]
    fn scratch_round_trip() {
        let mut dom = ConcreteDomain::new();
        let mut csr = file(&mut dom);
        let config = IssConfig::vp_v1();
        csr.write(&mut dom, 0x340, 0xdead_beef, &config)
            .expect("mscratch is writable");
        assert_eq!(csr.read(&mut dom, 0x340, &config), Ok(0xdead_beef));
    }

    #[test]
    fn vp_bug_traps_on_delegation_reads() {
        let mut dom = ConcreteDomain::new();
        let mut csr = file(&mut dom);
        let buggy = IssConfig::vp_v1();
        assert_eq!(
            csr.read(&mut dom, 0x302, &buggy),
            Err(Trap::IllegalInstruction)
        );
        assert_eq!(
            csr.read(&mut dom, 0x303, &buggy),
            Err(Trap::IllegalInstruction)
        );
        // Writes are fine even in the buggy configuration.
        assert!(csr.write(&mut dom, 0x302, 1, &buggy).is_ok());

        let fixed = IssConfig::fixed();
        assert_eq!(csr.read(&mut dom, 0x302, &fixed), Ok(1));
        assert_eq!(csr.read(&mut dom, 0x303, &fixed), Ok(0));
    }

    #[test]
    fn read_only_csrs_trap_on_write() {
        let mut dom = ConcreteDomain::new();
        let mut csr = file(&mut dom);
        let config = IssConfig::vp_v1();
        for addr in [0xf11u32, 0xf12, 0xf14, 0xc00, 0xc82, 0xc01] {
            assert_eq!(
                csr.write(&mut dom, addr, 1, &config),
                Err(Trap::IllegalInstruction),
                "addr {addr:#x}"
            );
            assert!(csr.read(&mut dom, addr, &config).is_ok(), "addr {addr:#x}");
        }
    }

    #[test]
    fn unimplemented_csr_traps_both_ways() {
        let mut dom = ConcreteDomain::new();
        let mut csr = file(&mut dom);
        let config = IssConfig::vp_v1();
        for addr in [0x000u32, 0x7c0, 0x105, 0xfff] {
            assert_eq!(
                csr.read(&mut dom, addr, &config),
                Err(Trap::IllegalInstruction)
            );
            assert_eq!(
                csr.write(&mut dom, addr, 0, &config),
                Err(Trap::IllegalInstruction)
            );
        }
    }

    #[test]
    fn hpm_range_reads_zero_accepts_writes() {
        let mut dom = ConcreteDomain::new();
        let mut csr = file(&mut dom);
        let config = IssConfig::vp_v1();
        for addr in [0xb03u32, 0xb10, 0xb1f, 0xb83, 0xb9f, 0x323, 0x330, 0x33f] {
            assert_eq!(csr.read(&mut dom, addr, &config), Ok(0), "addr {addr:#x}");
            assert!(
                csr.write(&mut dom, addr, 5, &config).is_ok(),
                "addr {addr:#x}"
            );
            assert_eq!(
                csr.read(&mut dom, addr, &config),
                Ok(5),
                "written value retained"
            );
        }
        // Just outside the ranges.
        for addr in [0xb20u32, 0xba0, 0x340 - 1] {
            let read = csr.read(&mut dom, addr, &config);
            let is_hpm = read == Ok(0);
            assert!(
                !is_hpm || addr == 0x33f,
                "addr {addr:#x} wrongly in HPM range"
            );
        }
    }

    #[test]
    fn counters_tick_with_retirement() {
        let mut dom = ConcreteDomain::new();
        let mut csr = file(&mut dom);
        csr.bump_counters(&mut dom, true);
        csr.bump_counters(&mut dom, false); // trapped instruction
        csr.bump_counters(&mut dom, true);
        assert_eq!(csr.mcycle(), 3);
        assert_eq!(csr.minstret(), 2);
    }

    #[test]
    fn counter_carry_propagates() {
        let mut dom = ConcreteDomain::new();
        let mut csr = file(&mut dom);
        let config = IssConfig::vp_v1();
        csr.write(&mut dom, 0xb00, u32::MAX, &config)
            .expect("mcycle writable");
        csr.bump_counters(&mut dom, true);
        assert_eq!(csr.read(&mut dom, 0xb00, &config), Ok(0));
        assert_eq!(csr.read(&mut dom, 0xb80, &config), Ok(1));
    }
}
