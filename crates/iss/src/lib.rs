//! Reference RV32I+Zicsr Instruction Set Simulator.
//!
//! This is the functional reference model of the co-simulation — the
//! equivalent of the RISC-V VP ISS the paper uses. It executes one
//! instruction per [`Iss::step`], is written generically over the
//! [`Domain`](symcosim_symex::Domain) abstraction (so the same code runs
//! concretely and symbolically), and reports retirement information as an
//! [`RvfiRecord`](symcosim_rtl::RvfiRecord) for the voter.
//!
//! The VP behaviours Table I of the paper attributes to the ISS are
//! reproduced behind [`IssConfig`]:
//!
//! * traps on misaligned data accesses (where MicroRV32 supports them) —
//!   the load/store *mismatches*,
//! * implements `WFI` as a hint/no-op (MicroRV32 traps — an RTL *error*),
//! * traps on unimplemented CSRs and on writes to read-only CSRs
//!   (MicroRV32 misses these traps — RTL *errors*),
//! * **bug**: traps on *reads* of `medeleg`/`mideleg`
//!   ([`IssConfig::medeleg_mideleg_read_trap`]) — the two ISS errors (E*),
//! * implements the full counter zoo (`cycle`, `time`, `instret`,
//!   `mhpmcounter3..=31`, `mscratch`, `mcounteren`, …) that MicroRV32
//!   lacks — the unimplemented-CSR *mismatches*,
//! * counts `mcycle` abstractly (one per instruction), while the RTL core
//!   counts real clock cycles — the cycle-count *mismatch*.
//!
//! # Example
//!
//! ```
//! use symcosim_iss::{ArrayBus, Iss, IssConfig};
//! use symcosim_symex::ConcreteDomain;
//!
//! let mut dom = ConcreteDomain::new();
//! let mut iss = Iss::new(&mut dom, IssConfig::vp_v1());
//! let mut bus = ArrayBus::new(64);
//! // addi x1, x0, 42
//! let retire = iss.step(&mut dom, &mut bus, 0x02a0_0093);
//! assert!(!retire.trap);
//! assert_eq!(iss.register(1), 42);
//! assert_eq!(retire.pc_wdata, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod config;
mod csr;
mod exec;

pub use bus::{ArrayBus, IssBus};
pub use config::IssConfig;
pub use csr::IssCsrFile;
pub use exec::Iss;
