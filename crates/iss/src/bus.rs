//! The ISS data-memory interface.

use symcosim_symex::Domain;

/// Data-memory port of the ISS.
///
/// The ISS performs raw, zero-extended accesses of 1, 2 or 4 bytes; sign
/// extension is the ISS's own job (matching the paper's description of the
/// VP memory interface, where `load_byte` sign-extends in the ISS binding).
/// Addresses are byte addresses and may be symbolic; implementations must
/// handle (e.g. mask) out-of-range addresses themselves.
pub trait IssBus<D: Domain> {
    /// Loads `width_bytes` ∈ {1, 2, 4} bytes at `addr`, zero-extended.
    fn load(&mut self, dom: &mut D, addr: D::Word, width_bytes: u32) -> D::Word;

    /// Stores the low `width_bytes` ∈ {1, 2, 4} bytes of `value` at `addr`.
    fn store(&mut self, dom: &mut D, addr: D::Word, value: D::Word, width_bytes: u32);
}

/// A simple word-array memory, for tests and the fuzzing baseline.
///
/// Addresses are masked into the array, so every access succeeds (there is
/// no bus error concept, as in the paper's small co-simulation memories).
#[derive(Debug, Clone)]
pub struct ArrayBus<D: Domain> {
    words: Vec<D::Word>,
}

impl<D: Domain<Word = u32>> ArrayBus<D> {
    /// Creates a zeroed memory of `num_words` 32-bit words.
    ///
    /// # Panics
    ///
    /// Panics if `num_words` is not a power of two (masking requires it).
    pub fn new(num_words: usize) -> ArrayBus<D> {
        assert!(
            num_words.is_power_of_two(),
            "memory size must be a power of two"
        );
        ArrayBus {
            words: vec![0; num_words],
        }
    }

    /// Direct word read (test inspection).
    pub fn word(&self, index: usize) -> u32 {
        self.words[index % self.words.len()]
    }

    /// Direct word write (test setup).
    pub fn set_word(&mut self, index: usize, value: u32) {
        let len = self.words.len();
        self.words[index % len] = value;
    }
}

impl<D: Domain<Word = u32>> IssBus<D> for ArrayBus<D> {
    fn load(&mut self, dom: &mut D, addr: u32, width_bytes: u32) -> u32 {
        let _ = dom;
        let index = (addr as usize / 4) % self.words.len();
        let offset = (addr % 4) * 8;
        let word = self.words[index];
        match width_bytes {
            1 => (word >> offset) & 0xff,
            2 => (word >> offset) & 0xffff,
            4 => word,
            _ => panic!("unsupported access width {width_bytes}"),
        }
    }

    fn store(&mut self, dom: &mut D, addr: u32, value: u32, width_bytes: u32) {
        let _ = dom;
        let index = (addr as usize / 4) % self.words.len();
        let offset = (addr % 4) * 8;
        let word = &mut self.words[index];
        match width_bytes {
            1 => {
                let mask = 0xffu32 << offset;
                *word = (*word & !mask) | ((value & 0xff) << offset);
            }
            2 => {
                let mask = 0xffffu32 << offset;
                *word = (*word & !mask) | ((value & 0xffff) << offset);
            }
            4 => *word = value,
            _ => panic!("unsupported access width {width_bytes}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symcosim_symex::ConcreteDomain;

    #[test]
    fn byte_half_word_access() {
        let mut dom = ConcreteDomain::new();
        let mut bus: ArrayBus<ConcreteDomain> = ArrayBus::new(4);
        bus.store(&mut dom, 0, 0xdead_beef, 4);
        assert_eq!(bus.load(&mut dom, 0, 4), 0xdead_beef);
        assert_eq!(bus.load(&mut dom, 0, 1), 0xef);
        assert_eq!(bus.load(&mut dom, 1, 1), 0xbe);
        assert_eq!(bus.load(&mut dom, 2, 2), 0xdead);
        bus.store(&mut dom, 1, 0x55, 1);
        assert_eq!(bus.load(&mut dom, 0, 4), 0xdead_55ef);
        bus.store(&mut dom, 2, 0x1234, 2);
        assert_eq!(bus.load(&mut dom, 0, 4), 0x1234_55ef);
    }

    #[test]
    fn addresses_wrap_into_the_array() {
        let mut dom = ConcreteDomain::new();
        let mut bus: ArrayBus<ConcreteDomain> = ArrayBus::new(2);
        bus.store(&mut dom, 8, 7, 4); // wraps to word 0
        assert_eq!(bus.word(0), 7);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _: ArrayBus<ConcreteDomain> = ArrayBus::new(3);
    }
}
