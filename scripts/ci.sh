#!/usr/bin/env bash
# The repo's tier-1 gate, runnable locally and from CI:
#   build, tests, static analysis, formatting, lints.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> symcosim-lint --all --json"
cargo run --release -p symcosim-lint -- --all --json > /dev/null

echo "==> symcosim-lint --dataflow --merge-report (absint findings + merge lint)"
# The dataflow pass must come back clean (no statically-dead branches on
# live paths) and the merge-opportunity analysis must keep proving at
# least one sibling group disjoint from its diverging fetch-slot bits.
dataflow_json="$(mktemp)"
cargo run --release -p symcosim-lint -- --dataflow --merge-report --json > "$dataflow_json"
grep -q '"schema": "symcosim-lint/1"' "$dataflow_json"
grep -q '"dead_branches": \[\]' "$dataflow_json"
if grep -q '"mergeable_groups": 0,' "$dataflow_json"; then
    echo "merge report proved no sibling group mergeable"; rm -f "$dataflow_json"; exit 1
fi
rm -f "$dataflow_json"

echo "==> coverage certificate + proof audit (BRANCH slice, both surfaces)"
# The run certifies itself in-process (--certify exits 1 on any
# uncovered word or double-claimed path; --audit exits 1 if the
# independent checker rejects any solver answer), dumps the
# symcosim-report/1 and symcosim-audit/1 documents, and symcosim-lint
# re-derives the certificate and re-verifies the proof artifact offline.
report_json="$(mktemp)"
audit_json="$(mktemp)"
trap 'rm -f "$report_json" "$audit_json"' EXIT
# --no-preflight keeps the UNSAT queries on the SAT core so the audit
# artifact retains replayable conflict cones; with the preflight on the
# lattice answers them statically and the artifact is (correctly) empty.
cargo run --release -p symcosim-core --bin symcosim-cli -- \
    verify --rv32i-only --opcode 0x63 --certify --audit --no-preflight \
    --report-json "$report_json" --audit-json "$audit_json" > /dev/null
cargo run --release -p symcosim-lint -- --coverage "$report_json" > /dev/null
cargo run --release -p symcosim-lint -- --audit "$audit_json" > /dev/null
# A tampered artifact must be rejected (exit 1, structured findings):
# stripping the assumption cores leaves every conflict cone unable to
# re-derive its conflict.
tampered_json="$(mktemp)"
sed -z 's/"core": \[[^]]*\]/"core": []/g' "$audit_json" > "$tampered_json"
if cargo run --release -p symcosim-lint -- --audit "$tampered_json" > /dev/null 2>&1; then
    echo "symcosim-lint --audit accepted a tampered artifact"; rm -f "$tampered_json"; exit 1
fi
rm -f "$tampered_json"

echo "==> state merging (merged limit-2 BRANCH certificate gate + limit-4 smoke)"
# The merged limit-2 BRANCH sweep must certify complete and its report
# must be byte-identical to the unmerged run — merging changes which
# physical states execute, never what is recorded (DESIGN.md §16).
merge_on_json="$(mktemp)"
merge_off_json="$(mktemp)"
trap 'rm -f "$report_json" "$audit_json" "$merge_on_json" "$merge_off_json"' EXIT
cargo run --release -p symcosim-core --bin symcosim-cli -- \
    verify --rv32i-only --opcode 0x63 --limit 2 --certify \
    --report-json "$merge_on_json" > /dev/null
cargo run --release -p symcosim-core --bin symcosim-cli -- \
    verify --rv32i-only --opcode 0x63 --limit 2 --certify --no-merge \
    --report-json "$merge_off_json" > /dev/null
cmp "$merge_on_json" "$merge_off_json" || {
    echo "merged limit-2 BRANCH report differs from the unmerged run"; exit 1; }
rm -f "$merge_on_json" "$merge_off_json"
# Limit-4 smoke: the merged deep sweep must run (paths-capped — the
# full certified sweep lives in EXPERIMENTS.md, not the gate).
cargo run --release -p symcosim-core --bin symcosim-cli -- \
    verify --rv32i-only --opcode 0x63 --limit 4 --paths 300 > /dev/null

echo "==> merge equivalence (merged == unmerged reports and certificates)"
cargo test -q --test merge_equivalence

echo "==> serve smoke (daemon round-trip: audited submit, merge, certify, shutdown)"
# Boot the daemon on an ephemeral port, submit a sharded audited BRANCH
# job over localhost, verify the merged certificate the service hands
# back plus the auditor's counters in the status, and shut down cleanly.
# Everything is bounded by `timeout` so a wedged daemon fails the gate
# instead of hanging it.
serve_dir="$(mktemp -d)"
serve_bin=target/release/symcosim-serve
cargo build --release -p symcosim-serve --bin symcosim-serve
timeout 300 "$serve_bin" --addr 127.0.0.1:0 --workers 2 \
    --port-file "$serve_dir/addr" &
serve_pid=$!
trap 'rm -f "$report_json"; rm -rf "$serve_dir"; kill "$serve_pid" 2>/dev/null || true' EXIT
for _ in $(seq 100); do
    [ -s "$serve_dir/addr" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { echo "serve: daemon died before binding"; exit 1; }
    sleep 0.1
done
serve_addr="$(cat "$serve_dir/addr")"
serve_client() { timeout 120 "$serve_bin" client --addr "$serve_addr" "$@"; }
job="$(serve_client submit --opcode 99 --slices 2 --audit)"
serve_client wait "$job" --timeout-secs 120 > "$serve_dir/status"
grep -q '"state": "done"' "$serve_dir/status"
grep -q '"verdict": "complete"' "$serve_dir/status"
grep -q '"audit_failures": 0' "$serve_dir/status"
if grep -q '"audit_steps": 0' "$serve_dir/status"; then
    echo "serve: audited job re-checked no proof steps"; exit 1
fi
serve_client cert "$job" > "$serve_dir/cert"
grep -q '"schema": "symcosim-cert/1"' "$serve_dir/cert"
grep -q '"verdict": "complete"' "$serve_dir/cert"
serve_client shutdown > /dev/null
wait "$serve_pid"

echo "==> solver-chain equivalence (chain on == chain off, all engines)"
cargo test -q --test chain_equivalence

echo "==> proof-audit equivalence (audit on == audit off, all engines)"
cargo test -q --test audit_equivalence

echo "==> frozen goldens (audited BRANCH sweep bytes == pre-incremental core)"
# The incremental core may only change how answers are computed, never
# what is explored or certified: report and certificate bytes must match
# the goldens frozen before the solver surgery (see tests/core_goldens.rs).
cargo test -q --test core_goldens

echo "==> pathengine --smoke (informational, non-gating)"
cargo run --release -p symcosim-bench --bin pathengine -- --smoke

echo "==> solver --smoke (gates chain-on == chain-off reports)"
cargo run --release -p symcosim-bench --bin solver -- --smoke

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> ci OK"
