#!/usr/bin/env bash
# The repo's tier-1 gate, runnable locally and from CI:
#   build, tests, static analysis, formatting, lints.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> symcosim-lint --all --json"
cargo run --release -p symcosim-lint -- --all --json > /dev/null

echo "==> pathengine --smoke (informational, non-gating)"
cargo run --release -p symcosim-bench --bin pathengine -- --smoke

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> ci OK"
