#!/usr/bin/env bash
# The repo's tier-1 gate, runnable locally and from CI:
#   build, tests, static analysis, formatting, lints.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> symcosim-lint --all --json"
cargo run --release -p symcosim-lint -- --all --json > /dev/null

echo "==> coverage certificate (BRANCH slice, both surfaces)"
# The run certifies itself in-process (--certify exits 1 on any
# uncovered word or double-claimed path), dumps the symcosim-report/1
# document, and symcosim-lint re-derives the same certificate offline.
report_json="$(mktemp)"
trap 'rm -f "$report_json"' EXIT
cargo run --release -p symcosim-core --bin symcosim-cli -- \
    verify --rv32i-only --opcode 0x63 --certify --report-json "$report_json" > /dev/null
cargo run --release -p symcosim-lint -- --coverage "$report_json" > /dev/null

echo "==> solver-chain equivalence (chain on == chain off, all engines)"
cargo test -q --test chain_equivalence

echo "==> pathengine --smoke (informational, non-gating)"
cargo run --release -p symcosim-bench --bin pathengine -- --smoke

echo "==> solver --smoke (gates chain-on == chain-off reports)"
cargo run --release -p symcosim-bench --bin solver -- --smoke

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> ci OK"
