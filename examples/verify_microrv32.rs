//! Reproduces the paper's first case study (Table I): verify the shipped
//! MicroRV32 against the shipped RISC-V VP ISS over the full RV32I+Zicsr
//! space and catalogue every error and mismatch.
//!
//! Run with: `cargo run --release --example verify_microrv32`

use std::error::Error;

use symcosim::core::{FindingClass, SessionConfig, VerifySession};

fn main() -> Result<(), Box<dyn Error>> {
    // Shipped-model configurations: every Table I behaviour is present.
    // One symbolic instruction per path sweeps the whole RV32I+Zicsr space
    // (see the `table1` bench binary for the two-instruction extension that
    // also surfaces write-then-read CSR mismatches).
    let config = SessionConfig::table1();

    println!("verifying MicroRV32 (shipped) against the RISC-V VP ISS (shipped)…");
    println!("instruction space: full RV32I+Zicsr, symbolic registers: x1..x2\n");

    let report = VerifySession::new(config)?.run();

    println!(
        "{} paths explored ({} complete, {} partial), {} instructions, {} test vectors, {:.2?}\n",
        report.total_paths(),
        report.paths_complete,
        report.paths_partial,
        report.instructions_executed,
        report.test_vectors,
        report.duration,
    );

    let count = |class: FindingClass| report.findings.iter().filter(|f| f.class == class).count();
    println!(
        "findings: {} total — {} RTL errors (E), {} ISS errors (E*), {} mismatches (M)\n",
        report.findings.len(),
        count(FindingClass::RtlError),
        count(FindingClass::IssError),
        count(FindingClass::ImplMismatch),
    );

    println!(
        "{:<16} {:<34} {:<40} R",
        "Instruction/CSR", "Example", "Description"
    );
    println!("{}", "-".repeat(96));
    for finding in &report.findings {
        println!(
            "{:<16} {:<34} {:<40} {}",
            finding.subject,
            finding.example.as_deref().unwrap_or("-"),
            finding.label,
            finding.class,
        );
    }
    Ok(())
}
