//! Directed program-level co-simulation: assemble a real RV32I program,
//! run it through the cycle-accurate core and the ISS in lockstep, and
//! let the voter confirm the two agree instruction by instruction.
//!
//! This is the "classical" directed-test flow the paper's symbolic
//! exploration generalises — included to show the harness doubles as a
//! conventional differential testbench.
//!
//! Run with: `cargo run --release --example program_cosim`

use std::error::Error;

use symcosim::core::{CoSim, ConcreteJudge, SymbolicInstrMemory};
use symcosim::isa::asm::assemble;
use symcosim::iss::IssConfig;
use symcosim::microrv32::CoreConfig;
use symcosim::symex::ConcreteDomain;

fn main() -> Result<(), Box<dyn Error>> {
    // Iterative Fibonacci: computes fib(12) into x12, stores each value.
    let program = assemble(
        r"
        start:
            li   x10, 0          # fib(0)
            li   x11, 1          # fib(1)
            li   x5, 12          # iterations
            li   x6, 0           # store pointer
        loop:
            add  x12, x10, x11   # next
            mv   x10, x11
            mv   x11, x12
            sw   x12, 0(x6)
            addi x6, x6, 4
            addi x5, x5, -1
            bnez x5, loop
            ebreak
        ",
    )?;
    println!("assembled {} instructions", program.len());

    let mut dom = ConcreteDomain::new();
    let imem = SymbolicInstrMemory::from_program(program);
    let mut cosim = CoSim::new(
        &mut dom,
        CoreConfig::fixed(),
        IssConfig::fixed(),
        None,
        imem,
        0,
        64,   // data memory: 64 words
        89,   // instruction budget: 4 setup + 12×7 loop + ebreak
        4096, // cycle budget
    );

    let result = cosim.run(&mut dom, &mut ConcreteJudge);
    println!(
        "executed {} instructions over {} core cycles",
        result.instructions, result.cycles
    );
    match &result.mismatch {
        // The ebreak traps identically in both models, the voter then
        // compares every register and the full data memory.
        None => println!("core and ISS agree on the whole run ✓"),
        Some(mismatch) => println!("UNEXPECTED mismatch: {mismatch}"),
    }
    println!("fib(13) per the core   : {}", cosim.core.register(12));
    println!("fib(13) per the ISS   : {}", cosim.iss.register(12));
    assert_eq!(cosim.core.register(12), 233);
    Ok(())
}
