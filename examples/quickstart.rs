//! Quickstart: find an injected RTL bug by symbolic co-simulation.
//!
//! Builds the co-simulation of the MicroRV32-equivalent core against the
//! reference ISS, seeds the core with fault E6 (`BNE` behaves like `BEQ`),
//! makes the instruction stream and two registers symbolic, and lets the
//! symbolic engine search for a functional mismatch.
//!
//! Run with: `cargo run --release --example quickstart`

use std::error::Error;

use symcosim::core::{SessionConfig, VerifySession};
use symcosim::microrv32::InjectedError;

fn main() -> Result<(), Box<dyn Error>> {
    // RV32I-only exploration against the corrected models, stopping at the
    // first mismatch — the paper's error-injection configuration.
    let mut config = SessionConfig::rv32i_only();
    config.inject = Some(InjectedError::E6BneBehavesLikeBeq);

    println!("injected fault : {}", InjectedError::E6BneBehavesLikeBeq);
    println!("searching for a functional mismatch…\n");

    let report = VerifySession::new(config)?.run();

    println!(
        "explored {} paths ({} complete, {} partial) — {} instructions in {:.2?}\n",
        report.total_paths(),
        report.paths_complete,
        report.paths_partial,
        report.instructions_executed,
        report.duration,
    );

    match report.first_mismatch() {
        Some(finding) => {
            println!("mismatch found: {finding}");
            println!("voter verdict : {}", finding.mismatch);
            if let Some(witness) = &finding.witness {
                println!("test vector   : {witness}");
            }
        }
        None => println!("no mismatch found — unexpected for an injected fault!"),
    }
    Ok(())
}
