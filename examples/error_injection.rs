//! Reproduces the paper's second case study (Table II) in miniature: for
//! each injected error E0–E9, measure how quickly the symbolic
//! co-simulation detects it.
//!
//! Run with: `cargo run --release --example error_injection`

use std::error::Error;
use std::time::Instant;

use symcosim::core::{SessionConfig, VerifySession};
use symcosim::microrv32::InjectedError;

fn main() -> Result<(), Box<dyn Error>> {
    println!("error-injection evaluation, instruction limit 1, RV32I only\n");
    println!(
        "{:<6} {:<8} {:>8} {:>10} {:>8} {:>8}  description",
        "Error", "Result", "Paths", "Instr.", "Partial", "Time"
    );
    println!("{}", "-".repeat(88));

    for error in InjectedError::ALL {
        let mut config = SessionConfig::rv32i_only();
        config.inject = Some(error);
        let start = Instant::now();
        let report = VerifySession::new(config)?.run();
        let found = report.first_mismatch().is_some();
        println!(
            "{:<6} {:<8} {:>8} {:>10} {:>8} {:>7.2?}  {}",
            error.id(),
            if found { "found" } else { "missed" },
            report.total_paths(),
            report.instructions_executed,
            report.paths_partial,
            start.elapsed(),
            error.description(),
        );
    }
    Ok(())
}
