//! Head-to-head: symbolic execution vs the random fuzzing baseline.
//!
//! Both drive the *same* co-simulation harness; the fuzzer feeds random
//! concrete instruction words and register seeds, the symbolic engine
//! explores the instruction space exhaustively. The paper motivates
//! symbolic execution exactly by this comparison: fuzzing is fast on
//! shallow bugs but can miss corner cases; symbolic exploration is
//! systematic.
//!
//! Run with: `cargo run --release --example fuzz_vs_symbolic`

use std::error::Error;
use std::time::Instant;

use symcosim::core::fuzz::{self, FuzzConfig};
use symcosim::core::{SessionConfig, VerifySession};
use symcosim::microrv32::InjectedError;

fn main() -> Result<(), Box<dyn Error>> {
    // E3 flips a low result bit of ADDI — easy for fuzzing. E0 needs a
    // *reserved encoding* with specific funct7 bits — a corner case where
    // random generation struggles and symbolic search shines.
    let cases = [
        InjectedError::E3AddiStuckAt0Lsb,
        InjectedError::E0SlliDecodeDontCare,
    ];

    println!(
        "{:<6} {:<10} {:<8} {:>12} {:>10}",
        "Error", "Method", "Result", "Work", "Time"
    );
    println!("{}", "-".repeat(55));

    for error in cases {
        // Symbolic exploration.
        let mut config = SessionConfig::rv32i_only();
        config.inject = Some(error);
        let start = Instant::now();
        let report = VerifySession::new(config)?.run();
        println!(
            "{:<6} {:<10} {:<8} {:>9} paths {:>9.2?}",
            error.id(),
            "symbolic",
            if report.first_mismatch().is_some() {
                "found"
            } else {
                "missed"
            },
            report.total_paths(),
            start.elapsed(),
        );

        // Random fuzzing over the same harness.
        let mut config = FuzzConfig::rv32i_only();
        config.inject = Some(error);
        config.max_runs = 3_000_000;
        let outcome = fuzz::run(&config);
        println!(
            "{:<6} {:<10} {:<8} {:>10} runs {:>9.2?}",
            error.id(),
            "fuzzing",
            if outcome.found() { "found" } else { "missed" },
            outcome.runs,
            outcome.duration,
        );
    }
    println!("\nNote: fuzzing misses E0 within the budget — a reserved-encoding corner");
    println!("case needs 1 of 2^7 funct7 patterns on one specific opcode/funct3, which");
    println!("is exactly the kind of bug the paper's symbolic approach targets.");
    Ok(())
}
