//! The solver chain is a pure accelerator: toggling
//! [`SessionConfig::solver_chain`] changes how feasibility queries are
//! answered (independence slicing, counterexample-core subsumption,
//! cached-model evaluation) but never what is answered. Every execution
//! mode — re-execution, fork, and fork on worker threads — produces a
//! bit-identical `symcosim-report/1` document and coverage certificate
//! with the chain on or off, while the chain-on run issues strictly
//! fewer SAT `solve()` calls.

use symcosim::core::{
    Certificate, EngineKind, InstrConstraint, SessionConfig, VerifyReport, VerifySession,
};
use symcosim::isa::opcodes;

fn run(mut config: SessionConfig, engine: EngineKind, jobs: usize) -> VerifyReport {
    config.engine = engine;
    let session = VerifySession::new(config).expect("valid config");
    if jobs <= 1 {
        session.run()
    } else {
        session.run_parallel(jobs)
    }
}

#[test]
fn chain_toggle_is_invisible_across_engines() {
    let mut config = SessionConfig::rv32i_only();
    config.stop_at_first_mismatch = false;
    config.constraint = InstrConstraint::OnlyOpcode(opcodes::LUI);
    config.collect_coverage = true;

    let mut on = config.clone();
    on.solver_chain = true;
    let mut off = config;
    off.solver_chain = false;

    let baseline = run(on.clone(), EngineKind::Fork, 1);
    let expected_report = baseline.to_json();
    let expected_cert =
        Certificate::certify(baseline.coverage.as_ref().expect("coverage")).to_json();

    for (label, config) in [("chain on", on), ("chain off", off)] {
        for (mode, engine, jobs) in [
            ("reexec", EngineKind::Reexec, 1),
            ("fork", EngineKind::Fork, 1),
            ("fork x2", EngineKind::Fork, 2),
        ] {
            let report = run(config.clone(), engine, jobs);
            assert_eq!(
                report.to_json(),
                expected_report,
                "{label} / {mode}: report diverged"
            );
            assert_eq!(
                Certificate::certify(report.coverage.as_ref().expect("coverage")).to_json(),
                expected_cert,
                "{label} / {mode}: certificate diverged"
            );
            if config.solver_chain {
                assert!(report.chain_stats.queries > 0, "{mode}: chain unused");
            } else {
                assert_eq!(report.chain_stats.queries, 0, "{mode}: chain stats leak");
            }
        }
    }
}

#[test]
fn chain_saves_solves_without_changing_findings() {
    // Catalogue mode against the shipped models: the STORE slice has real
    // mismatches, and the chain must reproduce them exactly while doing
    // strictly less SAT work.
    let mut config = SessionConfig::table1();
    config.constraint = InstrConstraint::OnlyOpcode(opcodes::STORE);

    let mut on = config.clone();
    on.solver_chain = true;
    let mut off = config;
    off.solver_chain = false;

    let with_chain = run(on, EngineKind::Fork, 1);
    let without = run(off, EngineKind::Fork, 1);

    assert!(!with_chain.findings.is_empty(), "STORE must mismatch");
    assert_eq!(with_chain.to_json(), without.to_json());
    assert!(
        with_chain.solver_stats.solves < without.solver_stats.solves,
        "chain must reduce SAT solve() calls: {} vs {}",
        with_chain.solver_stats.solves,
        without.solver_stats.solves
    );
}
