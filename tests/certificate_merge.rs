//! Distributed certification: shard a decode space into cube-disjoint
//! slices, verify each slice in its own session, merge the per-slice
//! coverage — the merged certificate is **byte-identical** to the
//! single-process run's. The merge first proves (cube algebra, zero
//! enumeration) that the slices partition the legal decode space exactly
//! once; families that overlap or leave a residual cube are rejected with
//! concrete witnesses.

use symcosim::core::{
    merge_slice_coverage, project_domain, Certificate, CoverageSlice, InstrConstraint, MergeError,
    SessionConfig, Verdict, VerifySession,
};
use symcosim::isa::opcodes;
use symcosim::isa::pattern::{partition_universe, Pattern};

fn branch_config() -> SessionConfig {
    let mut config = SessionConfig::rv32i_only();
    config.stop_at_first_mismatch = false;
    config.constraint = InstrConstraint::OnlyOpcode(opcodes::BRANCH);
    config.collect_coverage = true;
    config
}

/// Runs `config` scoped to `slice` and returns its coverage.
fn run_slice(config: &SessionConfig, cube: Pattern) -> CoverageSlice {
    let mut config = config.clone();
    config.slice = Some(cube);
    let report = VerifySession::new(config).expect("valid config").run();
    CoverageSlice {
        cube,
        data: report.coverage.expect("coverage was collected"),
    }
}

/// Shards `config` into `n` slices, merges, and returns the merged
/// certificate JSON.
fn sharded_certificate(config: &SessionConfig, n: usize) -> String {
    let slices: Vec<CoverageSlice> = partition_universe(n)
        .into_iter()
        .map(|cube| run_slice(config, cube))
        .collect();
    let (domain, domain_exact) = project_domain(config.constraint, None);
    let merged = merge_slice_coverage(domain, domain_exact, &slices)
        .expect("disjoint covering slices merge");
    Certificate::certify(&merged).to_json()
}

#[test]
fn sliced_branch_certificates_merge_byte_identically() {
    let config = branch_config();
    let single = VerifySession::new(config.clone())
        .expect("valid config")
        .run();
    let expected = Certificate::certify(single.coverage.as_ref().expect("coverage")).to_json();
    assert!(expected.contains("\"verdict\": \"complete\""));

    for n in [2usize, 3, 5] {
        let merged = sharded_certificate(&config, n);
        assert_eq!(
            merged, expected,
            "{n}-slice merged certificate diverged from the single-run certificate"
        );
    }
}

#[test]
fn each_slice_certifies_complete_over_its_narrowed_domain() {
    let config = branch_config();
    for cube in partition_universe(2) {
        let slice = run_slice(&config, cube);
        let cert = Certificate::certify(&slice.data);
        assert_eq!(
            cert.verdict,
            Verdict::Complete,
            "a drained slice must certify complete on its own:\n{cert}"
        );
        // The slice's own domain is the constraint ∧ cube projection:
        // exactly half the BRANCH space.
        assert!(cert.domain_exact);
        for slot in &cert.slots {
            assert_eq!(slot.domain_words, 1 << 24);
            assert_eq!(slot.residual_words, 0);
        }
    }
}

#[test]
fn overlapping_slices_are_rejected_with_a_witness() {
    let config = branch_config();
    // Both "slices" cover the whole space: every word is claimed twice.
    let a = run_slice(&config, Pattern::universe());
    let b = CoverageSlice {
        cube: Pattern::universe(),
        data: a.data.clone(),
    };
    let (domain, domain_exact) = project_domain(config.constraint, None);
    match merge_slice_coverage(domain, domain_exact, &[a, b]) {
        Err(MergeError::OverlappingSlices { a, b, witness }) => {
            assert!(a.covers(witness) && b.covers(witness));
        }
        other => panic!("overlap must be rejected, got {other:?}"),
    }
}

#[test]
fn a_residual_domain_cube_is_rejected_with_a_witness() {
    let config = branch_config();
    // Only the funct3-MSB=0 half: BNE/BEQ-side words are covered, the
    // BLT/BGE side is not.
    let half = partition_universe(2)[0];
    let slice = run_slice(&config, half);
    let (domain, domain_exact) = project_domain(config.constraint, None);
    match merge_slice_coverage(domain, domain_exact, &[slice]) {
        Err(MergeError::ResidualCube { cube, witness }) => {
            assert!(cube.covers(witness));
            assert_eq!(
                witness & 0x7f,
                opcodes::BRANCH & 0x7f,
                "the witness lies in the legal decode domain"
            );
            assert_ne!(witness & (1 << 14), 0, "the uncovered half is funct3 MSB=1");
        }
        other => panic!("residual must be rejected, got {other:?}"),
    }
}

#[test]
fn a_warm_chain_seed_reproduces_the_report_with_fewer_solves() {
    // The serve daemon's cross-request cache handoff: run a slice, export
    // the solver-chain seed, re-run the identical slice warm. The report
    // (and hence the certificate) is bit-identical; only the solver work
    // changes.
    let mut config = branch_config();
    config.slice = Some(partition_universe(2)[0]);

    let (cold, seed) = VerifySession::new(config.clone())
        .expect("valid config")
        .run_seeded(None);
    assert!(!seed.is_empty(), "a real run populates the chain caches");

    let (warm, _) = VerifySession::new(config)
        .expect("valid config")
        .run_seeded(Some(&seed));
    assert_eq!(
        warm.to_json(),
        cold.to_json(),
        "warming the chain must not change the report"
    );
    assert!(
        warm.chain_stats.solves < cold.chain_stats.solves,
        "warm run must re-solve less: cold {} vs warm {}",
        cold.chain_stats,
        warm.chain_stats
    );
    assert!(
        warm.chain_stats.slice_hits + warm.chain_stats.model_hits
            > cold.chain_stats.slice_hits + cold.chain_stats.model_hits,
        "warm run must hit the imported caches: cold {} vs warm {}",
        cold.chain_stats,
        warm.chain_stats
    );
}

#[test]
fn merging_no_slices_is_an_error() {
    assert_eq!(
        merge_slice_coverage(vec![Pattern::universe()], true, &[]),
        Err(MergeError::NoSlices)
    );
}
