//! The fork engine is a drop-in for the re-execution engine: for any
//! frontier-drained configuration, running the session with
//! `EngineKind::Fork` (the default) produces a report bit-identical to
//! `EngineKind::Reexec` — same findings in the same canonical order,
//! same witnesses and examples, same path/instruction/cycle counts.
//!
//! Both engines walk the decision tree in the same seeded order and ask
//! the solver the same queries; they differ only in how a sibling path
//! reconstructs its prefix (replay from the root versus resuming a
//! copy-on-write snapshot). See DESIGN.md §9 for the argument.
//!
//! The configurations below restrict generation to one major opcode so
//! each exploration stays small; the property itself is
//! configuration-independent.

use symcosim::core::{EngineKind, InstrConstraint, SessionConfig, VerifyReport, VerifySession};
use symcosim::isa::opcodes;
use symcosim::microrv32::InjectedError;

/// Everything report-visible except wall-clock duration and solver/cache
/// statistics (the fork engine skips replay, so it performs fewer cached
/// feasibility lookups; the *solved* query sequence is identical).
fn fingerprint(report: &VerifyReport) -> String {
    let mut out = String::new();
    for finding in &report.findings {
        out.push_str(&format!(
            "{}|{}|{}|{:?}|{}\n",
            finding.class,
            finding.subject,
            finding.label,
            finding.example,
            finding
                .witness
                .as_ref()
                .map(|w| w.to_string())
                .unwrap_or_default(),
        ));
    }
    out.push_str(&format!(
        "complete={} partial={} vectors={} instrs={} cycles={} truncated={}",
        report.paths_complete,
        report.paths_partial,
        report.test_vectors,
        report.instructions_executed,
        report.cycles,
        report.truncated,
    ));
    out
}

/// Runs `config` under the re-execution engine, the fork engine, and the
/// fork engine on two workers, and asserts all three reports agree.
fn engines_agree(config: SessionConfig) -> VerifyReport {
    let mut reexec_config = config.clone();
    reexec_config.engine = EngineKind::Reexec;
    let reexec = VerifySession::new(reexec_config)
        .expect("valid config")
        .run();
    let expected = fingerprint(&reexec);

    let mut fork_config = config.clone();
    fork_config.engine = EngineKind::Fork;
    let fork = VerifySession::new(fork_config.clone())
        .expect("valid config")
        .run();
    assert_eq!(
        fingerprint(&fork),
        expected,
        "fork run() diverged from the re-execution report"
    );

    let fork_parallel = VerifySession::new(fork_config)
        .expect("valid config")
        .run_parallel(2);
    assert_eq!(
        fingerprint(&fork_parallel),
        expected,
        "fork run_parallel(2) diverged from the re-execution report"
    );
    reexec
}

#[test]
fn clean_models_branch_space() {
    // Corrected models, no fault: both engines must drain the BRANCH
    // space without findings and agree on every count.
    let mut config = SessionConfig::rv32i_only();
    config.stop_at_first_mismatch = false;
    config.constraint = InstrConstraint::OnlyOpcode(opcodes::BRANCH);
    let report = engines_agree(config);
    assert!(report.findings.is_empty(), "clean models must not mismatch");
    assert!(!report.truncated, "the frontier must drain");
}

#[test]
fn shipped_models_store_space() {
    // One Table I slice (STORE against the shipped models) checks the
    // catalogue mode: findings, examples and witnesses must all agree.
    let mut config = SessionConfig::table1();
    config.constraint = InstrConstraint::OnlyOpcode(opcodes::STORE);
    let report = engines_agree(config);
    assert!(
        !report.findings.is_empty(),
        "the shipped models mismatch on STORE"
    );
}

#[test]
fn injected_e4_op_space() {
    // Injected-fault mode: E4 (SUB result bit 31 stuck at 0) lives in
    // the OP opcode space, and its witness extraction must agree too.
    let mut config = SessionConfig::rv32i_only();
    config.inject = Some(InjectedError::E4SubStuckAt0Msb);
    config.stop_at_first_mismatch = false;
    config.constraint = InstrConstraint::OnlyOpcode(opcodes::OP);
    let report = engines_agree(config);
    assert!(
        report.findings.iter().any(|f| f.witness.is_some()),
        "the injected fault must be found with a witness"
    );
}
