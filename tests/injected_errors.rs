//! Table II end-to-end: every injected error E0–E9 is detected by the
//! symbolic co-simulation with an instruction limit of one, and every
//! extracted test vector replays concretely.

use symcosim::core::{replay, SessionConfig, VerifySession};
use symcosim::microrv32::InjectedError;

fn detect(error: InjectedError) -> (bool, Option<symcosim::symex::TestVector>, SessionConfig) {
    let mut config = SessionConfig::rv32i_only();
    config.inject = Some(error);
    let report = VerifySession::new(config.clone())
        .expect("valid config")
        .run();
    let witness = report.first_mismatch().and_then(|f| f.witness.clone());
    (report.first_mismatch().is_some(), witness, config)
}

macro_rules! detection_test {
    ($name:ident, $error:expr) => {
        #[test]
        fn $name() {
            let (found, witness, config) = detect($error);
            assert!(found, "{} must be detected at instruction limit 1", $error);
            let vector = witness.expect("finding carries a witness vector");
            let rerun = replay(&config, &vector);
            assert!(
                rerun.mismatch.is_some(),
                "witness {vector} must reproduce {} concretely",
                $error
            );
        }
    };
}

detection_test!(finds_e0_slli_decode, InjectedError::E0SlliDecodeDontCare);
detection_test!(finds_e1_srli_decode, InjectedError::E1SrliDecodeDontCare);
detection_test!(finds_e2_srai_decode, InjectedError::E2SraiDecodeDontCare);
detection_test!(finds_e3_addi_stuck_lsb, InjectedError::E3AddiStuckAt0Lsb);
detection_test!(finds_e4_sub_stuck_msb, InjectedError::E4SubStuckAt0Msb);
detection_test!(finds_e5_jal_no_pc_update, InjectedError::E5JalNoPcUpdate);
detection_test!(finds_e6_bne_as_beq, InjectedError::E6BneBehavesLikeBeq);
detection_test!(finds_e7_lbu_endianness, InjectedError::E7LbuEndiannessFlip);
detection_test!(
    finds_e8_lb_no_sign_extension,
    InjectedError::E8LbNoSignExtension
);
detection_test!(finds_e9_lw_low16, InjectedError::E9LwOnlyLow16);
