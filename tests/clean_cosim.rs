//! End-to-end soundness: with both models corrected, the symbolic
//! exploration of the full instruction space must find *no* mismatch.
//!
//! This is the strongest regression test of the whole pipeline: the ISS
//! and the RTL core are written independently, so any disagreement between
//! them (or any unsoundness in the engine, blaster or SAT solver) shows up
//! here as a spurious finding.

use symcosim::core::{InstrConstraint, SessionConfig, VerifySession};

#[test]
fn corrected_models_agree_on_rv32i() {
    let mut config = SessionConfig::rv32i_only();
    config.stop_at_first_mismatch = false;
    let report = VerifySession::new(config).expect("valid config").run();
    assert!(
        report.findings.is_empty(),
        "corrected models must agree; found: {:?}",
        report.findings
    );
    assert!(
        report.paths_complete > 50,
        "the RV32I space has many decode classes"
    );
    assert_eq!(
        report.paths_partial, 0,
        "no path should die in the clean configuration"
    );
    assert!(!report.truncated);
}

#[test]
fn corrected_models_agree_on_full_isa_including_csrs() {
    let mut config = SessionConfig::rv32i_only();
    config.constraint = InstrConstraint::None; // allow SYSTEM instructions
    config.stop_at_first_mismatch = false;
    let report = VerifySession::new(config).expect("valid config").run();
    assert!(
        report.findings.is_empty(),
        "corrected models must agree on CSR behaviour too; found: {:?}",
        report.findings
    );
}

#[test]
fn clean_exploration_emits_a_vector_per_path() {
    let mut config = SessionConfig::rv32i_only();
    config.stop_at_first_mismatch = false;
    config.constraint = InstrConstraint::OnlyOpcode(symcosim::isa::opcodes::LUI);
    let report = VerifySession::new(config).expect("valid config").run();
    // LUI never branches on data: exactly one feasible path.
    assert_eq!(report.paths_complete, 1);
    assert_eq!(report.test_vectors, 1);
    assert!(report.findings.is_empty());
}
