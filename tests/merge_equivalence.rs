//! Veritesting-style state merging is invisible in every artifact: for a
//! frontier-drained configuration, the fork engine with
//! `SessionConfig::merge` on produces a `symcosim-report/1` dump and a
//! `symcosim-cert/1` certificate **byte-identical** to the unmerged run
//! (`--no-merge`) and to the parallel merged run — same findings, same
//! witnesses, same coverage cubes. Merging only changes how many physical
//! paths the engine drives; every merged sibling is expanded back into
//! the path record its own unmerged run would have produced (DESIGN.md
//! §16).
//!
//! The clean BRANCH sweep also pins down that merging actually *fires*
//! there: branch flavours that agree on the post-instruction state (all
//! not-taken arms share `pc+4`, all taken arms share `pc+imm` over the
//! same fetch word) continue as one physical path each.

use symcosim::core::{
    Certificate, EngineKind, InstrConstraint, SessionConfig, Verdict, VerifyReport, VerifySession,
};
use symcosim::isa::opcodes;
use symcosim::microrv32::InjectedError;

/// Runs `config` with merging off (sequential), on (sequential), and on
/// across two workers; asserts the report dumps and certificates are
/// byte-identical, and returns the merged sequential report.
fn merge_is_invisible(config: SessionConfig) -> VerifyReport {
    let mut config = config;
    config.engine = EngineKind::Fork;
    config.collect_coverage = true;

    let mut unmerged_config = config.clone();
    unmerged_config.merge = false;
    let unmerged = VerifySession::new(unmerged_config)
        .expect("valid config")
        .run();
    assert_eq!(unmerged.merged_paths, 0, "--no-merge must not merge");
    let expected_report = unmerged.to_json();
    let expected_cert = certificate_of(&unmerged);

    let mut merged_config = config.clone();
    merged_config.merge = true;
    let merged = VerifySession::new(merged_config.clone())
        .expect("valid config")
        .run();
    assert_eq!(
        merged.to_json(),
        expected_report,
        "merged run() report diverged from the unmerged dump"
    );
    assert_eq!(
        certificate_of(&merged),
        expected_cert,
        "merged run() certificate diverged from the unmerged one"
    );

    let merged_parallel = VerifySession::new(merged_config)
        .expect("valid config")
        .run_parallel(2);
    assert_eq!(
        merged_parallel.to_json(),
        expected_report,
        "merged run_parallel(2) report diverged from the unmerged dump"
    );
    assert_eq!(
        certificate_of(&merged_parallel),
        expected_cert,
        "merged run_parallel(2) certificate diverged from the unmerged one"
    );

    merged
}

fn certificate_of(report: &VerifyReport) -> String {
    let coverage = report.coverage.as_ref().expect("coverage was collected");
    Certificate::certify(coverage).to_json()
}

#[test]
fn clean_branch_space_merges_invisibly_and_certifies_complete() {
    let mut config = SessionConfig::rv32i_only();
    config.stop_at_first_mismatch = false;
    config.constraint = InstrConstraint::OnlyOpcode(opcodes::BRANCH);
    let report = merge_is_invisible(config);

    assert!(report.findings.is_empty(), "clean models must not mismatch");
    assert!(!report.truncated, "the frontier must drain");
    assert!(
        report.merged_paths > 0,
        "state merging must fire on the BRANCH decode siblings \
         (got {} merged path records)",
        report.merged_paths
    );
    let cert = Certificate::certify(report.coverage.as_ref().expect("coverage"));
    assert_eq!(
        cert.verdict,
        Verdict::Complete,
        "a drained merged clean run must certify complete:\n{cert}"
    );
}

#[test]
fn table1_store_slice_merges_invisibly() {
    // Catalogue mode against the shipped models: mismatch witnesses and
    // examples ride through arm expansion byte-for-byte.
    let mut config = SessionConfig::table1();
    config.constraint = InstrConstraint::OnlyOpcode(opcodes::STORE);
    let report = merge_is_invisible(config);
    assert!(
        !report.findings.is_empty(),
        "the shipped models mismatch on STORE"
    );
}

#[test]
fn injected_e4_op_space_merges_invisibly() {
    let mut config = SessionConfig::rv32i_only();
    config.inject = Some(InjectedError::E4SubStuckAt0Msb);
    config.stop_at_first_mismatch = false;
    config.constraint = InstrConstraint::OnlyOpcode(opcodes::OP);
    let report = merge_is_invisible(config);
    assert!(
        report.findings.iter().any(|f| f.witness.is_some()),
        "the injected fault must be found with a witness"
    );
}

#[test]
fn audited_merged_run_certifies_clean() {
    // Proof logging composes with merging: every solver answer behind a
    // merged run's decisions replays through the independent checker.
    let mut config = SessionConfig::rv32i_only();
    config.stop_at_first_mismatch = false;
    config.constraint = InstrConstraint::OnlyOpcode(opcodes::BRANCH);
    config.audit = true;
    config.merge = true;
    let report = VerifySession::new(config).expect("valid config").run();
    assert!(report.findings.is_empty());
    assert!(
        report.proof_audit_failure.is_none(),
        "audit failure: {:?}",
        report.proof_audit_failure
    );
    assert!(
        report.proof_audit.models + report.proof_audit.cores > 0,
        "the auditor must certify answers during a merged run"
    );
    assert_eq!(report.proof_audit.failures, 0);
}

#[test]
fn stop_at_first_mismatch_forces_merging_off() {
    // Stop-early runs explore a scheduling-dependent subset; the session
    // gates merging off so Table II timing stays comparable.
    let mut config = SessionConfig::rv32i_only();
    config.inject = Some(InjectedError::E4SubStuckAt0Msb);
    config.constraint = InstrConstraint::OnlyOpcode(opcodes::OP);
    assert!(config.stop_at_first_mismatch && config.merge);
    let report = VerifySession::new(config).expect("valid config").run();
    assert_eq!(
        report.merged_paths, 0,
        "stop-at-first-mismatch must not merge"
    );
    assert!(!report.findings.is_empty(), "E4 must still be found");
}
