//! The parallel executor is a drop-in for the sequential engine: for any
//! frontier-drained configuration, `run_parallel(jobs)` produces a report
//! identical to `run()` for every worker count — same findings in the
//! same canonical order, same witnesses, same path/test-vector counts.
//!
//! The configurations below restrict generation to one major opcode to
//! keep each exploration small; the property itself is configuration-
//! independent (see `crates/exec` and DESIGN.md for the argument).

use symcosim::core::{InstrConstraint, SessionConfig, VerifyReport, VerifySession};
use symcosim::isa::opcodes;
use symcosim::microrv32::InjectedError;

/// Everything report-visible except the wall-clock duration.
fn fingerprint(report: &VerifyReport) -> String {
    let mut out = String::new();
    for finding in &report.findings {
        out.push_str(&format!(
            "{}|{}|{}|{:?}|{}\n",
            finding.class,
            finding.subject,
            finding.label,
            finding.example,
            finding
                .witness
                .as_ref()
                .map(|w| w.to_string())
                .unwrap_or_default(),
        ));
    }
    out.push_str(&format!(
        "complete={} partial={} vectors={} instrs={} cycles={} truncated={}",
        report.paths_complete,
        report.paths_partial,
        report.test_vectors,
        report.instructions_executed,
        report.cycles,
        report.truncated,
    ));
    out
}

fn identical_for_all_job_counts(config: SessionConfig) -> VerifyReport {
    let sequential = VerifySession::new(config.clone())
        .expect("valid config")
        .run();
    let expected = fingerprint(&sequential);
    for jobs in [1, 2, 4] {
        let parallel = VerifySession::new(config.clone())
            .expect("valid config")
            .run_parallel(jobs);
        assert_eq!(
            fingerprint(&parallel),
            expected,
            "run_parallel({jobs}) diverged from the sequential report"
        );
    }
    sequential
}

#[test]
fn clean_models_branch_space() {
    // Corrected models, no fault: the report must be mismatch-free and
    // identical across worker counts.
    let mut config = SessionConfig::rv32i_only();
    config.stop_at_first_mismatch = false;
    config.constraint = InstrConstraint::OnlyOpcode(opcodes::BRANCH);
    let report = identical_for_all_job_counts(config);
    assert!(report.findings.is_empty(), "clean models must not mismatch");
    assert!(!report.truncated, "the frontier must drain");
}

#[test]
fn shipped_models_store_space() {
    // One Table I slice (STORE against the shipped models) checks the
    // catalogue mode: findings, examples and witnesses must all agree.
    let mut config = SessionConfig::table1();
    config.constraint = InstrConstraint::OnlyOpcode(opcodes::STORE);
    let report = identical_for_all_job_counts(config);
    assert!(
        !report.findings.is_empty(),
        "the shipped models mismatch on STORE"
    );
}

#[test]
fn injected_e4_op_space() {
    // Injected-fault catalogue mode: E4 (SUB result bit 31 stuck at 0)
    // lives in the OP opcode space. Full drain (no stop-at-first) keeps
    // the explored set — and therefore the report — schedule-independent.
    let mut config = SessionConfig::rv32i_only();
    config.inject = Some(InjectedError::E4SubStuckAt0Msb);
    config.stop_at_first_mismatch = false;
    config.constraint = InstrConstraint::OnlyOpcode(opcodes::OP);
    let report = identical_for_all_job_counts(config);
    assert!(
        report.findings.iter().any(|f| f.witness.is_some()),
        "the injected fault must be found with a witness"
    );
}
