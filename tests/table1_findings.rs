//! Table I end-to-end: verifying the *shipped* models against each other
//! rediscovers the paper's catalogue of errors and mismatches.

use symcosim::core::{FindingClass, SessionConfig, VerifySession};

fn run_table1(instr_limit: u32) -> symcosim::core::VerifyReport {
    let mut config = SessionConfig::table1();
    config.instr_limit = instr_limit;
    config.cycle_limit = 64 * instr_limit as u64;
    VerifySession::new(config).expect("valid config").run()
}

fn has(report: &symcosim::core::VerifyReport, subject: &str, label_fragment: &str) -> bool {
    report
        .findings
        .iter()
        .any(|f| f.subject == subject && f.label.contains(label_fragment))
}

#[test]
fn limit_one_finds_the_shallow_catalogue() {
    let report = run_table1(1);

    // Misalignment mismatches (Table I rows LW/LH/LHU/SW/SH).
    for subject in ["LW", "LH", "LHU", "SW", "SH"] {
        assert!(
            has(&report, subject, "alignment"),
            "{subject} alignment row missing"
        );
    }
    // The missing WFI instruction (RTL error).
    assert!(has(&report, "WFI", "Missing WFI instruction"));
    // Spurious traps at counter writes (RTL errors).
    for subject in ["mip", "mcycle", "minstret", "mcycleh", "minstreth"] {
        assert!(
            has(&report, subject, "Trap at write access"),
            "{subject} row missing"
        );
    }
    // Missing traps at writes to read-only ID registers (RTL errors).
    for subject in ["mvendorid", "marchid", "mhartid"] {
        assert!(
            has(&report, subject, "Missing trap at write"),
            "{subject} row missing"
        );
    }
    // Missing trap at completely unarchitected CSRs (RTL error).
    assert!(has(&report, "unimpl. CSRs", "Missing trap at access"));
    // The two VP bugs (ISS errors).
    assert!(has(&report, "medeleg", "VP traps"));
    assert!(has(&report, "mideleg", "VP traps"));
    // Unimplemented unprivileged counters (mismatches).
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.label == "unimpl. Unprivileged CSR"),
        "unprivileged counter rows missing"
    );
    // The cycle counter logic deviates (mismatch).
    assert!(has(&report, "mcycle", "Cycle Count Mismatch"));

    // Classification sanity: the VP bugs are the only ISS errors.
    let iss_errors: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.class == FindingClass::IssError)
        .map(|f| f.subject.as_str())
        .collect();
    assert_eq!(
        iss_errors.len(),
        2,
        "exactly the two VP bugs: {iss_errors:?}"
    );
}

#[test]
fn every_finding_carries_a_witness_and_example() {
    let report = run_table1(1);
    assert!(!report.findings.is_empty());
    for finding in &report.findings {
        assert!(finding.witness.is_some(), "{finding} lacks a witness");
        assert!(finding.example.is_some(), "{finding} lacks an example");
    }
}

#[test]
fn fixing_one_bug_removes_exactly_its_rows() {
    // Implement WFI in the core: the WFI row disappears, the rest stays.
    let mut config = SessionConfig::table1();
    config.core_config.implement_wfi = true;
    let report = VerifySession::new(config).expect("valid config").run();
    assert!(
        !report.findings.iter().any(|f| f.subject == "WFI"),
        "the WFI row must disappear once implemented"
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.label == "Missing alignment check"),
        "other findings must persist"
    );
}
