//! Frozen-golden gate for solver-core surgery: the audited clean BRANCH
//! sweep must keep producing byte-identical `symcosim-report/1` and
//! `symcosim-cert/1` documents as the solver core evolves.
//!
//! The goldens under `tests/golden/` were captured from the pre-Glucose
//! (PR 7) core. They are model-independent by construction — the clean
//! configuration has no findings (so no solver-chosen witness words reach
//! the report) and coverage cubes are projected from path constraints,
//! not models — so any byte drift here means the solver rebuild changed
//! *what* was explored or certified, not merely *how*.
//!
//! Regenerate (only when the explored space legitimately changes, e.g. a
//! decoder fix) with:
//!     SYMCOSIM_REGEN_GOLDENS=1 cargo test --test core_goldens

use symcosim::core::{
    Certificate, EngineKind, InstrConstraint, SessionConfig, VerifyReport, VerifySession,
};
use symcosim::isa::opcodes;

const REPORT_GOLDEN: &str = "tests/golden/branch_report.json";
const CERT_GOLDEN: &str = "tests/golden/branch_cert.json";

fn audited_branch_config() -> SessionConfig {
    let mut config = SessionConfig::rv32i_only();
    config.stop_at_first_mismatch = false;
    config.constraint = InstrConstraint::OnlyOpcode(opcodes::BRANCH);
    config.collect_coverage = true;
    config.audit = true;
    config.engine = EngineKind::Fork;
    config
}

fn run(config: SessionConfig) -> VerifyReport {
    VerifySession::new(config).expect("valid config").run()
}

fn golden_path(rel: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

#[test]
fn audited_branch_sweep_matches_frozen_goldens() {
    let report = run(audited_branch_config());

    // The audited run must certify every answer it gave.
    assert!(
        report.proof_audit.models + report.proof_audit.cores > 0,
        "audited sweep certified no answers"
    );
    assert_eq!(
        report.proof_audit.failures, 0,
        "checker rejected an answer: {:?}",
        report.proof_audit_failure
    );

    let report_json = report.to_json();
    let cert_json =
        Certificate::certify(report.coverage.as_ref().expect("coverage collected")).to_json();

    if std::env::var_os("SYMCOSIM_REGEN_GOLDENS").is_some() {
        std::fs::write(golden_path(REPORT_GOLDEN), &report_json).expect("write report golden");
        std::fs::write(golden_path(CERT_GOLDEN), &cert_json).expect("write cert golden");
    }

    let expected_report =
        std::fs::read_to_string(golden_path(REPORT_GOLDEN)).expect("report golden present");
    let expected_cert =
        std::fs::read_to_string(golden_path(CERT_GOLDEN)).expect("cert golden present");
    assert_eq!(
        report_json, expected_report,
        "audited BRANCH report drifted from the frozen golden \
         (SYMCOSIM_REGEN_GOLDENS=1 regenerates after an intentional change)"
    );
    assert_eq!(
        cert_json, expected_cert,
        "audited BRANCH certificate drifted from the frozen golden"
    );
}

/// The goldens pin the *unaudited* and *preflight-less* runs too:
/// auditing and the abstract-interpretation preflight are both
/// observational, so the same bytes must come back with either toggled
/// off, across engines and worker counts — the chain_equivalence-style
/// leg of the gate.
#[test]
fn golden_bytes_are_audit_and_engine_independent() {
    let expected_report =
        std::fs::read_to_string(golden_path(REPORT_GOLDEN)).expect("report golden present");
    let expected_cert =
        std::fs::read_to_string(golden_path(CERT_GOLDEN)).expect("cert golden present");

    for (label, audit, engine, jobs, preflight) in [
        ("plain reexec", false, EngineKind::Reexec, 1, true),
        ("plain fork x2", false, EngineKind::Fork, 2, true),
        ("audited fork x2", true, EngineKind::Fork, 2, true),
        ("no-preflight reexec", false, EngineKind::Reexec, 1, false),
        (
            "audited no-preflight fork x2",
            true,
            EngineKind::Fork,
            2,
            false,
        ),
    ] {
        let mut config = audited_branch_config();
        config.audit = audit;
        config.engine = engine;
        config.preflight = preflight;
        let session = VerifySession::new(config).expect("valid config");
        let report = if jobs <= 1 {
            session.run()
        } else {
            session.run_parallel(jobs)
        };
        assert_eq!(
            report.to_json(),
            expected_report,
            "{label}: report diverged"
        );
        assert_eq!(
            Certificate::certify(report.coverage.as_ref().expect("coverage")).to_json(),
            expected_cert,
            "{label}: certificate diverged"
        );
    }
}
