//! The coverage certifier is engine- and schedule-independent: for a
//! frontier-drained run, the re-execution engine, the fork engine, and
//! the fork engine on two workers produce **bit-identical**
//! `symcosim-cert/1` documents — the certificate depends only on the
//! canonical path set, never on how it was explored. And the certificate
//! is falsifiable: dropping a path from a report makes certification
//! fail with a concrete uncovered instruction word.

use symcosim::core::{
    Certificate, CoverageData, EngineKind, InstrConstraint, SessionConfig, Verdict, VerifyReport,
    VerifySession,
};
use symcosim::isa::opcodes;
use symcosim::microrv32::InjectedError;

/// Runs `config` under the re-execution engine, the fork engine, and the
/// fork engine on two workers; asserts all three emit the same
/// certificate document and returns the re-execution report plus that
/// document.
fn certificates_agree(config: SessionConfig) -> (VerifyReport, String) {
    let mut config = config;
    config.collect_coverage = true;

    let mut reexec_config = config.clone();
    reexec_config.engine = EngineKind::Reexec;
    let reexec = VerifySession::new(reexec_config)
        .expect("valid config")
        .run();
    let expected = certificate_of(&reexec);

    let mut fork_config = config.clone();
    fork_config.engine = EngineKind::Fork;
    let fork = VerifySession::new(fork_config.clone())
        .expect("valid config")
        .run();
    assert_eq!(
        certificate_of(&fork),
        expected,
        "fork run() certificate diverged from the re-execution engine's"
    );

    let fork_parallel = VerifySession::new(fork_config)
        .expect("valid config")
        .run_parallel(2);
    assert_eq!(
        certificate_of(&fork_parallel),
        expected,
        "fork run_parallel(2) certificate diverged from the re-execution engine's"
    );

    (reexec, expected)
}

fn certificate_of(report: &VerifyReport) -> String {
    let coverage = report.coverage.as_ref().expect("coverage was collected");
    Certificate::certify(coverage).to_json()
}

#[test]
fn clean_branch_space_certifies_identically_across_engines() {
    let mut config = SessionConfig::rv32i_only();
    config.stop_at_first_mismatch = false;
    config.constraint = InstrConstraint::OnlyOpcode(opcodes::BRANCH);
    let (report, cert_json) = certificates_agree(config);

    let coverage = report.coverage.as_ref().expect("coverage was collected");
    let cert = Certificate::certify(coverage);
    assert_eq!(
        cert.verdict,
        Verdict::Complete,
        "a drained clean run must certify complete:\n{cert}"
    );
    assert_eq!(cert.findings(), 0);
    // The domain is the projected OnlyOpcode constraint: 2^25 words.
    assert!(cert.domain_exact);
    for slot in &cert.slots {
        assert_eq!(slot.domain_words, 1 << 25);
        assert_eq!(slot.certified_words, 1 << 25);
        assert_eq!(slot.residual_words, 0);
        assert!(slot.overlaps.is_empty());
    }
    assert!(cert_json.contains("\"schema\": \"symcosim-cert/1\""));
    assert!(cert_json.contains("\"verdict\": \"complete\""));
}

#[test]
fn system_space_certifies_exactly_with_full_word_encodings() {
    // The privileged SYSTEM instructions are full-word encodings: both
    // models decide `instr == 0x0000_0073` (ECALL) and friends, a 32-bit
    // equality over the fetch slot. The projector used to widen any
    // equality whose support exceeded its enumeration limit to the
    // universe cube, so every funct3=0 path claimed the *whole* SYSTEM
    // slice inexactly: the certificate flagged the region as a widened
    // over-approximation ("no provable gap") instead of proving the
    // partition, and the ECALL/EBREAK/MRET splits were never checked
    // for disjointness. Affine equalities now project exactly, so the
    // sweep certifies complete with every slot cover exact.
    let mut config = SessionConfig::rv32i_only();
    config.stop_at_first_mismatch = false;
    config.constraint = InstrConstraint::OnlyOpcode(opcodes::SYSTEM);
    let (report, cert_json) = certificates_agree(config);

    let cert = Certificate::certify(report.coverage.as_ref().expect("coverage"));
    assert_eq!(
        cert.verdict,
        Verdict::Complete,
        "a drained SYSTEM sweep must certify complete:\n{cert}"
    );
    assert!(cert.domain_exact);
    for slot in &cert.slots {
        assert!(
            slot.exact,
            "full-word SYSTEM encodings must project exactly, not widen:\n{cert}"
        );
        assert_eq!(slot.domain_words, 1 << 25);
        assert_eq!(slot.certified_words, 1 << 25);
        assert_eq!(slot.residual_words, 0);
        assert!(slot.overlaps.is_empty());
    }
    assert!(cert_json.contains("\"exact\": true"));
}

#[test]
fn table1_store_slice_certifies_identically_across_engines() {
    // Catalogue mode against the shipped models: mismatch paths are
    // certified too — the mismatch *is* the path's behaviour class.
    let mut config = SessionConfig::table1();
    config.constraint = InstrConstraint::OnlyOpcode(opcodes::STORE);
    let (report, _) = certificates_agree(config);
    assert!(
        !report.findings.is_empty(),
        "the shipped models mismatch on STORE"
    );
    let cert = Certificate::certify(report.coverage.as_ref().expect("coverage"));
    assert_eq!(
        cert.verdict,
        Verdict::Complete,
        "mismatch paths still account for their decode words:\n{cert}"
    );
}

#[test]
fn injected_e4_op_space_certifies_identically_across_engines() {
    let mut config = SessionConfig::rv32i_only();
    config.inject = Some(InjectedError::E4SubStuckAt0Msb);
    config.stop_at_first_mismatch = false;
    config.constraint = InstrConstraint::OnlyOpcode(opcodes::OP);
    let (report, _) = certificates_agree(config);
    assert!(
        report.findings.iter().any(|f| f.witness.is_some()),
        "the injected fault must be found with a witness"
    );
    let cert = Certificate::certify(report.coverage.as_ref().expect("coverage"));
    assert_eq!(cert.verdict, Verdict::Complete, "{cert}");
}

#[test]
fn a_truncated_report_fails_certification_with_a_counterexample() {
    let mut config = SessionConfig::rv32i_only();
    config.stop_at_first_mismatch = false;
    config.constraint = InstrConstraint::OnlyOpcode(opcodes::BRANCH);
    config.collect_coverage = true;
    let report = VerifySession::new(config).expect("valid config").run();
    let mut coverage = report.coverage.expect("coverage was collected");

    // Silently lose one certified path — as a buggy explorer or a
    // tampered report would.
    let index = coverage
        .paths
        .iter()
        .position(|p| p.certified && !p.slots.is_empty())
        .expect("a certified path constrains the fetch slot");
    coverage.paths.remove(index);

    let cert = Certificate::certify(&coverage);
    assert_eq!(
        cert.verdict,
        Verdict::Failed,
        "a dropped path must be caught:\n{cert}"
    );
    assert!(cert.findings() >= 1);
    // The counterexample is a concrete word nothing accounts for — and it
    // lies in the configured decode slice.
    let word = cert
        .slots
        .iter()
        .flat_map(|s| s.counterexamples.iter())
        .next()
        .expect("a concrete uncovered word is reported");
    assert_eq!(word & 0x7f, opcodes::BRANCH & 0x7f);
}

#[test]
fn the_report_dump_round_trips_into_the_same_certificate() {
    let mut config = SessionConfig::rv32i_only();
    config.stop_at_first_mismatch = false;
    config.constraint = InstrConstraint::OnlyOpcode(opcodes::LUI);
    config.collect_coverage = true;
    let report = VerifySession::new(config).expect("valid config").run();

    let in_process = certificate_of(&report);

    let dump = report.to_json();
    let value = symcosim::core::json::JsonValue::parse(&dump).expect("report dump parses");
    assert_eq!(
        value.get("schema").and_then(|v| v.as_str()),
        Some("symcosim-report/1")
    );
    let coverage =
        CoverageData::from_json(value.get("coverage").expect("coverage section present"))
            .expect("coverage section round-trips");
    let re_certified = Certificate::certify(&coverage).to_json();
    assert_eq!(
        re_certified, in_process,
        "re-certifying the JSON dump must reproduce the in-process certificate"
    );
}
