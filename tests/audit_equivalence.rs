//! Proof auditing is observational: toggling [`SessionConfig::audit`]
//! re-checks every certificate-bearing solver answer through the
//! independent checker but never changes what is answered. Every
//! execution mode — re-execution, fork, and fork on worker threads —
//! produces a byte-identical `symcosim-report/1` document and coverage
//! certificate with auditing on or off; the audit's own evidence lives
//! outside those documents (in [`VerifyReport::proof_audit`] and the
//! separate `symcosim-audit/1` artifact).

use symcosim::core::{
    Certificate, EngineKind, InstrConstraint, SessionConfig, VerifyReport, VerifySession,
};
use symcosim::isa::opcodes;

fn run(mut config: SessionConfig, engine: EngineKind, jobs: usize) -> VerifyReport {
    config.engine = engine;
    let session = VerifySession::new(config).expect("valid config");
    if jobs <= 1 {
        session.run()
    } else {
        session.run_parallel(jobs)
    }
}

#[test]
fn audit_toggle_is_invisible_across_engines() {
    let mut config = SessionConfig::rv32i_only();
    config.stop_at_first_mismatch = false;
    config.constraint = InstrConstraint::OnlyOpcode(opcodes::LUI);
    config.collect_coverage = true;

    let mut on = config.clone();
    on.audit = true;
    let mut off = config;
    off.audit = false;

    let baseline = run(on.clone(), EngineKind::Fork, 1);
    assert!(
        baseline.proof_audit.steps > 0,
        "audited run must apply proof steps"
    );
    assert!(
        baseline.proof_audit.models + baseline.proof_audit.cores > 0,
        "audited run must certify at least one answer"
    );
    assert_eq!(baseline.proof_audit_failure, None);
    let expected_report = baseline.to_json();
    let expected_cert =
        Certificate::certify(baseline.coverage.as_ref().expect("coverage")).to_json();

    for (label, config) in [("audit on", on), ("audit off", off)] {
        for (mode, engine, jobs) in [
            ("reexec", EngineKind::Reexec, 1),
            ("fork", EngineKind::Fork, 1),
            ("fork x2", EngineKind::Fork, 2),
        ] {
            let report = run(config.clone(), engine, jobs);
            assert_eq!(
                report.to_json(),
                expected_report,
                "{label} / {mode}: report diverged"
            );
            let certificate = Certificate::certify(report.coverage.as_ref().expect("coverage"));
            assert_eq!(
                certificate.to_json(),
                expected_cert,
                "{label} / {mode}: certificate diverged"
            );
            if config.audit {
                assert!(
                    report.proof_audit.steps > 0,
                    "{mode}: auditor idle with audit on"
                );
                assert_eq!(report.proof_audit_failure, None, "{mode}");
                // Attaching the audit section must not change the
                // certificate's canonical bytes either: the section is
                // in-memory evidence, not document content.
                assert_eq!(
                    certificate.with_proof_audit(report.proof_audit).to_json(),
                    expected_cert,
                    "{label} / {mode}: audit section leaked into the document"
                );
            } else {
                assert_eq!(
                    report.proof_audit.steps, 0,
                    "{mode}: audit stats leak with audit off"
                );
                assert!(
                    report.proof_audit_units.is_empty(),
                    "{mode}: audit units leak with audit off"
                );
            }
        }
    }
}
