//! Differential testing of the two machine models in their *corrected*
//! configurations: for randomly generated valid instructions and register
//! seeds, the cycle-accurate core and the ISS must retire identically.
//!
//! This complements the symbolic clean-run test: property-based inputs
//! cover the concrete data path (including values the symbolic run only
//! covers abstractly), and failures shrink to minimal instructions.

use proptest::prelude::*;
use symcosim::core::{CoSim, ConcreteJudge, SymbolicInstrMemory};
use symcosim::isa::{encode, BranchKind, Instr, LoadKind, OpKind, Reg, StoreKind};
use symcosim::iss::IssConfig;
use symcosim::microrv32::CoreConfig;
use symcosim::symex::ConcreteDomain;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0usize..32).prop_map(|i| Reg::from_index(i).expect("in range"))
}

/// Instructions whose architectural effect is fully observable through the
/// voter within one instruction (no environment dependence).
fn arb_instr() -> impl Strategy<Value = Instr> {
    let op_kind = prop_oneof![
        Just(OpKind::Add),
        Just(OpKind::Sub),
        Just(OpKind::Sll),
        Just(OpKind::Slt),
        Just(OpKind::Sltu),
        Just(OpKind::Xor),
        Just(OpKind::Srl),
        Just(OpKind::Sra),
        Just(OpKind::Or),
        Just(OpKind::And),
    ];
    let load_kind = prop_oneof![
        Just(LoadKind::Lb),
        Just(LoadKind::Lh),
        Just(LoadKind::Lw),
        Just(LoadKind::Lbu),
        Just(LoadKind::Lhu),
    ];
    let store_kind = prop_oneof![
        Just(StoreKind::Sb),
        Just(StoreKind::Sh),
        Just(StoreKind::Sw)
    ];
    let branch_kind = prop_oneof![
        Just(BranchKind::Beq),
        Just(BranchKind::Bne),
        Just(BranchKind::Blt),
        Just(BranchKind::Bge),
        Just(BranchKind::Bltu),
        Just(BranchKind::Bgeu),
    ];
    prop_oneof![
        (arb_reg(), (-524288i32..=524287).prop_map(|v| v << 12))
            .prop_map(|(rd, imm)| Instr::Lui { rd, imm }),
        (arb_reg(), (-524288i32..=524287).prop_map(|v| v << 12))
            .prop_map(|(rd, imm)| Instr::Auipc { rd, imm }),
        (arb_reg(), arb_reg(), -2048i32..=2047).prop_map(|(rd, rs1, imm)| Instr::Addi {
            rd,
            rs1,
            imm
        }),
        (arb_reg(), arb_reg(), -2048i32..=2047).prop_map(|(rd, rs1, imm)| Instr::Slti {
            rd,
            rs1,
            imm
        }),
        (arb_reg(), arb_reg(), -2048i32..=2047).prop_map(|(rd, rs1, imm)| Instr::Sltiu {
            rd,
            rs1,
            imm
        }),
        (arb_reg(), arb_reg(), -2048i32..=2047).prop_map(|(rd, rs1, imm)| Instr::Xori {
            rd,
            rs1,
            imm
        }),
        (arb_reg(), arb_reg(), -2048i32..=2047).prop_map(|(rd, rs1, imm)| Instr::Ori {
            rd,
            rs1,
            imm
        }),
        (arb_reg(), arb_reg(), -2048i32..=2047).prop_map(|(rd, rs1, imm)| Instr::Andi {
            rd,
            rs1,
            imm
        }),
        (arb_reg(), arb_reg(), 0u8..32).prop_map(|(rd, rs1, shamt)| Instr::Slli { rd, rs1, shamt }),
        (arb_reg(), arb_reg(), 0u8..32).prop_map(|(rd, rs1, shamt)| Instr::Srli { rd, rs1, shamt }),
        (arb_reg(), arb_reg(), 0u8..32).prop_map(|(rd, rs1, shamt)| Instr::Srai { rd, rs1, shamt }),
        (op_kind, arb_reg(), arb_reg(), arb_reg()).prop_map(|(kind, rd, rs1, rs2)| Instr::Op {
            kind,
            rd,
            rs1,
            rs2
        }),
        (
            branch_kind,
            arb_reg(),
            arb_reg(),
            (-2048i32..=2047).prop_map(|v| v * 2)
        )
            .prop_map(|(kind, rs1, rs2, offset)| Instr::Branch {
                kind,
                rs1,
                rs2,
                offset
            }),
        (arb_reg(), (-524288i32..=524287).prop_map(|v| v * 2))
            .prop_map(|(rd, offset)| Instr::Jal { rd, offset }),
        (arb_reg(), arb_reg(), -2048i32..=2047).prop_map(|(rd, rs1, imm)| Instr::Jalr {
            rd,
            rs1,
            imm
        }),
        (load_kind, arb_reg(), arb_reg(), -2048i32..=2047)
            .prop_map(|(kind, rd, rs1, imm)| Instr::Load { kind, rd, rs1, imm }),
        (store_kind, arb_reg(), arb_reg(), -2048i32..=2047).prop_map(|(kind, rs1, rs2, imm)| {
            Instr::Store {
                kind,
                rs1,
                rs2,
                imm,
            }
        }),
        Just(Instr::Wfi),
        Just(Instr::Ecall),
        Just(Instr::Ebreak),
        Just(Instr::FenceI),
        (0u8..16, 0u8..16).prop_map(|(pred, succ)| Instr::Fence { pred, succ }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// One random instruction with random register/memory seeds: the
    /// corrected core and ISS must agree on everything the voter sees.
    #[test]
    fn corrected_models_retire_identically(
        instr in arb_instr(),
        seeds in proptest::collection::vec(any::<u32>(), 4),
        mem_seed in any::<u32>(),
    ) {
        let mut dom = ConcreteDomain::new();
        let word = encode(&instr);
        let imem = SymbolicInstrMemory::with_generator(move |_dom, _| word);
        let mut cosim = CoSim::new(
            &mut dom,
            CoreConfig::fixed(),
            IssConfig::fixed(),
            None,
            imem,
            0,
            16,
            1,
            64,
        );
        for (i, seed) in seeds.iter().enumerate() {
            cosim.core.set_register(i + 1, *seed);
            cosim.iss.set_register(i + 1, *seed);
        }
        for i in 0..16 {
            let value = mem_seed.wrapping_mul(i as u32 + 1).rotate_left(i as u32);
            cosim.core_dmem.set_word(i, value);
            cosim.iss_dmem.set_word(i, value);
        }
        let result = cosim.run(&mut dom, &mut ConcreteJudge);
        prop_assert!(
            result.mismatch.is_none(),
            "models disagree on `{instr}` ({word:#010x}): {:?}",
            result.mismatch
        );
    }

    /// The shipped configurations, restricted to instructions outside the
    /// Table I bug surface (plain ALU ops), also agree — the bugs are
    /// where the paper says they are, not scattered everywhere.
    #[test]
    fn shipped_models_agree_on_plain_alu(
        rd in arb_reg(), rs1 in arb_reg(), rs2 in arb_reg(),
        a in any::<u32>(), b in any::<u32>(),
    ) {
        let mut dom = ConcreteDomain::new();
        let word = encode(&Instr::Op { kind: OpKind::Add, rd, rs1, rs2 });
        let imem = SymbolicInstrMemory::with_generator(move |_dom, _| word);
        let mut cosim = CoSim::new(
            &mut dom,
            CoreConfig::microrv32_v1(),
            IssConfig::vp_v1(),
            None,
            imem,
            0,
            16,
            1,
            64,
        );
        cosim.core.set_register(rs1.index().max(1), a);
        cosim.iss.set_register(rs1.index().max(1), a);
        cosim.core.set_register(rs2.index().max(1), b);
        cosim.iss.set_register(rs2.index().max(1), b);
        let result = cosim.run(&mut dom, &mut ConcreteJudge);
        prop_assert!(result.mismatch.is_none(), "{:?}", result.mismatch);
    }
}
