//! Differential testing of the two machine models in their *corrected*
//! configurations: for randomly generated valid instructions and register
//! seeds, the cycle-accurate core and the ISS must retire identically.
//!
//! This complements the symbolic clean-run test: property-based inputs
//! cover the concrete data path (including values the symbolic run only
//! covers abstractly), and failing cases replay from a printed seed.

use symcosim::core::{CoSim, ConcreteJudge, SymbolicInstrMemory};
use symcosim::isa::{encode, BranchKind, Instr, LoadKind, OpKind, Reg, StoreKind};
use symcosim::iss::IssConfig;
use symcosim::microrv32::CoreConfig;
use symcosim::symex::ConcreteDomain;
use symcosim_testkit::{check_cases, Rng};

fn reg(rng: &mut Rng) -> Reg {
    Reg::from_index(rng.index(32)).expect("in range")
}

fn i_imm(rng: &mut Rng) -> i32 {
    rng.range_i64(-2048, 2047) as i32
}

/// Instructions whose architectural effect is fully observable through the
/// voter within one instruction (no environment dependence).
fn instr(rng: &mut Rng) -> Instr {
    let op_kind = [
        OpKind::Add,
        OpKind::Sub,
        OpKind::Sll,
        OpKind::Slt,
        OpKind::Sltu,
        OpKind::Xor,
        OpKind::Srl,
        OpKind::Sra,
        OpKind::Or,
        OpKind::And,
    ];
    let load_kind = [
        LoadKind::Lb,
        LoadKind::Lh,
        LoadKind::Lw,
        LoadKind::Lbu,
        LoadKind::Lhu,
    ];
    let store_kind = [StoreKind::Sb, StoreKind::Sh, StoreKind::Sw];
    let branch_kind = [
        BranchKind::Beq,
        BranchKind::Bne,
        BranchKind::Blt,
        BranchKind::Bge,
        BranchKind::Bltu,
        BranchKind::Bgeu,
    ];
    match rng.index(21) {
        0 => Instr::Lui {
            rd: reg(rng),
            imm: (rng.range_i64(-524288, 524287) as i32) << 12,
        },
        1 => Instr::Auipc {
            rd: reg(rng),
            imm: (rng.range_i64(-524288, 524287) as i32) << 12,
        },
        2 => Instr::Addi {
            rd: reg(rng),
            rs1: reg(rng),
            imm: i_imm(rng),
        },
        3 => Instr::Slti {
            rd: reg(rng),
            rs1: reg(rng),
            imm: i_imm(rng),
        },
        4 => Instr::Sltiu {
            rd: reg(rng),
            rs1: reg(rng),
            imm: i_imm(rng),
        },
        5 => Instr::Xori {
            rd: reg(rng),
            rs1: reg(rng),
            imm: i_imm(rng),
        },
        6 => Instr::Ori {
            rd: reg(rng),
            rs1: reg(rng),
            imm: i_imm(rng),
        },
        7 => Instr::Andi {
            rd: reg(rng),
            rs1: reg(rng),
            imm: i_imm(rng),
        },
        8 => Instr::Slli {
            rd: reg(rng),
            rs1: reg(rng),
            shamt: rng.below(32) as u8,
        },
        9 => Instr::Srli {
            rd: reg(rng),
            rs1: reg(rng),
            shamt: rng.below(32) as u8,
        },
        10 => Instr::Srai {
            rd: reg(rng),
            rs1: reg(rng),
            shamt: rng.below(32) as u8,
        },
        11 => Instr::Op {
            kind: *rng.choose(&op_kind),
            rd: reg(rng),
            rs1: reg(rng),
            rs2: reg(rng),
        },
        12 => Instr::Branch {
            kind: *rng.choose(&branch_kind),
            rs1: reg(rng),
            rs2: reg(rng),
            offset: (rng.range_i64(-2048, 2047) as i32) * 2,
        },
        13 => Instr::Jal {
            rd: reg(rng),
            offset: (rng.range_i64(-524288, 524287) as i32) * 2,
        },
        14 => Instr::Jalr {
            rd: reg(rng),
            rs1: reg(rng),
            imm: i_imm(rng),
        },
        15 => Instr::Load {
            kind: *rng.choose(&load_kind),
            rd: reg(rng),
            rs1: reg(rng),
            imm: i_imm(rng),
        },
        16 => Instr::Store {
            kind: *rng.choose(&store_kind),
            rs1: reg(rng),
            rs2: reg(rng),
            imm: i_imm(rng),
        },
        17 => Instr::Wfi,
        18 => Instr::Ecall,
        19 => Instr::Ebreak,
        _ => {
            if rng.chance(1, 2) {
                Instr::FenceI
            } else {
                Instr::Fence {
                    pred: rng.below(16) as u8,
                    succ: rng.below(16) as u8,
                }
            }
        }
    }
}

/// One random instruction with random register/memory seeds: the
/// corrected core and ISS must agree on everything the voter sees.
#[test]
fn corrected_models_retire_identically() {
    check_cases(0xe90_0001, 256, |rng| {
        let instr = instr(rng);
        let seeds: Vec<u32> = (0..4).map(|_| rng.next_u32()).collect();
        let mem_seed = rng.next_u32();

        let mut dom = ConcreteDomain::new();
        let word = encode(&instr);
        let imem = SymbolicInstrMemory::with_generator(move |_dom, _| word);
        let mut cosim = CoSim::new(
            &mut dom,
            CoreConfig::fixed(),
            IssConfig::fixed(),
            None,
            imem,
            0,
            16,
            1,
            64,
        );
        for (i, seed) in seeds.iter().enumerate() {
            cosim.core.set_register(i + 1, *seed);
            cosim.iss.set_register(i + 1, *seed);
        }
        for i in 0..16 {
            let value = mem_seed.wrapping_mul(i as u32 + 1).rotate_left(i as u32);
            cosim.core_dmem.set_word(i, value);
            cosim.iss_dmem.set_word(i, value);
        }
        let result = cosim.run(&mut dom, &mut ConcreteJudge);
        assert!(
            result.mismatch.is_none(),
            "models disagree on `{instr}` ({word:#010x}): {:?}",
            result.mismatch
        );
    });
}

/// The shipped configurations, restricted to instructions outside the
/// Table I bug surface (plain ALU ops), also agree — the bugs are
/// where the paper says they are, not scattered everywhere.
#[test]
fn shipped_models_agree_on_plain_alu() {
    check_cases(0xe90_0002, 256, |rng| {
        let (rd, rs1, rs2) = (reg(rng), reg(rng), reg(rng));
        let (a, b) = (rng.next_u32(), rng.next_u32());

        let mut dom = ConcreteDomain::new();
        let word = encode(&Instr::Op {
            kind: OpKind::Add,
            rd,
            rs1,
            rs2,
        });
        let imem = SymbolicInstrMemory::with_generator(move |_dom, _| word);
        let mut cosim = CoSim::new(
            &mut dom,
            CoreConfig::microrv32_v1(),
            IssConfig::vp_v1(),
            None,
            imem,
            0,
            16,
            1,
            64,
        );
        cosim.core.set_register(rs1.index().max(1), a);
        cosim.iss.set_register(rs1.index().max(1), a);
        cosim.core.set_register(rs2.index().max(1), b);
        cosim.iss.set_register(rs2.index().max(1), b);
        let result = cosim.run(&mut dom, &mut ConcreteJudge);
        assert!(result.mismatch.is_none(), "{:?}", result.mismatch);
    });
}
